"""Resource budgets: typed caps on how much a single query may consume.

Exact inference over a provenance polynomial is worst-case exponential
(Sec. 2.2 of the paper), so one pathological tuple can take the whole
process down — an unbounded DNF blows memory long before it blows time.
A :class:`ResourceBudget` puts configurable caps on the four quantities
that actually explode:

- ``max_monomials`` — intermediate polynomial size during extraction
  (the cap :func:`repro.provenance.extraction.extract_polynomial` already
  honoured via its parameter, now also enforceable ambiently);
- ``max_monomial_width`` — literals per monomial (wide monomials make the
  compiled membership matrix dense and the samplers slow);
- ``max_node_visits`` — DFS expansion steps during extraction (bounds
  time even when absorption keeps the polynomial small);
- ``max_compiled_bytes`` — memory of the
  :class:`~repro.inference.parallel_mc.CompiledPolynomial` membership
  matrix (variables × monomials × dtype), checked *before* allocation.

Enforcement is ambient: the executor activates a budget around each query
(:func:`activate_budget` sets a contextvar), and the extraction engine and
polynomial compiler consult :func:`active_meter` without any signature
changes.  A blown cap raises
:class:`~repro.core.errors.BudgetExceededError` carrying the resource
name, the cap, the amount used, and — where one exists — the partial
result, so callers can degrade instead of discarding work.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator, Optional

from .. import telemetry
from ..core.errors import BudgetExceededError


class ResourceBudget:
    """Immutable caps; ``None`` means unbounded for that resource."""

    __slots__ = ("max_monomials", "max_monomial_width", "max_node_visits",
                 "max_compiled_bytes")

    def __init__(self,
                 max_monomials: Optional[int] = None,
                 max_monomial_width: Optional[int] = None,
                 max_node_visits: Optional[int] = None,
                 max_compiled_bytes: Optional[int] = None) -> None:
        for name, value in (("max_monomials", max_monomials),
                            ("max_monomial_width", max_monomial_width),
                            ("max_node_visits", max_node_visits),
                            ("max_compiled_bytes", max_compiled_bytes)):
            if value is not None and value <= 0:
                raise ValueError("%s must be positive or None" % name)
        self.max_monomials = max_monomials
        self.max_monomial_width = max_monomial_width
        self.max_node_visits = max_node_visits
        self.max_compiled_bytes = max_compiled_bytes

    @property
    def unbounded(self) -> bool:
        return (self.max_monomials is None
                and self.max_monomial_width is None
                and self.max_node_visits is None
                and self.max_compiled_bytes is None)

    def meter(self) -> "BudgetMeter":
        """A fresh meter (mutable counters) over these caps."""
        return BudgetMeter(self)

    def to_dict(self) -> dict:
        return {
            "max_monomials": self.max_monomials,
            "max_monomial_width": self.max_monomial_width,
            "max_node_visits": self.max_node_visits,
            "max_compiled_bytes": self.max_compiled_bytes,
        }

    def __repr__(self) -> str:
        caps = ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for name in self.__slots__ if getattr(self, name) is not None)
        return "ResourceBudget(%s)" % (caps or "unbounded")


class BudgetMeter:
    """One activation of a budget: counters plus the trip logic.

    A meter is scoped to a single query execution (the executor activates
    one per spec), so the counters are plain ints — no locking on the
    extraction hot path.
    """

    __slots__ = ("budget", "node_visits", "hits")

    def __init__(self, budget: ResourceBudget) -> None:
        self.budget = budget
        self.node_visits = 0
        self.hits = 0

    # -- enforcement ------------------------------------------------------------

    def count_visit(self) -> None:
        """Charge one extraction node visit; trips past the visit cap."""
        self.node_visits += 1
        cap = self.budget.max_node_visits
        if cap is not None and self.node_visits > cap:
            self._trip("node_visits", cap, self.node_visits,
                       "Extraction exceeded the node-visit budget")

    def check_polynomial(self, polynomial,
                         partial: Optional[object] = None) -> None:
        """Trip when an intermediate polynomial exceeds the size caps.

        ``partial`` (defaulting to the polynomial itself) rides on the
        raised error as the last consistent intermediate result.
        """
        cap = self.budget.max_monomials
        if cap is not None and len(polynomial) > cap:
            self._trip("monomials", cap, len(polynomial),
                       "Extraction exceeded the monomial budget",
                       partial=partial if partial is not None else polynomial)
        width_cap = self.budget.max_monomial_width
        if width_cap is not None and len(polynomial):
            widest = max(len(monomial) for monomial in polynomial)
            if widest > width_cap:
                self._trip(
                    "monomial_width", width_cap, widest,
                    "Extraction produced a monomial wider than the budget",
                    partial=partial if partial is not None else polynomial)

    def check_compiled_bytes(self, nbytes: int) -> None:
        """Trip when a compiled membership matrix would exceed the cap."""
        cap = self.budget.max_compiled_bytes
        if cap is not None and nbytes > cap:
            self._trip("compiled_bytes", cap, nbytes,
                       "Compiled polynomial would exceed the memory budget")

    def _trip(self, resource: str, limit: float, used: float,
              message: str, partial: Optional[object] = None) -> None:
        self.hits += 1
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_resilience_budget_hits_total",
                help="Resource budget violations, by resource",
                labelnames=("resource",)).inc(resource=resource)
            span = telemetry.current_span()
            span.set_attribute("budget_exceeded", resource)
        raise BudgetExceededError(
            "%s (%s: used %s, limit %s)" % (message, resource, used, limit),
            resource=resource, limit=limit, used=used, partial=partial)

    def __repr__(self) -> str:
        return "BudgetMeter(%r, visits=%d)" % (self.budget, self.node_visits)


#: The ambient meter for the current execution context, if any.
_ACTIVE: "contextvars.ContextVar[Optional[BudgetMeter]]" = \
    contextvars.ContextVar("p3_budget_meter", default=None)


def active_meter() -> Optional[BudgetMeter]:
    """The budget meter governing the current context (None = unbudgeted)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate_budget(budget: Optional[ResourceBudget]
                    ) -> Iterator[Optional[BudgetMeter]]:
    """Scope a fresh meter over ``budget`` to the enclosed block.

    ``None`` (or an unbounded budget) deactivates metering for the block,
    so callers can pass their configuration straight through.  Nested
    activations shadow outer ones — each query gets its own counters.
    """
    if budget is None or budget.unbounded:
        token = _ACTIVE.set(None)
    else:
        token = _ACTIVE.set(budget.meter())
    try:
        yield _ACTIVE.get()
    finally:
        _ACTIVE.reset(token)
