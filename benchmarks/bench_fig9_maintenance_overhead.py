"""Figure 9 — program running time with and without provenance maintenance.

The paper evaluates the Trust program on BFS samples of 50-500 nodes and
shows (a) super-linear growth in sample size and (b) a small provenance-
maintenance overhead (≈≤10% of total time).

A live-update variant extends the figure: inserting a handful of new
trust edges into an evaluated system (``P3.add_facts``, semi-naive
deltas) versus re-evaluating the extended program from scratch.

Default sizes are scaled down for the pure-Python engine (the shape is
identical); set ``P3_BENCH_SCALE=paper`` for the original 50..500 grid.
"""

import time

from repro import P3
from repro.data.programs import TRUST_RULES
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program

from reporting import paper_scale, record_table
from workloads import bfs_sample


def _sizes():
    if paper_scale():
        return [50, 100, 150, 200, 250, 300, 350, 400, 450, 500]
    return [20, 40, 60, 80, 100]


def _time_evaluation(program, capture):
    start = time.perf_counter()
    Engine(program, capture_tables=capture).run()
    return time.perf_counter() - start


def test_fig9_maintenance_overhead(benchmark):
    rows = []
    overheads = []
    for size in _sizes():
        sample = bfs_sample(size, seed=1)
        program = sample.to_program()
        without = _time_evaluation(program, capture=False)
        with_prov = _time_evaluation(sample.to_program(), capture=True)
        overhead = (with_prov - without) / with_prov if with_prov else 0.0
        overheads.append(overhead)
        rows.append([size, sample.edge_count, without, with_prov,
                     "%.0f%%" % (100 * overhead)])

    record_table(
        "fig9_maintenance",
        "Figure 9: running time with and without provenance maintenance",
        ["sample size", "edges", "no-prov time (s)", "with-prov time (s)",
         "overhead"],
        rows,
    )

    # Shape assertions: growth is super-linear; overhead stays modest
    # (paper: <10% on ExSPAN; our relational capture path costs a little
    # more but must stay well under half the runtime on larger samples).
    first, last = rows[0], rows[-1]
    size_ratio = last[0] / first[0]
    time_ratio = last[3] / max(first[3], 1e-9)
    assert time_ratio > size_ratio, "expected super-linear growth"
    for row in rows:
        assert row[3] >= row[2] * 0.9  # provenance never *speeds up* runs
    assert sum(overheads[1:]) / len(overheads[1:]) < 0.5

    # pytest-benchmark timing on a mid-sized sample (with provenance).
    middle = bfs_sample(_sizes()[len(_sizes()) // 2], seed=1)
    benchmark.pedantic(
        lambda: Engine(middle.to_program(), capture_tables=True).run(),
        rounds=2, iterations=1)


HELD_OUT_EDGES = 5


def _split_workload(size):
    """A trust sample split into (base program, held-out facts)."""
    sample = bfs_sample(size, seed=1)
    facts = sample.to_facts()  # unlabelled: the receiving program labels
    base = parse_program(TRUST_RULES)
    for fact in facts[:-HELD_OUT_EDGES]:
        base.add(fact)
    return base, facts[-HELD_OUT_EDGES:]


def _evaluated_system(size):
    base, held_out = _split_workload(size)
    p3 = P3(base)
    p3.evaluate()
    return p3, held_out


def test_fig9_live_update_vs_reevaluation(benchmark):
    """Inserting a few edges live must beat re-evaluating from scratch,
    and must produce the same model as the extended program."""
    rows = []
    ratios = []
    for size in _sizes():
        p3, held_out = _evaluated_system(size)

        start = time.perf_counter()
        delta = p3.add_facts(held_out)
        update_time = time.perf_counter() - start

        start = time.perf_counter()
        scratch = P3(bfs_sample(size, seed=1).to_program())
        scratch_result = scratch.evaluate()
        full_time = time.perf_counter() - start

        # Correctness first: the updated model IS the extended model.
        assert p3.database.count() == scratch.database.count()
        assert p3.epoch == 1 and delta is not None

        ratio = update_time / full_time if full_time else 0.0
        ratios.append(ratio)
        rows.append([size, scratch_result.derived_count,
                     delta.derived_count, full_time, update_time,
                     "%.1f%%" % (100 * ratio)])

    record_table(
        "fig9_live_update",
        "Figure 9 (live-update variant): %d-edge delta vs from-scratch"
        % HELD_OUT_EDGES,
        ["sample size", "derived (full)", "derived (delta)",
         "re-eval time (s)", "update time (s)", "update/re-eval"],
        rows,
    )

    # A small delta must not cost a full re-evaluation.  Individual small
    # samples are noisy; the largest sample and the overall average both
    # have to show a clear win.
    assert ratios[-1] < 0.7, "live update did not beat re-evaluation"
    assert sum(ratios) / len(ratios) < 0.7

    # pytest-benchmark timing: one warm update on the mid-sized sample
    # (setup builds a freshly evaluated system each round so every
    # measured update inserts genuinely new edges).
    mid = _sizes()[len(_sizes()) // 2]
    benchmark.pedantic(
        lambda p3, held_out: p3.add_facts(held_out),
        setup=lambda: (_evaluated_system(mid), {}),
        rounds=2, iterations=1)
