"""Per-query span trees with ``contextvars`` propagation.

A :class:`Span` is one timed region of the pipeline — a stage like
``parse`` or ``infer``, one backend call, one executor query — with a
trace id shared by every span of the same logical operation, a span id,
and its parent's span id.  Parentage is tracked through a
:class:`contextvars.ContextVar`, so nesting is established by lexical
``with`` scoping in one thread, and survives the batch executor's
thread-pool fan-out when the submitting thread copies its context into
the worker (see :meth:`repro.exec.executor.QueryExecutor.run`).

Two clocks are recorded per span: a monotonic ``perf_counter_ns`` pair
(``start_ns`` + ``duration_ns``) that makes parent/child containment
checks exact, and a wall-clock anchor kept on the tracer so exported
spans also carry absolute ``start_unix`` timestamps.

The disabled path is a single shared :data:`NULL_SPAN` context manager:
``Tracer.span`` on a disabled tracer allocates nothing and the guard is
one attribute check, so instrumentation can stay inline in hot code.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

#: The innermost live span of the current logical context (None at top
#: level).  Worker threads inherit it by running inside a copy of the
#: submitting thread's context.
CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = (
    contextvars.ContextVar("p3_current_span", default=None))


def current_span() -> "Optional[Span]":
    """The innermost live span of this context, or None."""
    return CURRENT_SPAN.get()


class Span:
    """One timed, attributed region of the pipeline.

    Ids are minted as integers and formatted to their exported string
    form (``t%08x`` / ``s%08x``) lazily on first access: a span that is
    recorded, ringed, and dropped without ever being exported — the
    common fate on a hot path — never pays for string formatting.  The
    ``trace_id`` / ``span_id`` / ``parent_id`` properties accept either
    representation, so constructing spans with string ids (as tests and
    external tooling do) keeps working unchanged.
    """

    __slots__ = ("_trace_raw", "_span_raw", "_parent_raw", "name",
                 "start_ns", "duration_ns", "attributes", "status",
                 "thread", "_token", "_tracer")

    def __init__(self, trace_id, span_id, parent_id, name: str,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self._trace_raw = trace_id
        self._span_raw = span_id
        self._parent_raw = parent_id
        self.name = name
        self.start_ns = 0
        self.duration_ns = 0
        # Takes ownership: the tracer hands us a fresh kwargs dict.
        self.attributes: Dict[str, Any] = \
            attributes if attributes is not None else {}
        self.status = "ok"
        self.thread = ""
        self._token: Optional[contextvars.Token] = None
        self._tracer: Optional["Tracer"] = None

    # -- identifiers (lazily formatted) ------------------------------------------

    @property
    def trace_id(self) -> str:
        raw = self._trace_raw
        if type(raw) is int:
            raw = self._trace_raw = "t%08x" % raw
        return raw

    @property
    def span_id(self) -> str:
        raw = self._span_raw
        if type(raw) is int:
            raw = self._span_raw = "s%08x" % raw
        return raw

    @property
    def parent_id(self) -> Optional[str]:
        raw = self._parent_raw
        if type(raw) is int:
            raw = self._parent_raw = "s%08x" % raw
        return raw

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Span":
        self.thread = threading.current_thread().name
        self._token = CURRENT_SPAN.set(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault(
                "error", "%s: %s" % (getattr(exc_type, "__name__", exc_type),
                                     exc))
        if self._token is not None:
            CURRENT_SPAN.reset(self._token)
            self._token = None
        tracer = self._tracer
        if tracer is not None:
            tracer._finish(self)

    # -- recording --------------------------------------------------------------

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    @property
    def recording(self) -> bool:
        return True

    # -- reading ----------------------------------------------------------------

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def start_unix(self, anchor_ns: int) -> float:
        """Absolute start time in unix seconds, given the tracer anchor."""
        return (anchor_ns + self.start_ns) / 1e9

    def to_dict(self, anchor_ns: int = 0) -> dict:
        """JSON-friendly snapshot (one JSONL line / trace-envelope entry)."""
        document: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "start_unix": self.start_unix(anchor_ns),
            "duration": self.duration_seconds,
            "status": self.status,
        }
        if self.attributes:
            document["attributes"] = dict(self.attributes)
        return document

    def __repr__(self) -> str:
        return "Span(%s, %.6fs, trace=%s)" % (
            self.name, self.duration_seconds, self.trace_id)


class _NullSpan:
    """The span handed out when tracing is disabled: ignores everything."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    attributes: Dict[str, Any] = {}
    recording = False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared no-op span/context-manager for the disabled path.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, assigns trace/span ids, and feeds finished spans
    to the configured sinks.

    Parameters
    ----------
    enabled:
        When False, :meth:`span` returns the shared :data:`NULL_SPAN`
        without allocating anything.
    sinks:
        Objects with an ``on_span(span)`` method (see
        :mod:`repro.telemetry.sinks`), called once per *finished* span —
        children before their parents, since children exit first.
    """

    def __init__(self, enabled: bool = True,
                 sinks: Sequence[Any] = ()) -> None:
        self.enabled = enabled
        self._sinks: List[Any] = list(sinks)
        self._ids = itertools.count(1)
        # Maps the monotonic span clock onto the wall clock for exports.
        self.anchor_ns = time.time_ns() - time.perf_counter_ns()

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def span(self, name: str, **attributes: Any):
        """A context manager yielding a new child of the current span.

        With no live current span a fresh trace id is minted, making the
        new span a trace root.  Ids stay integers here (no string
        formatting on the hot path); the span properties format them on
        first read.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = CURRENT_SPAN.get()
        span_id = next(self._ids)
        if parent is None:
            trace_id = next(self._ids)
            parent_id = None
        else:
            trace_id = parent._trace_raw
            parent_id = parent._span_raw
        span = Span(trace_id, span_id, parent_id, name, attributes)
        span._tracer = self
        return span

    def _finish(self, span: Span) -> None:
        for sink in self._sinks:
            sink.on_span(span)

    def __repr__(self) -> str:
        return "Tracer(enabled=%r, %d sinks)" % (
            self.enabled, len(self._sinks))


#: Shared disabled tracer (the default runtime's tracer).
NULL_TRACER = Tracer(enabled=False)
