"""Exception hierarchy for the P3 system facade.

Lower layers raise their own specific exceptions (``ParseError``,
``EvaluationError``, ``ExtractionError``, ...); the facade wraps user-level
mistakes in :class:`P3Error` subclasses so applications can catch one base
type.

Inference failure taxonomy
--------------------------

The resilience layer (:mod:`repro.resilience`) needs to decide, per
exception, whether retrying the same backend can help, whether falling
through to the next rung of a backend ladder can help, or whether the
query itself is malformed.  That decision is encoded as a class hierarchy
rather than per-site string matching:

- :class:`TransientInferenceError` — the failure is environmental (a
  flaky worker, an injected fault, a resource that may come back).
  Retrying the *same* backend with backoff is sensible.
- :class:`PermanentInferenceError` — the backend deterministically cannot
  answer this input (unsupported structure, invalid parameters).
  Retrying is useless; falling through to a different backend may help.
- :class:`BudgetExceededError` — a configured resource budget (monomial
  count, monomial width, extraction node visits, compiled-polynomial
  memory) was hit.  Permanent for the backend that hit it, but carries
  ``partial`` progress so callers can degrade instead of discarding work.

Historical exception types (``ExactLimitError``,
``ExtractionError``, argument-validation ``ValueError`` raises in the
samplers) are kept as subclasses of the taxonomy *and* of their original
builtin bases, so existing ``except RuntimeError`` / ``except ValueError``
call sites keep working.
"""

from __future__ import annotations

from typing import Optional


class P3Error(Exception):
    """Base class for errors raised by the P3 facade."""


class NotEvaluatedError(P3Error):
    """A query was issued before :meth:`P3.evaluate` ran."""


class UnknownTupleError(P3Error, KeyError):
    """The queried tuple is not derivable (absent from the provenance graph)."""

    def __init__(self, tuple_key: str) -> None:
        super().__init__(
            "Tuple %r was not derived by the program; "
            "check the relation name and argument constants" % tuple_key)
        self.tuple_key = tuple_key


class UnknownLiteralError(P3Error, KeyError):
    """A literal was referenced that does not occur in the provenance."""

    def __init__(self, key: str) -> None:
        super().__init__("Literal %r does not appear in the provenance" % key)
        self.key = key


class QueryTimeoutError(P3Error, TimeoutError):
    """A query exceeded its per-query deadline.

    Raised inside the batch executor when a spec's ``timeout`` (or the
    config's ``query_timeout``) elapses; in a batch it is captured as that
    outcome's error instead of propagating.
    """

    def __init__(self, key: str, timeout: float) -> None:
        super().__init__(
            "Query %r exceeded its deadline of %.3fs" % (key, timeout))
        self.key = key
        self.timeout = timeout


class PoolHangError(P3Error, TimeoutError):
    """The executor's worker pool stopped making progress.

    Raised (as per-outcome errors, never out of a batch) when no worker
    future completes within ``pool_hang_seconds`` and the rebuild quota
    is already spent.  Sequential execution is *not* attempted for hung
    pools — whatever wedged the workers would wedge the caller's thread
    too.
    """

    def __init__(self, key: str, hang_seconds: float) -> None:
        super().__init__(
            "Query %r abandoned: worker pool made no progress for %.3fs "
            "and the rebuild quota was exhausted" % (key, hang_seconds))
        self.key = key
        self.hang_seconds = hang_seconds


# -- inference failure taxonomy -------------------------------------------------

class InferenceError(P3Error):
    """Base class for failures inside a probability backend."""


class TransientInferenceError(InferenceError):
    """A backend failure that a retry (same backend, same input) may fix.

    Raised for environmental conditions — flaky workers, injected chaos
    faults, temporarily unavailable resources.  The resilience layer's
    retry policies retry exactly this class (and ``OSError``); everything
    else falls through to the next ladder rung immediately.
    """


class PermanentInferenceError(InferenceError):
    """A backend failure no retry can fix (for this backend and input).

    A different backend may still succeed, so fallback ladders treat this
    as "skip to the next rung".
    """


class InferenceConfigurationError(PermanentInferenceError, ValueError):
    """Invalid parameters for an inference call (``samples <= 0``, ...).

    Subclasses ``ValueError`` so historical ``except ValueError`` call
    sites (and tests) keep catching argument mistakes.
    """


class BudgetExceededError(PermanentInferenceError, RuntimeError):
    """A configured resource budget was exhausted mid-computation.

    Parameters
    ----------
    message:
        Human-readable description of what blew up.
    resource:
        Which budget was hit: ``"monomials"``, ``"monomial_width"``,
        ``"node_visits"``, ``"compiled_bytes"``, ``"assignments"``, ...
    limit / used:
        The configured cap and the amount consumed when it tripped.
    partial:
        Whatever partial progress the computation can hand back (for
        extraction, the last consistent intermediate polynomial) so
        callers can degrade gracefully instead of discarding work.

    Subclasses ``RuntimeError`` because the historical budget errors
    (``ExtractionError``, ``ExactLimitError``) did, and callers catch
    them as such.
    """

    def __init__(self, message: str,
                 resource: Optional[str] = None,
                 limit: Optional[float] = None,
                 used: Optional[float] = None,
                 partial: Optional[object] = None) -> None:
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.used = used
        self.partial = partial

    def to_dict(self) -> dict:
        document = {"message": str(self), "resource": self.resource}
        if self.limit is not None:
            document["limit"] = self.limit
        if self.used is not None:
            document["used"] = self.used
        document["has_partial"] = self.partial is not None
        return document


#: Exception classes worth retrying on the same backend.
TRANSIENT_CLASSES = (TransientInferenceError, OSError)


def is_transient(error: BaseException) -> bool:
    """Can retrying the same backend plausibly fix ``error``?

    Budget hits and other permanent errors answer False even though
    ``BudgetExceededError`` passes an ``isinstance`` check against
    ``OSError``-unrelated bases; timeouts answer False too — the time is
    better spent on a cheaper rung.
    """
    if isinstance(error, (PermanentInferenceError, TimeoutError)):
        return False
    return isinstance(error, TRANSIENT_CLASSES)
