"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import ACQUAINTANCE


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "acquaintance.pl"
    path.write_text(ACQUAINTANCE)
    return str(path)


class TestRun:
    def test_prints_tuples(self, program_file, capsys):
        assert main(["run", program_file, "--relation", "know"]) == 0
        output = capsys.readouterr().out
        assert 'know("Ben","Elena")' in output

    def test_probabilities_flag(self, program_file, capsys):
        main(["run", program_file, "--relation", "know", "--probabilities"])
        output = capsys.readouterr().out
        assert "0.163840" in output

    def test_all_relations_excludes_capture_tables(self, program_file, capsys):
        main(["run", program_file])
        output = capsys.readouterr().out
        assert "prov_" not in output


class TestExplain:
    def test_text(self, program_file, capsys):
        code = main(["explain", program_file, 'know("Ben","Elena")'])
        assert code == 0
        output = capsys.readouterr().out
        assert "success probability: 0.163840" in output

    def test_dot(self, program_file, capsys):
        main(["explain", program_file, 'know("Ben","Elena")', "--dot"])
        assert capsys.readouterr().out.startswith("digraph")

    def test_unknown_tuple_errors(self, program_file, capsys):
        code = main(["explain", program_file, 'know("Nobody","Here")'])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestDerive:
    def test_compression_reported(self, program_file, capsys):
        code = main(["derive", program_file, 'know("Ben","Elena")',
                     "--epsilon", "0.05"])
        assert code == 0
        output = capsys.readouterr().out
        assert "monomials: 2 -> 1" in output

    def test_match_group_algorithm(self, program_file, capsys):
        code = main(["derive", program_file, 'know("Ben","Elena")',
                     "--epsilon", "0.05", "--algorithm", "match-group"])
        assert code == 0


class TestInfluence:
    def test_top_literals(self, program_file, capsys):
        main(["influence", program_file, 'know("Ben","Elena")', "--top", "2"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("r3")

    def test_kind_filter(self, program_file, capsys):
        main(["influence", program_file, 'know("Ben","Elena")',
              "--kind", "tuple"])
        output = capsys.readouterr().out
        assert "r3" not in output.split()


class TestModify:
    def test_reached_plan_exit_zero(self, program_file, capsys):
        code = main(["modify", program_file, 'know("Ben","Elena")',
                     "--target", "0.5"])
        assert code == 0
        assert "reached" in capsys.readouterr().out

    def test_unreachable_plan_exit_one(self, program_file, capsys):
        code = main(["modify", program_file, 'know("Ben","Elena")',
                     "--target", "0.99", "--only-tuples"])
        assert code == 1


class TestGenerate:
    def test_emits_program(self, capsys):
        code = main(["generate", "--nodes", "30", "--edges", "60",
                     "--seed", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "trustPath" in output
        assert "trust(" in output

    def test_sampled_output_parses(self, capsys):
        main(["generate", "--nodes", "40", "--edges", "80", "--seed", "2",
              "--sample", "10"])
        output = capsys.readouterr().out
        from repro.datalog.parser import parse_program
        program = parse_program(output)
        assert len(program.rules) == 3


class TestTopK:
    def test_lists_derivations(self, program_file, capsys):
        code = main(["topk", program_file, 'know("Ben","Elena")', "--k", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert output.startswith("#1")
        assert "#2" in output

    def test_base_tuple_single(self, program_file, capsys):
        main(["topk", program_file, 'like("Steve","Veggies")'])
        output = capsys.readouterr().out
        assert "p=0.400000" in output


class TestWhatIf:
    def test_deletion_report(self, program_file, capsys):
        code = main(["whatif", program_file, 'know("Ben","Elena")',
                     "--delete", "r3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "UNDERIVABLE" in output

    def test_partial_deletion(self, program_file, capsys):
        main(["whatif", program_file, 'know("Ben","Elena")',
              "--delete", "r2"])
        output = capsys.readouterr().out
        assert "0.1638 -> 0.1600" in output


class TestGoal:
    def test_ground_pattern(self, program_file, capsys):
        code = main(["goal", program_file, 'know("Ben","Elena")'])
        assert code == 0
        output = capsys.readouterr().out
        assert "0.163840" in output
        assert "rule firings" in output

    def test_free_variable_pattern(self, program_file, capsys):
        main(["goal", program_file, 'know("Ben",X)'])
        output = capsys.readouterr().out
        assert 'know("Ben","Elena")' in output
        assert 'know("Ben","Steve")' in output


class TestStats:
    def test_graph_summary(self, program_file, capsys):
        code = main(["stats", program_file])
        assert code == 0
        output = capsys.readouterr().out
        assert "Provenance graph" in output

    def test_tuple_summary(self, program_file, capsys):
        main(["stats", program_file, 'know("Ben","Elena")'])
        output = capsys.readouterr().out
        assert "Polynomial: 2 monomials" in output


class TestErrors:
    def test_missing_file(self, capsys):
        code = main(["run", "/nonexistent/program.pl"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestWhyNot:
    def test_missing_tuple_explained(self, program_file, capsys):
        code = main(["whynot", program_file, 'know("Mary","Steve")'])
        assert code == 0
        output = capsys.readouterr().out
        assert "MISSING" in output

    def test_guard_blocked_tuple(self, program_file, capsys):
        main(["whynot", program_file, 'know("Steve","Steve")'])
        assert "BLOCKED by guard" in capsys.readouterr().out

    def test_derivable_tuple_redirects(self, program_file, capsys):
        main(["whynot", program_file, 'know("Ben","Elena")'])
        assert "IS derivable" in capsys.readouterr().out


class TestTrace:
    def test_tree_covers_pipeline_stages(self, program_file, capsys):
        code = main(["trace", program_file, 'know("Ben","Elena")'])
        assert code == 0
        output = capsys.readouterr().out
        assert "trace of explain" in output
        assert "P=0.163840" in output
        for stage in ("parse", "evaluate", "query", "extract", "infer"):
            assert stage in output

    def test_json_emits_trace_envelope(self, program_file, capsys):
        import json
        from repro.telemetry import validate_span_dicts
        code = main(["trace", program_file, 'know("Ben","Elena")',
                     "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "trace"
        assert document["version"] == 2
        assert validate_span_dicts(document["spans"]) == []

    def test_telemetry_disabled_after_exit(self, program_file):
        from repro import telemetry
        main(["trace", program_file, 'know("Ben","Elena")'])
        assert not telemetry.runtime().enabled


class TestTelemetryFlags:
    def test_trace_out_writes_valid_jsonl(self, program_file, tmp_path,
                                          capsys):
        from repro.telemetry.validate import load_jsonl, validate_span_dicts
        trace_path = tmp_path / "trace.jsonl"
        code = main(["query", program_file, 'know("Ben","Elena")',
                     "--trace-out", str(trace_path)])
        assert code == 0
        spans = load_jsonl(str(trace_path))
        assert spans
        assert validate_span_dicts(spans) == []
        assert {"parse", "evaluate", "query"} <= {
            span["name"] for span in spans}

    def test_metrics_out_writes_prometheus_text(self, program_file,
                                                tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        code = main(["query", program_file, 'know("Ben","Elena")',
                     "--metrics-out", str(metrics_path)])
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE p3_infer_seconds histogram" in text
        assert 'p3_infer_calls_total{backend="exact"} 1' in text
        assert 'p3_cache_requests_total{' in text

    def test_metrics_agree_with_stats(self, program_file, tmp_path,
                                      capsys):
        metrics_path = tmp_path / "metrics.prom"
        code = main(["query", program_file, 'know("Ben","Elena")',
                     "--metrics-out", str(metrics_path), "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        text = metrics_path.read_text()
        # One probability query, answered once: --stats and the exported
        # metrics count the same events.
        assert '"probability": 1' in err
        assert 'p3_queries_total{kind="probability"} 1' in text

    def test_chrome_out_writes_trace_event_file(self, program_file,
                                                tmp_path, capsys):
        import json
        chrome_path = tmp_path / "chrome.json"
        code = main(["query", program_file, 'know("Ben","Elena")',
                     "--chrome-out", str(chrome_path)])
        assert code == 0
        document = json.loads(chrome_path.read_text())
        assert any(event["ph"] == "X"
                   for event in document["traceEvents"])

    def test_slow_query_log_prints_to_stderr(self, program_file, capsys):
        # An absurdly low threshold: every query is "slow".
        code = main(["query", program_file, 'know("Ben","Elena")',
                     "--slow-query", "0.0000001"])
        assert code == 0
        assert "p3: slow query:" in capsys.readouterr().err

    def test_audit_accepts_trace_out(self, tmp_path, capsys):
        from repro.telemetry.validate import load_jsonl, validate_span_dicts
        trace_path = tmp_path / "audit-trace.jsonl"
        code = main(["audit", "--cases", "2", "--seed", "0",
                     "--trace-out", str(trace_path)])
        assert code == 0
        spans = load_jsonl(str(trace_path))
        assert validate_span_dicts(spans) == []
        assert "audit.case" in {span["name"] for span in spans}
