"""The chaos harness: a faulted batch must come back fully well-formed."""

import json

from repro.io.serialize import chaos_report_to_json
from repro.resilience.chaos import (
    CHAOS_FAULT_CLASSES,
    FaultPlan,
    build_chaos_program,
    run_chaos,
)


def test_program_is_deterministic_per_seed():
    assert build_chaos_program(seed=4) == build_chaos_program(seed=4)
    assert build_chaos_program(seed=4) != build_chaos_program(seed=5)


def test_chaos_run_survives_and_serializes():
    report = run_chaos(seed=0, spec_count=20, people=9, samples=8000,
                       pool_hang_seconds=0.3)
    assert report.ok, report.to_dict()
    assert report.well_formed == report.specs
    assert report.unhandled is None
    for fault in CHAOS_FAULT_CLASSES:
        assert report.faults_observed.get(fault, 0) > 0, fault
    assert not report.accuracy_failures
    # The resilience layer visibly did work.
    assert report.fallbacks > 0
    # The envelope is valid, versioned JSON.
    document = chaos_report_to_json(report)
    assert document["kind"] == "chaos_report"
    json.dumps(document)


def test_fault_plan_rates_are_seeded():
    plan_a = FaultPlan(seed=3)
    plan_b = FaultPlan(seed=3)
    rolls_a = [plan_a._fires(0.5) for _ in range(50)]
    rolls_b = [plan_b._fires(0.5) for _ in range(50)]
    assert rolls_a == rolls_b
