"""A bounded, thread-safe LRU cache with observability counters.

The executor layers two of these over the inference pipeline: one for
extracted provenance polynomials (keyed on ``(tuple key, hop_limit)``) and
one for probability results (keyed on
``(tuple key, hop_limit, method, samples, seed)``).  Worker threads share
both, so every operation holds an internal lock; the critical sections are
dict/move-to-end operations, never user computation.

Entries can additionally be tagged with the **epoch** they were computed
under (see :attr:`repro.core.system.P3.epoch`).  A lookup that passes the
current epoch treats entries from an older epoch as misses and evicts them
on the spot, so a live update of the underlying system can never serve a
stale polynomial or probability; the ``invalidations`` counter reports how
many entries were dropped this way.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping bounded to ``maxsize`` entries.

    ``maxsize=None`` means unbounded (the counters still work).  Lookups
    promote entries to most-recently-used; insertion past capacity evicts
    the least-recently-used entry.
    """

    def __init__(self, maxsize: Optional[int] = 1024) -> None:
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive or None")
        self.maxsize = maxsize
        # key -> (value, epoch); epoch is None for untagged entries.
        self._data: "OrderedDict[Hashable, Tuple[Any, Optional[int]]]" = (
            OrderedDict())
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # -- core mapping operations ------------------------------------------------

    def get(self, key: Hashable, default: Any = None,
            epoch: Optional[int] = None) -> Any:
        """Return the cached value (promoting it) or ``default``.

        When ``epoch`` is given, an entry stored under a *different* epoch
        is stale: it is evicted, counted as an invalidation plus a miss,
        and ``default`` is returned.
        """
        with self._lock:
            entry = self._data.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                return default
            value, stored_epoch = entry
            if (epoch is not None and stored_epoch is not None
                    and stored_epoch != epoch):
                del self._data[key]
                self._invalidations += 1
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any,
            epoch: Optional[int] = None) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full.

        ``epoch`` tags the entry with the system epoch it was computed
        under; untagged entries (``None``) never go stale.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (value, epoch)
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable,
                       factory: Callable[[], Any],
                       epoch: Optional[int] = None) -> Any:
        """Cached value for ``key``, computing and storing it on a miss.

        ``factory`` runs outside the lock, so a concurrent miss on the same
        key may compute twice; the result is identical either way and the
        second put is a cheap refresh.  (Queries are deduplicated upstream
        by the executor, so double computes are rare in practice.)
        """
        value = self.get(key, _MISSING, epoch=epoch)
        if value is not _MISSING:
            return value
        value = factory()
        self.put(key, value, epoch=epoch)
        return value

    def evict_stale(self, epoch: int) -> int:
        """Drop every entry tagged with an epoch other than ``epoch``.

        Returns the number of entries dropped (all counted as
        invalidations).  Lazy per-lookup invalidation in :meth:`get` makes
        this optional; it exists for callers that want memory back
        immediately after a mutation.
        """
        with self._lock:
            stale = [key for key, (_, stored) in self._data.items()
                     if stored is not None and stored != epoch]
            for key in stale:
                del self._data[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0
            self._invalidations = 0

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Membership test does not promote and does not count as a hit.
        with self._lock:
            return key in self._data

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data.keys()))

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def invalidations(self) -> int:
        """How many entries were dropped as epoch-stale."""
        return self._invalidations

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before the first lookup."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def counters(self) -> Tuple[int, int, int]:
        """(hits, misses, evictions) as one consistent snapshot."""
        with self._lock:
            return self._hits, self._misses, self._evictions

    def stats(self) -> dict:
        """Counter snapshot as a JSON-friendly dict."""
        with self._lock:
            hits, misses = self._hits, self._misses
            evictions = self._evictions
            invalidations = self._invalidations
        total = hits + misses
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "invalidations": invalidations,
            "hit_rate": hits / total if total else 0.0,
        }

    def __repr__(self) -> str:
        return "LRUCache(%d/%s entries, %d hits, %d misses)" % (
            len(self), self.maxsize, self._hits, self._misses)
