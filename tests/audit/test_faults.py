"""Fault-injection tests: the harness must catch the bugs it exists for.

Each test reintroduces a known defect through the registry override hook
and asserts the audit sweep goes red, shrinks the failure, and writes a
replay file that reproduces the disagreement — the acceptance criterion
for the harness itself.
"""

import glob
import json
import os

import pytest

from repro.audit import (
    corpus_cases,
    inject_fault,
    load_replay,
    run_audit,
    run_replay,
)
from repro.audit.faults import FAULT_NAMES
from repro.inference.registry import get_backend
from repro.inference.request import InferenceRequest


def _heavy_case():
    return [case for case in corpus_cases()
            if case.name == "corpus-karp-luby-heavy"]


class TestInjectFault:
    def test_known_names(self):
        assert FAULT_NAMES == ("exact-offset", "karp-luby-clamp",
                               "mc-stale-seed")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            with inject_fault("no-such-fault"):
                pass

    def test_restores_backend(self):
        original = get_backend("karp-luby")
        with inject_fault("karp-luby-clamp") as name:
            assert name == "karp-luby"
            assert get_backend("karp-luby") is not original
        assert get_backend("karp-luby") is original


class TestClampFaultCaught:
    """The headline acceptance test: reintroducing the Karp–Luby clamp
    must be caught and shrunk to a replay file by the harness."""

    SETTINGS = dict(cases=1, seed=0, samples=200, repeats=400,
                    backends=["karp-luby"])

    def test_sweep_goes_red_and_shrinks(self, tmp_path):
        replay_dir = str(tmp_path)
        with inject_fault("karp-luby-clamp"):
            report = run_audit(case_list=_heavy_case(),
                               replay_dir=replay_dir, **self.SETTINGS)
        assert not report.ok
        [failure] = report.failures
        [disagreement] = failure.verdict.disagreements
        assert disagreement.channel == "backend:karp-luby"
        # The clamp biases downward: the faulty mean undershoots.
        assert disagreement.value < disagreement.reference
        assert disagreement.deviation > disagreement.tolerance
        # Shrunk to a minimal reproducer.
        assert failure.shrunk is not None
        assert len(failure.shrunk.polynomial) < len(
            failure.verdict.case.polynomial)
        assert failure.reduction["monomials"]["after"] < \
            failure.reduction["monomials"]["before"]
        # Replay file written.
        [path] = glob.glob(os.path.join(replay_dir, "audit-replay-*.json"))
        document = json.loads(open(path).read())
        assert document["kind"] == "audit_replay"
        assert document["version"] == 1

    def test_replay_file_reproduces(self, tmp_path):
        replay_dir = str(tmp_path)
        with inject_fault("karp-luby-clamp"):
            run_audit(case_list=_heavy_case(), replay_dir=replay_dir,
                      **self.SETTINGS)
        [path] = glob.glob(os.path.join(replay_dir, "*.json"))
        loaded = load_replay(path)
        assert loaded["case"].name == "corpus-karp-luby-heavy"
        assert "shrunk" in loaded
        # Red with the fault, green without: the replay isolates the bug.
        with inject_fault("karp-luby-clamp"):
            assert not run_replay(path).ok
        assert run_replay(path).ok

    def test_clean_sweep_passes_same_settings(self):
        report = run_audit(case_list=_heavy_case(), **self.SETTINGS)
        assert report.ok


class TestOtherFaults:
    def test_exact_offset_caught(self):
        with inject_fault("exact-offset"):
            report = run_audit(cases=5, seed=0, include_programs=False,
                               backends=["exact", "bdd"], shrink=False)
        assert not report.ok
        channels = {d.channel
                    for failure in report.failures
                    for d in failure.verdict.disagreements}
        assert channels == {"backend:exact"}

    def test_stale_seed_caught_by_scatter(self):
        # A seed-ignoring estimator repeats the same value every run, so
        # across-repeat scatter collapses while the bias (vs reference)
        # stays; mean-of-repeats then sits outside the reported band
        # whenever the frozen draw is off by more than z standard errors.
        heavy = _heavy_case()
        with inject_fault("mc-stale-seed"):
            first = get_backend("mc").run(
                heavy[0].polynomial, heavy[0].probabilities,
                InferenceRequest(samples=300, seed=1))
            second = get_backend("mc").run(
                heavy[0].polynomial, heavy[0].probabilities,
                InferenceRequest(samples=300, seed=2))
        assert first.value == second.value
