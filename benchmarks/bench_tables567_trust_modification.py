"""Tables 5-7 — the trust fragment's modification strategies.

Paper: starting from the Table 5 probabilities, P[mutualTrustPath(1,6)] =
0.3524 (exact: 0.354942).  The greedy strategy reaches the 0.7 target in 3
steps with total change 0.58 (Table 6); a random strategy needs 5 steps and
1.36 (Table 7).
"""

import pytest

from repro.queries.modification import greedy_strategy, random_strategy

from reporting import record_table
from workloads import fragment_workload


def _tuples_only(literal):
    return literal.is_tuple


def test_table6_greedy_strategy(benchmark):
    p3, key, poly = fragment_workload()

    plan = benchmark(
        greedy_strategy, poly, p3.probabilities, 0.7,
        modifiable=_tuples_only)

    assert plan.reached
    assert [str(s.literal) for s in plan.steps] == [
        "trust(6,2)", "trust(2,6)", "trust(2,1)"]
    assert plan.total_cost == pytest.approx(0.58, abs=0.005)
    record_table(
        "table6_greedy",
        "Table 6: optimal (greedy) strategy, total change %.4f "
        "(paper: 0.58)" % plan.total_cost,
        ["step", "literal", "change", "overall P"],
        [[i + 1, str(s.literal),
          "%.2f -> %.2f" % (s.old_probability, s.new_probability),
          s.resulting_probability]
         for i, s in enumerate(plan.steps)],
    )


def test_table7_random_strategy(benchmark):
    p3, key, poly = fragment_workload()

    plan = benchmark(
        random_strategy, poly, p3.probabilities, 0.7,
        modifiable=_tuples_only, seed=7)

    greedy = greedy_strategy(poly, p3.probabilities, 0.7,
                             modifiable=_tuples_only)
    assert plan.reached
    assert plan.total_cost > greedy.total_cost
    record_table(
        "table7_random",
        "Table 7: random strategy, total change %.4f vs greedy %.4f "
        "(paper: 1.36 vs 0.58)" % (plan.total_cost, greedy.total_cost),
        ["step", "literal", "change", "overall P"],
        [[i + 1, str(s.literal),
          "%.2f -> %.2f" % (s.old_probability, s.new_probability),
          s.resulting_probability]
         for i, s in enumerate(plan.steps)],
    )
