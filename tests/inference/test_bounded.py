"""Unit and property tests for anytime bounded approximation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import P3
from repro.data import ACQUAINTANCE, paper_fragment
from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.inference.bounded import BoundedResult, bounded_probability
from repro.inference.exact import exact_probability
from repro.provenance.extraction import extract_bounds, extract_polynomial
from repro.provenance.graph import GraphBuilder, register_program


def build(source):
    program = parse_program(source)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    Engine(program, recorder=builder).run()
    return builder.graph


CHAIN = """
t1 0.9: edge(1,2).
t2 0.8: edge(2,3).
t3 0.7: edge(3,4).
t4 0.6: edge(4,5).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


class TestExtractBounds:
    def test_lower_matches_plain_extraction(self):
        graph = build(CHAIN)
        for limit in (1, 2, 3):
            lower, _ = extract_bounds(graph, "path(1,5)", limit)
            assert lower == extract_polynomial(
                graph, "path(1,5)", hop_limit=limit)

    def test_bounds_bracket_truth(self):
        graph = build(CHAIN)
        probs = graph.probability_map()
        truth = exact_probability(
            extract_polynomial(graph, "path(1,5)"), probs)
        for limit in (1, 2, 3, 4, 5):
            lower, upper = extract_bounds(graph, "path(1,5)", limit)
            low_p = exact_probability(lower, probs)
            up_p = 1.0 if upper.is_one else exact_probability(upper, probs)
            assert low_p - 1e-12 <= truth <= up_p + 1e-12

    def test_bounds_coincide_at_full_depth(self):
        graph = build(CHAIN)
        lower, upper = extract_bounds(graph, "path(1,5)", 10)
        assert lower == upper

    def test_requires_positive_limit(self):
        graph = build(CHAIN)
        with pytest.raises(ValueError):
            extract_bounds(graph, "path(1,5)", 0)

    def test_unknown_root(self):
        graph = build(CHAIN)
        with pytest.raises(KeyError):
            extract_bounds(graph, "ghost(1)", 2)

    def test_upper_bound_on_cut_tuple_is_one(self):
        graph = build(CHAIN)
        _, upper = extract_bounds(graph, "path(1,5)", 1)
        # At depth 1 the recursive branch is cut; the direct edge branch
        # does not exist for (1,5), so the upper bound collapses to the
        # optimistic r2-only monomial.
        assert not upper.is_zero


class TestBoundedProbability:
    def test_converges_to_exact(self):
        graph = build(CHAIN)
        probs = graph.probability_map()
        result = bounded_probability(graph, "path(1,5)", probs,
                                     epsilon=1e-9)
        truth = exact_probability(extract_polynomial(graph, "path(1,5)"),
                                  probs)
        assert result.converged
        assert result.lower == pytest.approx(truth)
        assert result.upper == pytest.approx(truth)

    def test_history_monotone(self):
        p3 = P3(paper_fragment().to_program())
        p3.evaluate()
        result = bounded_probability(
            p3.graph, "mutualTrustPath(1,6)", p3.probabilities,
            epsilon=1e-6)
        lowers = [low for _, low, _ in result.history]
        uppers = [up for _, _, up in result.history]
        assert lowers == sorted(lowers)
        assert uppers == sorted(uppers, reverse=True)

    def test_interval_always_contains_truth(self):
        p3 = P3.from_source(ACQUAINTANCE)
        p3.evaluate()
        result = bounded_probability(
            p3.graph, 'know("Ben","Elena")', p3.probabilities,
            epsilon=0.5)  # loose: stops early
        truth = 0.16384
        assert result.lower - 1e-12 <= truth <= result.upper + 1e-12

    def test_early_stop_on_loose_epsilon(self):
        graph = build(CHAIN)
        probs = graph.probability_map()
        strict = bounded_probability(graph, "path(1,5)", probs,
                                     epsilon=1e-9)
        loose = bounded_probability(graph, "path(1,5)", probs, epsilon=0.9)
        assert loose.hop_limit <= strict.hop_limit

    def test_max_hop_cap_respected(self):
        graph = build(CHAIN)
        probs = graph.probability_map()
        result = bounded_probability(graph, "path(1,5)", probs,
                                     epsilon=0.0, max_hop_limit=2,
                                     initial_hop_limit=1)
        assert result.hop_limit <= 2

    def test_estimate_is_midpoint(self):
        result = BoundedResult(0.2, 0.4, 3, False, [])
        assert result.estimate == pytest.approx(0.3)
        assert result.gap == pytest.approx(0.2)

    def test_validation(self):
        graph = build(CHAIN)
        probs = graph.probability_map()
        with pytest.raises(ValueError):
            bounded_probability(graph, "path(1,5)", probs, epsilon=-1)
        with pytest.raises(ValueError):
            bounded_probability(graph, "path(1,5)", probs,
                                initial_hop_limit=0)


@st.composite
def chain_programs(draw):
    length = draw(st.integers(min_value=2, max_value=5))
    lines = []
    for index in range(length):
        probability = draw(st.sampled_from([0.3, 0.5, 0.7, 0.9]))
        lines.append("t%d %.1f: edge(%d,%d)."
                     % (index + 1, probability, index, index + 1))
    # Optional shortcut edges make multiple path lengths coexist.
    if draw(st.booleans()) and length > 2:
        lines.append("s1 0.5: edge(0,%d)." % (length - 1))
    lines.append("r1 1.0: path(X,Y) :- edge(X,Y).")
    lines.append("r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).")
    return "\n".join(lines), length


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(chain_programs())
    def test_bounds_bracket_and_converge(self, case):
        source, length = case
        graph = build(source)
        probs = graph.probability_map()
        key = "path(0,%d)" % length
        truth = exact_probability(extract_polynomial(graph, key), probs)
        previous_gap = 1.0
        for limit in (1, 2, 4, 8):
            lower, upper = extract_bounds(graph, key, limit)
            low_p = exact_probability(lower, probs)
            up_p = 1.0 if upper.is_one else exact_probability(upper, probs)
            assert low_p - 1e-12 <= truth <= up_p + 1e-12
            gap = up_p - low_p
            assert gap <= previous_gap + 1e-12
            previous_gap = gap
        assert previous_gap == pytest.approx(0.0, abs=1e-12)


class TestIntervalOrdering:
    """Regression tests for the inverted-interval bug: with a noisy (or
    merely rounding) evaluator and epsilon near machine precision, the
    envelope updates could leave ``upper`` a hair below ``lower``."""

    def test_constructor_repairs_inversion(self):
        result = BoundedResult(0.5, 0.5 - 1e-15, 2, True, [])
        assert result.lower <= result.upper
        assert result.gap >= 0.0

    def test_constructor_keeps_valid_intervals(self):
        result = BoundedResult(0.2, 0.4, 2, False, [])
        assert (result.lower, result.upper) == (0.2, 0.4)

    def test_noisy_evaluator_tiny_epsilon(self):
        # A deterministic evaluator whose alternating rounding error once
        # drove upper < lower at convergence.
        graph = build(CHAIN)
        probs = graph.probability_map()
        calls = [0]

        def noisy(polynomial, probabilities):
            calls[0] += 1
            noise = 3e-16 if calls[0] % 2 else -3e-16
            return exact_probability(polynomial, probabilities) + noise

        result = bounded_probability(
            graph, "path(1,5)", probs, epsilon=1e-15, evaluator=noisy)
        assert result.lower <= result.upper
        for _, low, up in result.history:
            assert low <= up

    def test_interval_ordered_at_every_depth(self):
        graph = build(CHAIN)
        probs = graph.probability_map()
        for epsilon in (0.0, 1e-15, 1e-9, 0.5):
            result = bounded_probability(graph, "path(1,5)", probs,
                                         epsilon=epsilon)
            assert 0.0 <= result.lower <= result.upper <= 1.0
