"""Debugging a Visual Question Answering program — the Section 5.1 case study.

The VQA ProbLog program (paper Figure 5) answers "What is the building in
the background?" from image and question tuples.  This example replays the
paper's full debugging narrative:

- **Query 1A**: explain the winning answer ``ans("ID1","barn")``;
- **Query 1B**: find the most influential base tuples, per relation;
- **Query 1C**: after the photo is modified (horses replaced by a cross,
  Table 3), barn *still* wins — use influence + modification queries to
  locate the bad similarity value and compute the fix, then verify that
  church wins after applying it.

Run with::

    python examples/vqa_debugging.py
"""

from repro import P3, P3Config
from repro.data import (
    FIXED_CHURCH_CROSS_SIMILARITY,
    fixed_scene,
    modified_scene,
    original_scene,
)

HOP_LIMIT = 8


def rank_answers(p3: P3) -> list:
    """All derived answers with probabilities, best first."""
    scored = []
    for atom in p3.derived_atoms("ans"):
        scored.append((atom.as_values()[1], p3.probability_of(str(atom))))
    scored.sort(key=lambda pair: -pair[1])
    return scored


def build(scene) -> P3:
    p3 = P3(scene.to_program(), P3Config(hop_limit=HOP_LIMIT))
    p3.evaluate()
    return p3


def main() -> None:
    # ---- the original photo: horses in front of a barn --------------------
    print("=" * 72)
    print("Original photo (horses in the background)")
    print("=" * 72)
    p3 = build(original_scene())
    for word, probability in rank_answers(p3):
        print("  ans(ID1,%-8s) P = %.4f" % (word, probability))
    best = rank_answers(p3)[0][0]
    print("Predicted answer: %s (correct — it is a barn)" % best)

    print("\nQuery 1A: most important derivation of ans(ID1,barn)")
    sufficient = p3.sufficient_provenance("ans", "ID1", "barn", epsilon=0.01)
    top = sufficient.most_important_derivations(p3.probabilities, k=1)[0]
    print("  %s" % top)

    print("\nQuery 1B: most influential base tuples, by relation")
    for relation in ("word", "hasImg", "sim"):
        report = p3.influence("ans", "ID1", "barn", relation=relation)
        score = report.most_influential
        print("  %-7s %-44s %.4f"
              % (relation, score.literal, score.influence))

    # ---- the modified photo: cross instead of horses ------------------------
    print("\n" + "=" * 72)
    print("Modified photo (cross on the building — paper Table 3)")
    print("=" * 72)
    p3 = build(modified_scene())
    for word, probability in rank_answers(p3):
        print("  ans(ID1,%-8s) P = %.4f" % (word, probability))
    best = rank_answers(p3)[0][0]
    print("Predicted answer: %s  <-- BUG: we expected church!" % best)

    print("\nDebugging with provenance (Query 1C):")
    barn_literals = p3.polynomial_of("ans", "ID1", "barn").literals()
    report = p3.influence("ans", "ID1", "church", relation="sim")
    unique = [s for s in report if s.literal not in barn_literals]
    print("  top unique influential tuples for ans(ID1,church)"
          " [paper Table 4]:")
    for score in unique[:3]:
        print("    %-28s %.4f" % (score.literal, score.influence))

    suspect = unique[0].literal
    print("  -> %s is the most influential unique tuple;" % suspect)
    print("     its value %.2f is suspiciously low (cf. sim(barn,cross)=0.30)"
          % p3.probabilities[suspect])

    target = p3.probability_of("ans", "ID1", "barn")
    plan = p3.modify("ans", "ID1", "church", target=target,
                     modifiable=lambda lit: lit == suspect)
    print("\n  Modification Query: raise P[ans(ID1,church)] to %.4f by"
          " changing only %s" % (target, suspect))
    print("  " + plan.to_text().replace("\n", "\n  "))
    if plan.steps:
        print("  -> computed fix: set %s to %.2f (paper: 0.09 + 0.42 = 0.51)"
              % (suspect, plan.steps[0].new_probability))

    # ---- after the fix --------------------------------------------------------
    print("\n" + "=" * 72)
    print("After the fix: sim(church,cross) = %.2f"
          % FIXED_CHURCH_CROSS_SIMILARITY)
    print("=" * 72)
    p3 = build(fixed_scene())
    for word, probability in rank_answers(p3):
        print("  ans(ID1,%-8s) P = %.4f" % (word, probability))
    best = rank_answers(p3)[0][0]
    print("Predicted answer: %s %s" % (
        best, "(fixed!)" if best == "church" else "(still wrong?)"))


if __name__ == "__main__":
    main()
