"""Top-K most probable derivations, lazily (an extension of Section 4.2).

The Derivation Query materialises the full provenance polynomial and then
prunes it.  When only the K best derivations are wanted — e.g. the "most
important derivation" displayed in the paper's Figures 4 and 8 — full
expansion is wasteful: the DNF can be exponentially larger than K.

:func:`top_k_derivations` instead runs a best-first search directly over
the provenance graph.  A search state is a partially-expanded derivation:
the set of literals committed so far plus a frontier of derived tuples
still to be justified.  Because every literal probability is ≤ 1, the
product of committed literals is an *admissible* (never-underestimating)
bound on any completion, so states popped from the max-heap in bound order
yield complete derivations in exactly non-increasing probability order —
the same guarantee as A* with an admissible heuristic.

Idempotency is handled by construction: literals are committed as a set,
so shared sub-derivations are counted once, matching the monomial
semantics of Section 3.  Cycles are blocked with per-branch ancestor sets
(the λ⁰ semantics), and emitted derivations are absorbed on the fly: a
derivation whose literal set is a superset of an earlier one is skipped,
because the earlier one already subsumes it in the polynomial.
"""

from __future__ import annotations

import heapq
import itertools
from typing import FrozenSet, List, Optional, Tuple

from .. import telemetry
from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import (
    Literal,
    Monomial,
    ProbabilityMap,
    rule_literal,
    tuple_literal,
)


class SearchBudgetExceeded(RuntimeError):
    """Raised when the best-first search exceeds ``max_expansions``."""


#: A frontier entry: (tuple key to justify, blocked ancestors, depth).
_FrontierEntry = Tuple[str, FrozenSet[str], int]


def top_k_derivations(graph: ProvenanceGraph, root: str,
                      probabilities: ProbabilityMap,
                      k: int,
                      hop_limit: Optional[int] = None,
                      max_expansions: int = 200000
                      ) -> List[Tuple[Monomial, float]]:
    """Return up to ``k`` (monomial, probability) pairs, best first.

    ``hop_limit`` bounds derivation depth exactly as in polynomial
    extraction; ``max_expansions`` bounds total search work and raises
    :class:`SearchBudgetExceeded` beyond it.
    """
    rt = telemetry.runtime()
    if not rt.enabled:
        return _top_k_derivations(
            graph, root, probabilities, k, hop_limit, max_expansions)
    with rt.tracer.span("query.topk", root=root, k=k,
                        hop_limit=hop_limit) as span:
        results = _top_k_derivations(
            graph, root, probabilities, k, hop_limit, max_expansions)
        span.set_attribute("found", len(results))
    return results


def _top_k_derivations(graph: ProvenanceGraph, root: str,
                       probabilities: ProbabilityMap,
                       k: int,
                       hop_limit: Optional[int],
                       max_expansions: int
                       ) -> List[Tuple[Monomial, float]]:
    if k <= 0:
        raise ValueError("k must be positive")
    if root not in graph:
        raise KeyError("Tuple %r does not appear in the provenance graph" % root)

    counter = itertools.count()
    # Heap entries: (-bound, tiebreak, literals, frontier).
    heap: List[Tuple[float, int, FrozenSet[Literal],
                     Tuple[_FrontierEntry, ...]]] = []

    def push(literals: FrozenSet[Literal],
             frontier: Tuple[_FrontierEntry, ...]) -> None:
        bound = 1.0
        for literal in literals:
            bound *= probabilities[literal]
        if bound <= 0.0:
            return
        heapq.heappush(heap, (-bound, next(counter), literals, frontier))

    push(frozenset(), ((root, frozenset(), 0),))

    results: List[Tuple[Monomial, float]] = []
    emitted: List[FrozenSet[Literal]] = []
    expansions = 0

    while heap and len(results) < k:
        expansions += 1
        if expansions > max_expansions:
            raise SearchBudgetExceeded(
                "top-k search exceeded max_expansions=%d" % max_expansions)
        neg_bound, _, literals, frontier = heapq.heappop(heap)

        if not frontier:
            if any(previous <= literals for previous in emitted):
                continue  # absorbed by an earlier (higher-probability) one
            emitted.append(literals)
            results.append((Monomial(literals), -neg_bound))
            continue

        (key, ancestors, depth), rest = frontier[0], frontier[1:]

        # Option 1: the tuple is a base fact — justify it by its literal.
        if graph.is_base(key):
            push(literals | {tuple_literal(key)}, rest)

        # Option 2: expand through each rule execution deriving it.
        if key in ancestors:
            continue  # cycle: this branch can only be justified as base
        if hop_limit is not None and depth >= hop_limit:
            continue
        child_ancestors = ancestors | {key}
        for execution in graph.derivations_of(key):
            new_literals = literals | {rule_literal(execution.rule_label)}
            new_frontier = rest + tuple(
                (body_key, child_ancestors, depth + 1)
                for body_key in execution.body
            )
            push(new_literals, new_frontier)

    return results


def best_derivation(graph: ProvenanceGraph, root: str,
                    probabilities: ProbabilityMap,
                    hop_limit: Optional[int] = None
                    ) -> Optional[Tuple[Monomial, float]]:
    """The single most probable derivation (Viterbi proof), or ``None``."""
    results = top_k_derivations(
        graph, root, probabilities, k=1, hop_limit=hop_limit)
    return results[0] if results else None
