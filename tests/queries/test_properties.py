"""Property-based tests for the query layer's algebraic identities."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.inference.exact import exact_probability
from repro.provenance.polynomial import Monomial, Polynomial, tuple_literal
from repro.provenance.semiring import BOOLEAN, evaluate_polynomial
from repro.queries.derivation import derivation_query
from repro.queries.influence import exact_influence
from repro.queries.modification import greedy_strategy

LITERAL_POOL = [tuple_literal(c) for c in "abcdef"]


@st.composite
def polynomial_cases(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    monomials = []
    for _ in range(count):
        width = draw(st.integers(min_value=1, max_value=3))
        monomials.append(Monomial(draw(st.permutations(LITERAL_POOL))[:width]))
    poly = Polynomial(monomials)
    probs = {
        literal: draw(st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]))
        for literal in LITERAL_POOL
    }
    return poly, probs


class TestEquation16:
    """P[λ] = Inf_x(λ)·p(x) + P[λ|x=0] — the identity Modification relies on."""

    @settings(max_examples=60, deadline=None)
    @given(polynomial_cases())
    def test_identity_holds_for_every_literal(self, case):
        poly, probs = case
        total = exact_probability(poly, probs)
        for literal in poly.literals():
            influence = exact_influence(poly, probs, literal)
            at_zero = exact_probability(
                poly.restrict(literal, False), probs)
            assert total == pytest.approx(
                influence * probs[literal] + at_zero)

    @settings(max_examples=40, deadline=None)
    @given(polynomial_cases())
    def test_influence_bounded_by_cofactor_gap(self, case):
        poly, probs = case
        for literal in poly.literals():
            influence = exact_influence(poly, probs, literal)
            assert -1e-12 <= influence <= 1.0 + 1e-12


class TestGreedyModificationProperties:
    @settings(max_examples=30, deadline=None)
    @given(polynomial_cases(), st.sampled_from([0.2, 0.5, 0.8]))
    def test_plan_moves_toward_target(self, case, target):
        poly, probs = case
        plan = greedy_strategy(poly, probs, target)
        initial = exact_probability(poly, probs)
        final = exact_probability(
            poly, plan.updated_probabilities(probs))
        assert abs(final - target) <= abs(initial - target) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(polynomial_cases(), st.sampled_from([0.25, 0.6]))
    def test_reached_plans_verify_exactly(self, case, target):
        poly, probs = case
        plan = greedy_strategy(poly, probs, target)
        if plan.reached:
            final = exact_probability(
                poly, plan.updated_probabilities(probs))
            assert final == pytest.approx(target, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(polynomial_cases())
    def test_steps_touch_distinct_literals(self, case):
        poly, probs = case
        plan = greedy_strategy(poly, probs, 0.5)
        touched = [str(step.literal) for step in plan.steps]
        assert len(touched) == len(set(touched))


class TestDerivationQueryProperties:
    @settings(max_examples=30, deadline=None)
    @given(polynomial_cases(), st.sampled_from([0.0, 0.01, 0.05, 0.2]))
    def test_naive_respects_bound(self, case, epsilon):
        poly, probs = case
        result = derivation_query(poly, probs, epsilon, method="naive")
        assert result.error <= epsilon + 1e-12
        assert result.sufficient.monomials <= poly.monomials

    @settings(max_examples=30, deadline=None)
    @given(polynomial_cases(), st.sampled_from([0.01, 0.05, 0.2]))
    def test_match_group_respects_bound(self, case, epsilon):
        poly, probs = case
        result = derivation_query(poly, probs, epsilon,
                                  method="match-group")
        assert result.error <= epsilon + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(polynomial_cases())
    def test_union_bound_never_beats_naive_on_size(self, case):
        poly, probs = case
        epsilon = 0.1
        naive = derivation_query(poly, probs, epsilon, method="naive")
        union = derivation_query(poly, probs, epsilon, method="union-bound")
        assert len(union.sufficient) >= len(naive.sufficient)


class TestSemiringConsistency:
    @settings(max_examples=40, deadline=None)
    @given(polynomial_cases(), st.integers(0, 2**16))
    def test_boolean_semiring_matches_evaluate(self, case, seed):
        poly, _ = case
        rng = random.Random(seed)
        assignment = {lit: rng.random() < 0.5 for lit in LITERAL_POOL}
        via_semiring = evaluate_polynomial(poly, BOOLEAN, assignment)
        assert via_semiring == poly.evaluate(assignment)
