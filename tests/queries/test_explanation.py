"""Unit tests for the Explanation Query."""

import pytest

from repro.queries.explanation import explanation_query


class TestAcquaintanceExplanation:
    """Query 1 of the paper, on the running example."""

    def test_probability(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")')
        assert explanation.probability == pytest.approx(0.16384)

    def test_two_derivations(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")')
        assert explanation.derivation_count == 2

    def test_polynomial_structure(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")')
        text = str(explanation.polynomial)
        assert "r1" in text and "r2" in text and "r3" in text
        assert 'know("Ben","Steve")' in text

    def test_subgraph_rooted_at_query(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")')
        assert 'know("Ben","Elena")' in explanation.subgraph
        assert 'live("Steve","DC")' in explanation.subgraph

    def test_text_rendering(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")')
        text = explanation.to_text()
        assert "success probability: 0.163840" in text
        assert "via r3" in text

    def test_dot_rendering(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")')
        assert explanation.to_dot().startswith("digraph")


class TestOptions:
    def test_method_selection(self, acquaintance):
        estimate = explanation_query(
            acquaintance.graph, 'know("Ben","Elena")',
            method="parallel", samples=50000, seed=3)
        assert estimate.probability == pytest.approx(0.16384, abs=0.01)
        assert estimate.method == "parallel"

    def test_hop_limit_shrinks_provenance(self, trust_fragment):
        full = explanation_query(trust_fragment.graph, "mutualTrustPath(1,6)")
        limited = explanation_query(
            trust_fragment.graph, "mutualTrustPath(1,6)", hop_limit=2)
        assert limited.probability <= full.probability + 1e-12
        assert limited.hop_limit == 2

    def test_unknown_tuple_raises(self, acquaintance):
        with pytest.raises(KeyError):
            explanation_query(acquaintance.graph, "missing(1)")

    def test_base_tuple_explanation(self, acquaintance):
        explanation = explanation_query(
            acquaintance.graph, 'like("Steve","Veggies")')
        assert explanation.probability == pytest.approx(0.4)
        assert explanation.derivation_count == 1


class TestTrustExplanation:
    """Query 2A: Figure 8's provenance graph."""

    def test_mutual_path_probability(self, trust_fragment):
        explanation = explanation_query(
            trust_fragment.graph, "mutualTrustPath(1,6)")
        # Paper reports 0.3524 (Monte-Carlo); exact value is 0.354942.
        assert explanation.probability == pytest.approx(0.354942, abs=1e-6)

    def test_derivation_structure_matches_figure8(self, trust_fragment):
        explanation = explanation_query(
            trust_fragment.graph, "mutualTrustPath(1,6)")
        literals = {str(lit) for lit in explanation.polynomial.literals()}
        # Figure 8: both directions' trust edges participate.
        assert "trust(1,2)" in literals
        assert "trust(2,6)" in literals
        assert "trust(6,2)" in literals
        assert "trust(2,1)" in literals
        assert "trust(1,13)" in literals
        assert "trust(13,2)" in literals
