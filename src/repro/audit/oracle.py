"""The differential oracle: run every backend, flag every disagreement.

Agreement model
---------------
- **Exact backends** answer the same mathematical quantity, so any two of
  them must match to ``exact_tolerance`` (default 1e-12 — float
  associativity noise only).  The reference is the brute-force 2ⁿ
  enumerator whenever the case fits its literal budget, and memoised
  Shannon expansion otherwise.
- **Sampling backends** are checked against a tolerance band derived from
  their own reported standard error: the mean of ``repeats`` independent
  runs must land within ``z`` standard errors of the reference, where the
  standard error of the mean is the largest of (a) the backends' reported
  per-run errors combined in quadrature, (b) the observed across-repeat
  scatter, and (c) an Agresti–Coull floor that keeps the band open when a
  run reports zero hits (a zero-width band would flag every rare-event
  case).  At the default ``z = 5`` a single comparison false-positives
  with probability ≈ 5.7e-7, so even a 200-case sweep (~600 sampling
  comparisons) stays below a one-in-a-thousand flake rate.

Program cases additionally re-run the full pipeline — facade, shared
executor, throwaway executor, and each query type — and check the
cross-path and per-query-type invariants.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Optional, Sequence

from ..inference.exact import exact_probability
from ..inference.request import InferenceRequest
from ..inference.registry import (
    BackendReading,
    available_backends,
    get_backend,
)
from .generator import AuditCase

#: Default number of Monte-Carlo draws per sampling-backend run.
DEFAULT_SAMPLES = 4000

#: Default agreement band width for sampling backends, in standard errors.
DEFAULT_Z = 5.0

#: Default tolerance between two exact backends.
EXACT_TOLERANCE = 1e-12


def _mix_seed(seed: int, tag: str) -> int:
    """Decorrelate per-(case, backend, repeat) seeds, deterministically."""
    return (seed ^ zlib.crc32(tag.encode("utf-8"))) & 0x7FFFFFFF


class Disagreement:
    """One failed agreement check."""

    __slots__ = ("case_name", "channel", "value", "reference",
                 "tolerance", "detail")

    def __init__(self, case_name: str, channel: str, value: float,
                 reference: float, tolerance: float,
                 detail: str = "") -> None:
        self.case_name = case_name
        self.channel = channel
        self.value = value
        self.reference = reference
        self.tolerance = tolerance
        self.detail = detail

    @property
    def deviation(self) -> float:
        return abs(self.value - self.reference)

    def to_dict(self) -> dict:
        return {
            "case": self.case_name,
            "channel": self.channel,
            "value": self.value,
            "reference": self.reference,
            "deviation": self.deviation,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        return ("Disagreement(%s/%s: %.9f vs %.9f, tol %.3g%s)"
                % (self.case_name, self.channel, self.value,
                   self.reference, self.tolerance,
                   "; " + self.detail if self.detail else ""))


class CaseVerdict:
    """Everything the oracle learned about one case."""

    __slots__ = ("case", "reference", "reference_backend", "readings",
                 "disagreements")

    def __init__(self, case: AuditCase, reference: float,
                 reference_backend: str,
                 readings: Sequence[BackendReading],
                 disagreements: Sequence[Disagreement]) -> None:
        self.case = case
        self.reference = reference
        self.reference_backend = reference_backend
        self.readings = list(readings)
        self.disagreements = list(disagreements)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> dict:
        return {
            "case": self.case.name,
            "ok": self.ok,
            "reference": self.reference,
            "reference_backend": self.reference_backend,
            "readings": [reading.to_dict() for reading in self.readings],
            "disagreements": [d.to_dict() for d in self.disagreements],
        }

    def __repr__(self) -> str:
        state = "ok" if self.ok else "%d disagreements" % len(
            self.disagreements)
        return "CaseVerdict(%s, %s)" % (self.case.name, state)


def reference_probability(case: AuditCase) -> BackendReading:
    """The trusted reading: brute force when it fits, Shannon otherwise."""
    brute = get_backend("brute-force")
    if brute.supports(case.polynomial):
        return brute.run(case.polynomial, case.probabilities)
    return get_backend("exact").run(case.polynomial, case.probabilities)


def _sampling_floor(samples: int, z: float) -> float:
    """Agresti–Coull rate floor: the per-run standard error at zero hits."""
    centre = (z * z / 2.0) / (samples + z * z)
    return math.sqrt(centre * (1.0 - centre) / samples)


def audit_polynomial_case(case: AuditCase,
                          backends: Optional[Sequence[str]] = None,
                          samples: int = DEFAULT_SAMPLES,
                          seed: int = 0,
                          repeats: int = 1,
                          z: float = DEFAULT_Z,
                          exact_tolerance: float = EXACT_TOLERANCE
                          ) -> CaseVerdict:
    """Cross-check every applicable backend on one polynomial case."""
    reference = reference_probability(case)
    selected = available_backends(
        case.polynomial,
        names=list(backends) if backends is not None else None)
    readings: List[BackendReading] = [reference]
    disagreements: List[Disagreement] = []
    floor = _sampling_floor(samples, z)
    for backend in selected:
        if backend.deterministic:
            reading = backend.run(case.polynomial, case.probabilities)
            readings.append(reading)
            deviation = abs(reading.value - reference.value)
            if deviation > exact_tolerance:
                disagreements.append(Disagreement(
                    case.name, "backend:%s" % backend.name,
                    reading.value, reference.value, exact_tolerance,
                    detail="exact backend off reference %s by %.3g"
                    % (reference.backend, deviation)))
            continue
        values: List[float] = []
        errors: List[float] = []
        for repeat in range(repeats):
            run_seed = _mix_seed(
                seed, "%s:%s:%d" % (case.name, backend.name, repeat))
            reading = backend.run(
                case.polynomial, case.probabilities,
                InferenceRequest(samples=samples, seed=run_seed))
            values.append(reading.value)
            errors.append(reading.stderr or 0.0)
        mean = sum(values) / repeats
        reported = math.sqrt(
            sum(error * error for error in errors) / repeats) \
            / math.sqrt(repeats)
        if repeats > 1:
            centred = sum((value - mean) ** 2 for value in values)
            scatter = math.sqrt(centred / (repeats - 1)) \
                / math.sqrt(repeats)
        else:
            scatter = 0.0
        stderr = max(reported, scatter, floor / math.sqrt(repeats))
        readings.append(BackendReading(
            backend.name, mean, stderr=stderr, exact=False))
        tolerance = z * stderr + exact_tolerance
        deviation = abs(mean - reference.value)
        if deviation > tolerance:
            disagreements.append(Disagreement(
                case.name, "backend:%s" % backend.name,
                mean, reference.value, tolerance,
                detail="mean of %d run(s) x %d samples, se %.3g, "
                "deviation %.1f se" % (repeats, samples, stderr,
                                       deviation / stderr
                                       if stderr else math.inf)))
    return CaseVerdict(case, reference.value, reference.backend,
                       readings, disagreements)


# -- program-level channels ------------------------------------------------------

def audit_program_case(case: AuditCase,
                       seed: int = 0,
                       exact_tolerance: float = EXACT_TOLERANCE
                       ) -> CaseVerdict:
    """Re-run a program case through every query path and cross-check.

    Channels, each compared against the exact probability of the
    polynomial re-extracted from a fresh evaluation:

    - ``facade:probability`` — :meth:`P3.probability_of` (shared executor);
    - ``executor:batch`` — the same query through :meth:`QueryExecutor.run`;
    - ``executor:throwaway`` — a cold single-worker executor (no shared
      caches to hide behind);
    - ``query:conditional`` — conditioning on empty evidence must be a
      no-op;
    - ``query:explain`` — the explanation's probability and polynomial
      must match;
    - ``query:derive`` — ε-sufficient provenance must honour its error
      bound, one-sidedly;
    - ``query:influence`` — exact influence scores must lie in [0, 1]
      (monotone DNF);
    - ``query:modify`` — the plan's claimed final probability must be
      reproducible by re-evaluating under the updated probability map.
    """
    if not case.is_program_case:
        raise ValueError("%s is not a program case" % case.name)
    from ..core.system import P3
    from ..exec.specs import QuerySpec

    p3 = P3.from_source(case.program_source)
    p3.evaluate()
    key = case.query_key
    disagreements: List[Disagreement] = []

    def check(channel: str, value: float, reference: float,
              tolerance: float, detail: str = "") -> None:
        if abs(value - reference) > tolerance:
            disagreements.append(Disagreement(
                case.name, channel, value, reference, tolerance, detail))

    polynomial = p3.polynomial_of(key, hop_limit=case.hop_limit)
    reference = exact_probability(polynomial, p3.probabilities)
    readings = [BackendReading("program-exact", reference)]

    # Serialized case vs fresh evaluation: the generator snapshot must
    # still describe this program (catches nondeterministic evaluation
    # or extraction drift between generation time and audit time).
    snapshot = exact_probability(case.polynomial, case.probabilities)
    check("program:snapshot", snapshot, reference, exact_tolerance,
          detail="stored polynomial disagrees with fresh extraction")

    value = p3.probability_of(key, method="exact",
                              hop_limit=case.hop_limit)
    check("facade:probability", value, reference, exact_tolerance)

    params: Dict[str, object] = {"method": "exact"}
    if case.hop_limit is not None:
        params["hop_limit"] = case.hop_limit
    spec = QuerySpec("probability", key, dict(params))
    batch = p3.executor().run([spec])
    check("executor:batch", batch[0].value, reference, exact_tolerance)

    throwaway = p3.executor(max_workers=1)
    try:
        cold = throwaway.run([QuerySpec("probability", key, dict(params))])
        check("executor:throwaway", cold[0].value, reference,
              exact_tolerance)
    finally:
        throwaway.close()

    value = p3.conditional_probability_of(key, hop_limit=case.hop_limit)
    check("query:conditional", value, reference, 1e-9,
          detail="empty evidence must be a no-op")

    explanation = p3.explain(key, method="exact",
                             hop_limit=case.hop_limit)
    check("query:explain", explanation.probability, reference,
          exact_tolerance)
    if explanation.polynomial != polynomial:
        disagreements.append(Disagreement(
            case.name, "query:explain", explanation.derivation_count,
            len(polynomial), 0.0,
            detail="explanation polynomial differs from direct extraction"))

    epsilon = 0.25
    sufficient = p3.sufficient_provenance(
        key, epsilon=epsilon, method="naive", hop_limit=case.hop_limit)
    check("query:derive", sufficient.full_probability, reference,
          exact_tolerance, detail="derivation query full probability")
    if sufficient.error > epsilon + 1e-9:
        disagreements.append(Disagreement(
            case.name, "query:derive", sufficient.error, epsilon, 1e-9,
            detail="sufficient provenance violates its epsilon bound"))
    if sufficient.sufficient_probability > (
            sufficient.full_probability + exact_tolerance):
        disagreements.append(Disagreement(
            case.name, "query:derive", sufficient.sufficient_probability,
            sufficient.full_probability, exact_tolerance,
            detail="P[sufficient] must be one-sided (<= P[full])"))

    influence = p3.influence(key, method="exact",
                             hop_limit=case.hop_limit)
    for score in influence:
        if not (-exact_tolerance <= score.influence <= 1 + exact_tolerance):
            disagreements.append(Disagreement(
                case.name, "query:influence", score.influence, 0.0, 1.0,
                detail="influence of %s outside [0, 1]" % (score.literal,)))

    target = min(0.95, reference + 0.25)
    plan = p3.modify(key, target=target, hop_limit=case.hop_limit)
    updated = plan.updated_probabilities(p3.probabilities)
    replayed = exact_probability(polynomial, updated)
    check("query:modify", plan.final_probability, replayed, 1e-9,
          detail="plan's claimed final probability must replay")

    return CaseVerdict(case, reference, "program-exact",
                       readings, disagreements)


def audit_case(case: AuditCase,
               backends: Optional[Sequence[str]] = None,
               samples: int = DEFAULT_SAMPLES,
               seed: int = 0,
               repeats: int = 1,
               z: float = DEFAULT_Z,
               exact_tolerance: float = EXACT_TOLERANCE) -> CaseVerdict:
    """Full oracle for one case: backend channels, plus the program
    channels when the case carries a program."""
    verdict = audit_polynomial_case(
        case, backends=backends, samples=samples, seed=seed,
        repeats=repeats, z=z, exact_tolerance=exact_tolerance)
    if case.is_program_case:
        program_verdict = audit_program_case(
            case, seed=seed, exact_tolerance=exact_tolerance)
        verdict.readings.extend(program_verdict.readings)
        verdict.disagreements.extend(program_verdict.disagreements)
    return verdict
