"""Exact success probability of a provenance polynomial.

Computing P[λ] for an arbitrary monotone DNF is #P-hard (Valiant [29]; the
paper's Section 2.2), but the polynomials produced by provenance queries at
case-study scale are small enough for exact evaluation, which the test
suite uses as ground truth for every approximate backend.

Two methods:

- :func:`brute_force_probability`: sum over all 2ⁿ literal assignments.
  Exponential; guarded by a variable-count limit.  Exists purely as an
  oracle for tests.
- :func:`exact_probability`: Shannon expansion
  ``P[λ] = p·P[λ|x=1] + (1-p)·P[λ|x=0]``, branching on the most frequent
  literal, with memoisation on the (canonical, absorbed) cofactor
  polynomials and an independent-support decomposition: when the monomials
  split into literal-disjoint groups, P[λ] = 1 - Π(1 - P[group]).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from ..core.errors import BudgetExceededError
from ..provenance.polynomial import (
    Literal,
    Monomial,
    Polynomial,
    ProbabilityMap,
    variable_order,
)


class ExactLimitError(BudgetExceededError):
    """Raised when brute force is asked to enumerate too many assignments.

    A :class:`~repro.core.errors.BudgetExceededError` (and therefore still
    a ``RuntimeError``, its historical base): the 2ⁿ assignment budget is
    a resource cap like any other, so fallback ladders treat it as
    "this backend cannot afford the input — try the next rung".
    """


def brute_force_probability(polynomial: Polynomial,
                            probabilities: ProbabilityMap,
                            max_literals: int = 22) -> float:
    """Oracle: enumerate every assignment of the polynomial's literals.

    Complexity O(2ⁿ·|λ|); refuses to run past ``max_literals`` variables.
    """
    if polynomial.is_zero:
        return 0.0
    if polynomial.is_one:
        return 1.0
    literals = sorted(polynomial.literals())
    if len(literals) > max_literals:
        raise ExactLimitError(
            "brute force over %d literals exceeds limit %d"
            % (len(literals), max_literals),
            resource="assignments", limit=max_literals,
            used=len(literals),
        )
    total = 0.0
    for values in itertools.product((False, True), repeat=len(literals)):
        assignment = dict(zip(literals, values))
        if polynomial.evaluate(assignment):
            weight = 1.0
            for literal, value in assignment.items():
                p = probabilities[literal]
                weight *= p if value else (1.0 - p)
            total += weight
    return total


def _independent_groups(polynomial: Polynomial) -> List[List[Monomial]]:
    """Partition monomials into groups sharing no literal (union-find)."""
    monomials = list(polynomial.monomials)
    parent = list(range(len(monomials)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    owner: Dict[Literal, int] = {}
    for index, monomial in enumerate(monomials):
        for literal in monomial.literals:
            if literal in owner:
                union(owner[literal], index)
            else:
                owner[literal] = index

    groups: Dict[int, List[Monomial]] = {}
    for index, monomial in enumerate(monomials):
        groups.setdefault(find(index), []).append(monomial)
    return list(groups.values())


def exact_probability(polynomial: Polynomial,
                      probabilities: ProbabilityMap) -> float:
    """Exact P[λ] by memoised Shannon expansion with independence splitting."""
    memo: Dict[Polynomial, float] = {}

    def solve(poly: Polynomial) -> float:
        if poly.is_zero:
            return 0.0
        if poly.is_one:
            return 1.0
        cached = memo.get(poly)
        if cached is not None:
            return cached

        groups = _independent_groups(poly)
        if len(groups) > 1:
            # Independent alternatives: P[⋁ gᵢ] = 1 - Π (1 - P[gᵢ]).
            miss = 1.0
            for group in groups:
                miss *= 1.0 - solve(Polynomial(group))
            value = 1.0 - miss
            memo[poly] = value
            return value

        if len(poly) == 1:
            # Single monomial: independent literals multiply.
            monomial = next(iter(poly.monomials))
            value = monomial.probability(probabilities)
            memo[poly] = value
            return value

        branch = variable_order(poly)[0]
        p = probabilities[branch]
        value = 0.0
        if p > 0.0:
            value += p * solve(poly.restrict(branch, True))
        if p < 1.0:
            value += (1.0 - p) * solve(poly.restrict(branch, False))
        memo[poly] = value
        return value

    return solve(polynomial)


def monomial_probabilities(polynomial: Polynomial,
                           probabilities: ProbabilityMap) -> Sequence[float]:
    """Per-monomial independent-product probabilities, descending."""
    return tuple(
        score for _, score
        in polynomial.monomials_by_probability(probabilities)
    )
