"""Counters, gauges, and fixed-bucket histograms with two exporters.

A :class:`MetricsRegistry` holds named metrics, each of which may carry a
fixed set of label names; every distinct label-value combination is one
series.  Exports are deterministic (sorted by metric name, then label
values) in two formats:

- :meth:`MetricsRegistry.to_json` — a JSON-friendly list of metric
  documents (wrapped into the versioned ``metrics`` envelope by
  :func:`repro.io.serialize.metrics_to_json`);
- :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP``/``# TYPE`` headers, cumulative ``_bucket`` series
  with ``le`` labels, ``_sum``/``_count``).

Histograms use fixed buckets chosen at registration time
(:data:`LATENCY_BUCKETS_SECONDS` by default — spanning 100µs to 10s),
so observation is O(#buckets) with no allocation, cheap enough for the
inference hot path.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets for wall-clock latencies, in seconds.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: The Content-Type a scrape endpoint must declare when serving
#: :meth:`MetricsRegistry.to_prometheus` output (text format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _label_key(labelnames: Tuple[str, ...],
               labels: Dict[str, Any]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            "Metric expects labels %r, got %r"
            % (list(labelnames), sorted(labels)))
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base class: name, help text, label names, and the series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: Any) -> "BoundSeries":
        """A handle bound to one label-value combination.

        Validates the label set and builds the series key once, so hot
        paths called with the same labels every time (the executor cache
        counters, the per-backend inference metrics) pay only the series
        update per event instead of set-comparison + key construction.
        """
        return BoundSeries(self, _label_key(self.labelnames, labels))

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def series_count(self) -> int:
        with self._lock:
            return len(self._series)


class BoundSeries:
    """One (metric, label-key) pair with validation-free update methods.

    Created by :meth:`Metric.labels`.  Exposes the union of the per-kind
    update APIs (``inc``/``set``/``observe``/``value``); calling one the
    underlying metric does not support raises ``AttributeError`` through
    the normal attribute protocol.
    """

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Metric, key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        metric = self._metric
        if metric.kind == "counter" and value < 0:
            raise ValueError("Counters can only increase")
        if metric.kind not in ("counter", "gauge"):
            raise AttributeError("%s has no inc()" % metric.kind)
        with metric._lock:
            metric._series[self._key] = \
                metric._series.get(self._key, 0.0) + value

    def set(self, value: float) -> None:
        if self._metric.kind != "gauge":
            raise AttributeError("%s has no set()" % self._metric.kind)
        with self._metric._lock:
            self._metric._series[self._key] = float(value)

    def observe(self, value: float) -> None:
        metric = self._metric
        if metric.kind != "histogram":
            raise AttributeError("%s has no observe()" % metric.kind)
        index = bisect.bisect_left(metric.buckets, value)
        with metric._lock:
            series = metric._series.get(self._key)
            if series is None:
                series = _HistogramSeries(len(metric.buckets) + 1)
                metric._series[self._key] = series
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def value(self) -> float:
        with self._metric._lock:
            return self._metric._series.get(self._key, 0.0)

    def __repr__(self) -> str:
        return "BoundSeries(%s%r)" % (self._metric.name, self._key)


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError("Counters can only increase")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def to_json(self) -> dict:
        with self._lock:
            series = [
                {"labels": self._labels_dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]
        return {"name": self.name, "type": self.kind, "help": self.help,
                "series": series}


class Gauge(Metric):
    """A value that can go up and down (set to the latest observation)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._series.get(key, 0.0)

    to_json = Counter.to_json


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count  # one slot per finite bucket + +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket histogram of observations (e.g. latencies)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("Histogram needs at least one bucket bound")
        if any(b <= 0 or math.isinf(b) for b in bounds):
            raise ValueError("Bucket bounds must be finite and positive")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets) + 1)
                self._series[key] = series
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def snapshot(self, **labels: Any) -> Optional[dict]:
        """Cumulative bucket counts, sum, and count for one series."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return None
            return self._render(key, series)

    def _render(self, key: Tuple[str, ...],
                series: _HistogramSeries) -> dict:
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, series.counts):
            running += count
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": series.count})
        return {
            "labels": self._labels_dict(key),
            "buckets": cumulative,
            "sum": series.sum,
            "count": series.count,
        }

    def to_json(self) -> dict:
        with self._lock:
            series = [self._render(key, value)
                      for key, value in sorted(self._series.items())]
        return {"name": self.name, "type": self.kind, "help": self.help,
                "buckets": list(self.buckets), "series": series}


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Registration is idempotent: asking for an existing name returns the
    existing metric (label names and kind must match), so instrumentation
    sites can call ``registry.counter(...)`` inline without a separate
    setup phase.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Sequence[str],
                       **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        "Metric %r already registered as %s"
                        % (name, metric.kind))
                if metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        "Metric %r already registered with labels %r"
                        % (name, list(metric.labelnames)))
                return metric
            metric = cls(name, help=help, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS
                  ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- exporters ---------------------------------------------------------------

    def to_json(self) -> List[dict]:
        """Every metric as a JSON-friendly document, sorted by name."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return [metric.to_json() for metric in metrics]

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            document = metric.to_json()
            if document["help"]:
                lines.append("# HELP %s %s" % (metric.name, document["help"]))
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
            if metric.kind == "histogram":
                for series in document["series"]:
                    labels = series["labels"]
                    for bucket in series["buckets"]:
                        le = bucket["le"]
                        rendered = le if le == "+Inf" else _format(le)
                        lines.append("%s_bucket%s %d" % (
                            metric.name,
                            _labels_text(labels, extra=("le", rendered)),
                            bucket["count"]))
                    lines.append("%s_sum%s %s" % (
                        metric.name, _labels_text(labels),
                        _format(series["sum"])))
                    lines.append("%s_count%s %d" % (
                        metric.name, _labels_text(labels), series["count"]))
            else:
                for series in document["series"]:
                    lines.append("%s%s %s" % (
                        metric.name, _labels_text(series["labels"]),
                        _format(series["value"])))
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return "MetricsRegistry(%d metrics)" % len(self._metrics)


def _format(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _labels_text(labels: Dict[str, str],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(name, str(value)) for name, value in sorted(labels.items())]
    if extra is not None:
        pairs.append((extra[0], str(extra[1])))
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, _escape(value)) for name, value in pairs)
