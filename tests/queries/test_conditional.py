"""Unit tests for conditional probability under evidence."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import brute_force_probability, exact_probability
from repro.provenance.polynomial import Polynomial, tuple_literal
from repro.queries.conditional import (
    InconsistentEvidenceError,
    conditional_probability,
    evidence_impact,
    probability_with_negations,
)

A = tuple_literal("a")
B = tuple_literal("b")
C = tuple_literal("c")


class TestNegationsByInclusionExclusion:
    def test_single_negation(self):
        base = make_polynomial(("a",))
        neg = make_polynomial(("b",))
        probs = {A: 0.5, B: 0.4}
        # P(a ∧ ¬b) = 0.5 · 0.6 (independent)
        assert probability_with_negations(
            base, [neg], probs) == pytest.approx(0.3)

    def test_overlapping_negation(self):
        base = make_polynomial(("a", "b"))
        neg = make_polynomial(("b",))
        probs = {A: 0.5, B: 0.4}
        # a·b ∧ ¬b is impossible.
        assert probability_with_negations(
            base, [neg], probs) == pytest.approx(0.0)

    def test_two_negations_match_brute_force(self):
        base = make_polynomial(("a",), ("b", "c"))
        neg1 = make_polynomial(("b",))
        neg2 = make_polynomial(("c",))
        probs = random_probabilities(base + neg1 + neg2, seed=3)
        value = probability_with_negations(base, [neg1, neg2], probs)
        # Brute force: enumerate assignments of {a,b,c}.
        import itertools
        literals = sorted({A, B, C})
        expected = 0.0
        for bits in itertools.product((False, True), repeat=3):
            assignment = dict(zip(literals, bits))
            if (base.evaluate(assignment)
                    and not neg1.evaluate(assignment)
                    and not neg2.evaluate(assignment)):
                weight = 1.0
                for lit, val in assignment.items():
                    weight *= probs[lit] if val else 1 - probs[lit]
                expected += weight
        assert value == pytest.approx(expected)

    def test_limit_enforced(self):
        base = make_polynomial(("a",))
        negatives = [make_polynomial(("x%d" % i,)) for i in range(20)]
        probs = {lit: 0.5 for p in [base] + negatives
                 for lit in p.literals()}
        with pytest.raises(ValueError):
            probability_with_negations(base, negatives, probs)

    def test_no_negations_is_plain_probability(self):
        base = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(base, seed=1)
        assert probability_with_negations(base, [], probs) == pytest.approx(
            exact_probability(base, probs))


class TestConditionalProbability:
    def test_independent_evidence_is_noop(self):
        target = make_polynomial(("a",))
        evidence = make_polynomial(("b",))
        probs = {A: 0.3, B: 0.6}
        assert conditional_probability(
            target, probs, positive=[evidence]) == pytest.approx(0.3)

    def test_entailing_evidence(self):
        # Observing a·b true makes a certain.
        target = make_polynomial(("a",))
        evidence = make_polynomial(("a", "b"))
        probs = {A: 0.3, B: 0.6}
        assert conditional_probability(
            target, probs, positive=[evidence]) == pytest.approx(1.0)

    def test_contradicting_negative_evidence(self):
        target = make_polynomial(("a",))
        probs = {A: 0.3}
        assert conditional_probability(
            target, probs, negative=[make_polynomial(("a",))]
        ) == pytest.approx(0.0)

    def test_bayes_on_overlap(self):
        # target = a·b, evidence = b: P(a·b | b) = P(a).
        target = make_polynomial(("a", "b"))
        evidence = make_polynomial(("b",))
        probs = {A: 0.3, B: 0.6}
        assert conditional_probability(
            target, probs, positive=[evidence]) == pytest.approx(0.3)

    def test_zero_probability_evidence_rejected(self):
        target = make_polynomial(("a",))
        impossible = make_polynomial(("b",))
        probs = {A: 0.3, B: 0.0}
        with pytest.raises(InconsistentEvidenceError):
            conditional_probability(target, probs, positive=[impossible])

    def test_posterior_in_unit_interval(self):
        target = make_polynomial(("a", "b"), ("c",))
        evidence = make_polynomial(("b", "c"))
        probs = random_probabilities(target + evidence, seed=5)
        value = conditional_probability(target, probs, positive=[evidence])
        assert 0.0 <= value <= 1.0


class TestEvidenceImpact:
    def test_reports_prior_posterior_delta(self):
        target = make_polynomial(("a", "b"))
        evidence = make_polynomial(("a",))
        probs = {A: 0.5, B: 0.5}
        impact = evidence_impact(target, probs, positive=[evidence])
        assert impact["prior"] == pytest.approx(0.25)
        assert impact["posterior"] == pytest.approx(0.5)
        assert impact["delta"] == pytest.approx(0.25)


class TestFacadeIntegration:
    def test_program_evidence_applied(self):
        from repro import P3
        from repro.data import ACQUAINTANCE
        p3 = P3.from_source(
            ACQUAINTANCE + 'evidence(like("Steve","Veggies"), true).')
        p3.evaluate()
        conditioned = p3.conditional_probability_of("know", "Ben", "Elena")
        # Conditioning t4=true: 0.2·(0.8 + 0.6 − 0.8·0.6) = 0.1696.
        assert conditioned == pytest.approx(0.1696)

    def test_per_call_negative_evidence(self, acquaintance):
        value = acquaintance.conditional_probability_of(
            "know", "Ben", "Elena",
            evidence={'know("Steve","Elena")': False})
        assert value == pytest.approx(0.0)

    def test_per_call_positive_evidence_on_derived(self, acquaintance):
        value = acquaintance.conditional_probability_of(
            "know", "Ben", "Elena",
            evidence={'know("Steve","Elena")': True})
        # Given the middle hop holds, only r3 remains uncertain.
        assert value == pytest.approx(0.2)


class TestDirectives:
    SRC = """
        t1 0.5: p(1).
        t2 0.4: p(2).
        r1 1.0: q(X) :- p(X).
        query(q(X)).
        evidence(p(1), true).
    """

    def test_parse_directives(self):
        from repro.datalog.parser import parse_program
        program = parse_program(self.SRC)
        assert len(program.queries) == 1
        assert len(program.evidence) == 1
        atom, observed = program.evidence[0]
        assert str(atom) == "p(1)"
        assert observed is True

    def test_directives_round_trip(self):
        from repro.datalog.parser import parse_program
        program = parse_program(self.SRC)
        again = parse_program(str(program))
        assert len(again.queries) == 1
        assert again.evidence == program.evidence

    def test_false_evidence_parses(self):
        from repro.datalog.parser import parse_program
        program = parse_program("p(1). evidence(p(1), false).")
        assert program.evidence[0][1] is False

    def test_nonground_evidence_rejected(self):
        from repro.datalog.parser import parse_program, ParseError
        with pytest.raises(ParseError):
            parse_program("p(1). evidence(p(X)).")

    def test_registered_queries_expand_variables(self):
        from repro import P3
        p3 = P3.from_source(self.SRC)
        p3.evaluate()
        assert p3.registered_queries() == ["q(1)", "q(2)"]

    def test_answer_queries_conditions_on_evidence(self):
        from repro import P3
        p3 = P3.from_source(self.SRC)
        p3.evaluate()
        answers = p3.answer_queries()
        assert answers["q(1)"] == pytest.approx(1.0)   # given p(1) true
        assert answers["q(2)"] == pytest.approx(0.4)   # independent

    def test_answer_queries_without_evidence(self):
        from repro import P3
        p3 = P3.from_source("""
            t1 0.5: p(1).
            r1 1.0: q(X) :- p(X).
            query(q(1)).
        """)
        p3.evaluate()
        assert p3.answer_queries() == {"q(1)": pytest.approx(0.5)}

    def test_plain_relation_named_query_not_a_directive(self):
        from repro.datalog.parser import parse_program
        program = parse_program("query(1,2).")
        assert not program.queries
        assert program.facts[0].atom.relation == "query"


class TestConditionalProperties:
    from hypothesis import given, settings, strategies as st

    @staticmethod
    def _cases():
        from hypothesis import strategies as st
        from repro.provenance.polynomial import (
            Monomial, Polynomial, tuple_literal)
        pool = [tuple_literal(c) for c in "abcde"]

        @st.composite
        def build(draw):
            def poly():
                count = draw(st.integers(1, 3))
                monomials = []
                for _ in range(count):
                    width = draw(st.integers(1, 3))
                    monomials.append(
                        Monomial(draw(st.permutations(pool))[:width]))
                return Polynomial(monomials)
            target, evidence = poly(), poly()
            probs = {lit: draw(st.sampled_from([0.2, 0.5, 0.8]))
                     for lit in pool}
            return target, evidence, probs

        return build()

    @settings(max_examples=40, deadline=None)
    @given(_cases.__func__())
    def test_bayes_identity(self, case):
        # P(q | e) * P(e) == P(q AND e), the defining identity.
        target, evidence, probs = case
        joint = exact_probability(target * evidence, probs)
        p_e = exact_probability(evidence, probs)
        if p_e == 0:
            return
        conditional = conditional_probability(
            target, probs, positive=[evidence])
        assert conditional * p_e == pytest.approx(joint, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(_cases.__func__())
    def test_negative_evidence_complement(self, case):
        # P(q | not e) * P(not e) == P(q) - P(q AND e).
        target, evidence, probs = case
        p_not_e = 1.0 - exact_probability(evidence, probs)
        if p_not_e <= 0:
            return
        conditional = conditional_probability(
            target, probs, negative=[evidence])
        expected = (exact_probability(target, probs)
                    - exact_probability(target * evidence, probs))
        assert conditional * p_not_e == pytest.approx(expected, abs=1e-9)
