"""The provenance graph of Section 3.1.

A directed graph with two vertex kinds:

- **tuple vertices** (rectangles in the paper's figures): one per ground
  atom, annotated with the base probability when the atom is a base tuple;
- **rule-execution vertices** (ovals): one per distinct rule firing,
  annotated with the rule's probability.

Edges run from input tuples into the rule execution that consumes them, and
from a rule execution to the tuple it derives.  The graph may contain cycles
when the program is recursive; cycle *handling* happens at polynomial
extraction time (see :mod:`repro.provenance.extraction`), the graph itself
records every firing faithfully.

:class:`GraphBuilder` implements the engine's recorder protocol and builds
the graph live during evaluation; :func:`graph_from_tables` rebuilds an
identical graph from the relational ``prov_``/``rule_`` capture tables,
demonstrating the Section 3.2 storage path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..datalog.ast import Fact, Program, Rule
from ..datalog.database import Database
from ..datalog.rewrite import PROV_RELATION, RULE_RELATION, execution_id
from ..datalog.terms import Atom
from .polynomial import Literal, ProbabilityMap, rule_literal, tuple_literal


class RuleExecution:
    """One rule-execution vertex: a rule fired on a specific ground body."""

    __slots__ = ("exec_id", "rule_label", "head", "body", "probability", "_hash")

    def __init__(self, rule_label: str, head: str, body: Tuple[str, ...],
                 probability: float) -> None:
        object.__setattr__(self, "rule_label", rule_label)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "probability", float(probability))
        object.__setattr__(
            self, "exec_id", "%s[%s]" % (rule_label, ";".join(body))
        )
        object.__setattr__(self, "_hash", hash((rule_label, head, tuple(body))))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RuleExecution is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RuleExecution)
            and other.rule_label == self.rule_label
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "RuleExecution(%r -> %r)" % (self.exec_id, self.head)

    def __str__(self) -> str:
        return self.exec_id


class ProvenanceGraph:
    """Bipartite derivation graph over tuple keys and rule executions.

    Tuples are keyed by their canonical atom rendering (``str(atom)``), which
    keeps the graph independent of term object identity and matches the keys
    used by tuple literals in provenance polynomials.
    """

    def __init__(self) -> None:
        # tuple key -> base probability (only for base tuples)
        self._base_probability: Dict[str, float] = {}
        self._base_labels: Dict[str, str] = {}
        # tuple key -> rule executions deriving it
        self._derivations: Dict[str, List[RuleExecution]] = defaultdict(list)
        self._execution_set: Set[RuleExecution] = set()
        # rule label -> probability
        self._rule_probability: Dict[str, float] = {}
        self._tuple_keys: Set[str] = set()

    # -- construction ---------------------------------------------------------

    def add_base_tuple(self, key: str, probability: float,
                       label: Optional[str] = None) -> None:
        """Register a base tuple vertex with its probability."""
        self._base_probability[key] = float(probability)
        if label is not None:
            self._base_labels[key] = label
        self._tuple_keys.add(key)

    def add_rule(self, label: str, probability: float) -> None:
        """Register a rule and its probability (for rule literals)."""
        self._rule_probability[label] = float(probability)

    def add_execution(self, execution: RuleExecution) -> bool:
        """Add a rule-execution vertex and its edges; True when new."""
        if execution in self._execution_set:
            return False
        self._execution_set.add(execution)
        self._derivations[execution.head].append(execution)
        self._tuple_keys.add(execution.head)
        self._tuple_keys.update(execution.body)
        if execution.rule_label not in self._rule_probability:
            self._rule_probability[execution.rule_label] = execution.probability
        return True

    # -- inspection -------------------------------------------------------------

    def tuple_keys(self) -> FrozenSet[str]:
        return frozenset(self._tuple_keys)

    def executions(self) -> FrozenSet[RuleExecution]:
        return frozenset(self._execution_set)

    def is_base(self, key: str) -> bool:
        return key in self._base_probability

    def is_derived(self, key: str) -> bool:
        return bool(self._derivations.get(key))

    def __contains__(self, key: str) -> bool:
        return key in self._tuple_keys

    def derivations_of(self, key: str) -> Tuple[RuleExecution, ...]:
        """Rule executions whose head is the given tuple (sorted, stable)."""
        return tuple(sorted(self._derivations.get(key, ()),
                            key=lambda e: e.exec_id))

    def base_probability(self, key: str) -> float:
        return self._base_probability[key]

    def base_label(self, key: str) -> Optional[str]:
        return self._base_labels.get(key)

    def rule_probability(self, label: str) -> float:
        return self._rule_probability[label]

    def rules(self) -> Dict[str, float]:
        return dict(self._rule_probability)

    def probability_map(self) -> Dict[Literal, float]:
        """The :data:`ProbabilityMap` over every literal this graph defines."""
        result: Dict[Literal, float] = {}
        for key, prob in self._base_probability.items():
            result[tuple_literal(key)] = prob
        for label, prob in self._rule_probability.items():
            result[rule_literal(label)] = prob
        return result

    # -- traversal ----------------------------------------------------------------

    def reachable_subgraph(self, root: str,
                           hop_limit: Optional[int] = None) -> "ProvenanceGraph":
        """The provenance of ``root``: the subgraph reachable downward from it.

        ``hop_limit`` bounds the number of derived-tuple expansions along any
        path, mirroring the querying hop limit of Section 6.1.
        """
        sub = ProvenanceGraph()
        sub._rule_probability.update(self._rule_probability)
        # Without a hop limit, visiting each tuple once suffices; with one,
        # a tuple must be re-expanded when reached at a shallower depth, so
        # we track the best (smallest) depth seen per tuple.
        best_depth: Dict[str, int] = {}
        stack: List[Tuple[str, int]] = [(root, 0)]
        sub._tuple_keys.add(root)
        while stack:
            key, depth = stack.pop()
            previous = best_depth.get(key)
            if previous is not None and previous <= depth:
                continue
            best_depth[key] = depth
            if key in self._base_probability:
                sub.add_base_tuple(key, self._base_probability[key],
                                   self._base_labels.get(key))
            if hop_limit is not None and depth >= hop_limit:
                continue
            for execution in self._derivations.get(key, ()):
                sub.add_execution(execution)
                for body_key in execution.body:
                    stack.append((body_key, depth + 1))
        return sub

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Yield all (source, target) edges using vertex display keys."""
        for execution in sorted(self._execution_set, key=lambda e: e.exec_id):
            for body_key in execution.body:
                yield body_key, execution.exec_id
            yield execution.exec_id, execution.head

    def vertex_count(self) -> int:
        return len(self._tuple_keys) + len(self._execution_set)

    def edge_count(self) -> int:
        return sum(len(e.body) + 1 for e in self._execution_set)

    # -- rendering ----------------------------------------------------------------

    def to_dot(self, root: Optional[str] = None) -> str:
        """Graphviz DOT rendering (tuples as boxes, executions as ovals)."""
        lines = ["digraph provenance {", "  rankdir=BT;"]
        tuple_ids = {key: "t%d" % i for i, key in enumerate(sorted(self._tuple_keys))}
        exec_ids = {
            execution: "e%d" % i
            for i, execution in enumerate(
                sorted(self._execution_set, key=lambda e: e.exec_id))
        }
        for key, node in tuple_ids.items():
            attrs = ['shape=box', 'label="%s"' % _dot_escape(key)]
            if key in self._base_probability:
                attrs.append('xlabel="p=%g"' % self._base_probability[key])
            if root is not None and key == root:
                attrs.append("style=bold")
            lines.append("  %s [%s];" % (node, ", ".join(attrs)))
        for execution, node in exec_ids.items():
            lines.append(
                '  %s [shape=oval, label="%s", xlabel="p=%g"];'
                % (node, _dot_escape(execution.rule_label), execution.probability)
            )
        for execution, node in exec_ids.items():
            for body_key in execution.body:
                lines.append("  %s -> %s;" % (tuple_ids[body_key], node))
            lines.append("  %s -> %s;" % (node, tuple_ids[execution.head]))
        lines.append("}")
        return "\n".join(lines)

    def to_text(self, root: str, hop_limit: Optional[int] = None,
                indent: str = "  ") -> str:
        """Human-readable derivation tree rooted at ``root``.

        Cycles are marked ``(cycle)`` and not expanded; repeated subtrees are
        expanded at each occurrence (as in the paper's Figure 8).
        """
        lines: List[str] = []

        def visit(key: str, depth: int, ancestors: FrozenSet[str]) -> None:
            pad = indent * depth
            if key in self._base_probability:
                lines.append("%s%s  [base p=%g]"
                             % (pad, key, self._base_probability[key]))
                # A base tuple may ALSO be re-derivable (the paper's
                # know("Ben","Steve") situation); show those derivations
                # too, unless they cycle.
                if key not in ancestors:
                    for execution in sorted(self._derivations.get(key, ()),
                                            key=lambda e: e.exec_id):
                        lines.append(
                            "%salso via %s  [p=%g]"
                            % (indent * (depth + 1), execution.rule_label,
                               execution.probability))
                        for body_key in execution.body:
                            visit(body_key, depth + 2, ancestors | {key})
                return
            executions = self._derivations.get(key, ())
            if key in ancestors:
                lines.append("%s%s  (cycle)" % (pad, key))
                return
            if hop_limit is not None and depth // 2 >= hop_limit:
                lines.append("%s%s  (hop limit)" % (pad, key))
                return
            if not executions:
                lines.append("%s%s  [underivable]" % (pad, key))
                return
            lines.append("%s%s" % (pad, key))
            for execution in sorted(executions, key=lambda e: e.exec_id):
                lines.append("%svia %s  [p=%g]"
                             % (indent * (depth + 1), execution.rule_label,
                                execution.probability))
                for body_key in execution.body:
                    visit(body_key, depth + 2, ancestors | {key})

        visit(root, 0, frozenset())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ProvenanceGraph(<%d tuples, %d executions>)" % (
            len(self._tuple_keys), len(self._execution_set),
        )


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


class GraphBuilder:
    """Live provenance recorder: plugs into the engine, produces the graph."""

    def __init__(self) -> None:
        self.graph = ProvenanceGraph()

    def record_fact(self, fact: Fact) -> None:
        self.graph.add_base_tuple(str(fact.atom), fact.probability, fact.label)

    def record_firing(self, rule: Rule, head: Atom,
                      body: Tuple[Atom, ...]) -> None:
        execution = RuleExecution(
            rule.label or "?",
            str(head),
            tuple(str(atom) for atom in body),
            rule.probability,
        )
        self.graph.add_execution(execution)


def register_program(graph: ProvenanceGraph, program: Program) -> None:
    """Register every rule of ``program`` (labels + probabilities) in the graph."""
    for rule in program.rules:
        graph.add_rule(rule.label or "?", rule.probability)


def graph_from_tables(database: Database, program: Program) -> ProvenanceGraph:
    """Rebuild the provenance graph from the ``prov_``/``rule_`` capture tables.

    This is the Section 3.2 relational-storage path: the graph produced here
    is identical to the one :class:`GraphBuilder` records live (tested in
    ``tests/provenance/test_graph.py``).
    """
    graph = ProvenanceGraph()
    for fact in program.facts:
        graph.add_base_tuple(str(fact.atom), fact.probability, fact.label)
    register_program(graph, program)

    # rule_ rows: (exec_id, rule_label, body_atom_repr) — body in insert order.
    bodies: Dict[str, List[str]] = defaultdict(list)
    labels: Dict[str, str] = {}
    for atom in database.atoms(RULE_RELATION):
        exec_id, rule_label, body_repr = atom.as_values()
        bodies[str(exec_id)].append(str(body_repr))
        labels[str(exec_id)] = str(rule_label)

    # prov_ rows: (head_repr, probability, exec_id).
    for atom in database.atoms(PROV_RELATION):
        head_repr, probability, exec_id = atom.as_values()
        exec_id = str(exec_id)
        rule_label = labels.get(exec_id, exec_id.split("[", 1)[0])
        body = _ordered_body(exec_id, bodies.get(exec_id, []))
        graph.add_execution(RuleExecution(
            rule_label, str(head_repr), tuple(body), float(probability),
        ))
    return graph


def _ordered_body(exec_id: str, body_rows: List[str]) -> List[str]:
    """Recover source-order body atoms from the execution id encoding.

    The execution id embeds the body as ``rid[b1;b2;...]`` (see
    :func:`repro.datalog.rewrite.execution_id`), which preserves order even
    though relational storage does not.
    """
    if "[" in exec_id and exec_id.endswith("]"):
        encoded = exec_id.split("[", 1)[1][:-1]
        ordered = encoded.split(";") if encoded else []
        if sorted(ordered) == sorted(body_rows):
            return ordered
    return sorted(body_rows)
