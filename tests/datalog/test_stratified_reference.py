"""Stratified-negation engine vs a naive stratified reference evaluator.

The reference computes strata with the same analysis, then runs a naive
(everything-against-everything) fixpoint per stratum with negation checked
against the accumulating database.  The production engine must agree on
every random stratifiable program hypothesis produces.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.datalog.stratification import rule_strata
from repro.datalog.terms import unify_atom


def naive_stratified_reference(program):
    """Naive stratum-by-stratum fixpoint; returns atom strings."""
    atoms = {fact.atom for fact in program.facts}
    for stratum in rule_strata(program):
        changed = True
        while changed:
            changed = False
            for rule in stratum:
                for binding in _bindings(rule, atoms):
                    if not all(guard.evaluate(binding)
                               for guard in rule.constraints):
                        continue
                    if any(neg.substitute(binding) in atoms
                           for neg in rule.negations):
                        continue
                    head = rule.head.substitute(binding)
                    if head not in atoms:
                        atoms.add(head)
                        changed = True
    return {str(atom) for atom in atoms}


def _bindings(rule, atoms):
    def extend(position, subst):
        if position == len(rule.body):
            yield dict(subst)
            return
        pattern = rule.body[position]
        for atom in list(atoms):
            extended = unify_atom(pattern, atom, subst)
            if extended is not None:
                yield from extend(position + 1, extended)

    yield from extend(0, {})


@st.composite
def stratified_programs(draw):
    """Random 3-stratum programs: facts, reachability, negation layers."""
    node_count = draw(st.integers(min_value=2, max_value=4))
    nodes = list(range(node_count))
    pairs = [(a, b) for a in nodes for b in nodes if a != b]
    edge_count = draw(st.integers(min_value=1, max_value=min(5, len(pairs))))
    edges = sorted(draw(st.permutations(pairs))[:edge_count])
    flagged = sorted(set(
        draw(st.lists(st.sampled_from(nodes), max_size=2))))

    lines = ["node(%d)." % n for n in nodes]
    lines += ["edge(%d,%d)." % (a, b) for a, b in edges]
    lines += ["flag(%d)." % n for n in flagged]
    lines += [
        "r1 1.0: reach(X,Y) :- edge(X,Y).",
        "r2 1.0: reach(X,Z) :- edge(X,Y), reach(Y,Z).",
        "r3 1.0: clean(X) :- node(X), not flag(X).",
        "r4 1.0: island(X,Y) :- node(X), node(Y), not reach(X,Y), X != Y.",
    ]
    if draw(st.booleans()):
        lines.append(
            "r5 1.0: goodpair(X,Y) :- island(X,Y), clean(X), not flag(Y).")
    return "\n".join(lines)


class TestStratifiedEngineReference:
    @settings(max_examples=40, deadline=None)
    @given(stratified_programs())
    def test_same_model(self, source):
        engine_result = Engine(parse_program(source),
                               capture_tables=False).run()
        engine_atoms = {str(a) for a in engine_result.database.atoms()}
        reference = naive_stratified_reference(parse_program(source))
        assert engine_atoms == reference

    @settings(max_examples=20, deadline=None)
    @given(stratified_programs())
    def test_negation_free_subset_unaffected(self, source):
        # reach/2 lives in the bottom stratum and must equal what the plain
        # positive program derives.
        positive_only = "\n".join(
            line for line in source.splitlines()
            if not line.startswith(("r3", "r4", "r5")))
        full = Engine(parse_program(source), capture_tables=False).run()
        plain = Engine(parse_program(positive_only),
                       capture_tables=False).run()
        full_reach = {str(a) for a in full.database.atoms("reach")}
        plain_reach = {str(a) for a in plain.database.atoms("reach")}
        assert full_reach == plain_reach
