"""Tenant registry: validation, lifecycle, and the read/write lock."""

import threading

import pytest

from repro.data import ACQUAINTANCE
from repro.serve import (
    TenantExistsError,
    TenantLimitError,
    TenantRegistry,
    UnknownTenantError,
)

KEY = 'know("Ben","Elena")'


@pytest.fixture()
def registry():
    reg = TenantRegistry()
    yield reg
    reg.close()


class TestRegistryLifecycle:
    def test_create_evaluates_up_front(self, registry):
        tenant = registry.create("alpha", source=ACQUAINTANCE)
        assert tenant.system.evaluated
        assert registry.names() == ["alpha"]
        assert registry.get("alpha") is tenant

    def test_create_from_file(self, registry, tmp_path):
        program = tmp_path / "acq.pl"
        program.write_text(ACQUAINTANCE)
        tenant = registry.create("filed", path=str(program))
        assert tenant.system.evaluated

    def test_duplicate_name_is_409_shaped(self, registry):
        registry.create("alpha", source=ACQUAINTANCE)
        with pytest.raises(TenantExistsError):
            registry.create("alpha", source=ACQUAINTANCE)

    def test_unknown_tenant_is_404_shaped(self, registry):
        with pytest.raises(UnknownTenantError):
            registry.get("missing")
        with pytest.raises(UnknownTenantError):
            registry.remove("missing")

    def test_limit_enforced(self):
        reg = TenantRegistry(max_tenants=1)
        try:
            reg.create("one", source=ACQUAINTANCE)
            with pytest.raises(TenantLimitError):
                reg.create("two", source=ACQUAINTANCE)
        finally:
            reg.close()

    def test_remove_frees_the_name(self, registry):
        registry.create("alpha", source=ACQUAINTANCE)
        registry.remove("alpha")
        assert registry.names() == []
        registry.create("alpha", source=ACQUAINTANCE)

    def test_failed_create_releases_the_name(self, registry):
        with pytest.raises(Exception):
            registry.create("broken", source="this is not a program ((")
        assert registry.names() == []
        registry.create("broken", source=ACQUAINTANCE)


class TestValidation:
    @pytest.mark.parametrize("name", ["", "a b", "x/y", "t" * 65, "é"])
    def test_bad_names_rejected(self, registry, name):
        with pytest.raises(ValueError):
            registry.create(name, source=ACQUAINTANCE)

    def test_source_xor_path_required(self, registry):
        with pytest.raises(ValueError):
            registry.create("alpha")
        with pytest.raises(ValueError):
            registry.create("alpha", source=ACQUAINTANCE, path="x.pl")

    def test_unknown_config_override_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.create("alpha", source=ACQUAINTANCE,
                            config_overrides={"bogus_knob": 1})

    def test_config_overrides_apply(self, registry):
        tenant = registry.create("alpha", source=ACQUAINTANCE,
                                 config_overrides={"samples": 123})
        assert tenant.system.config.samples == 123


class TestTenantConcurrency:
    def test_update_excludes_queries(self, registry):
        """A writer in add_facts blocks new query batches until it
        finishes — no reader ever sees the graph mid-growth."""
        tenant = registry.create("alpha", source=ACQUAINTANCE)
        in_write = threading.Event()
        release_write = threading.Event()
        original = tenant.system.add_facts

        def slow_add(facts):
            in_write.set()
            release_write.wait(timeout=10.0)
            return original(facts)

        tenant.system.add_facts = slow_add
        writer = threading.Thread(
            target=tenant.add_facts,
            args=('t9 0.5: live("Zoe","DC").',), daemon=True)
        writer.start()
        assert in_write.wait(timeout=5.0)

        batch_done = threading.Event()
        results = {}

        def query():
            results["batch"] = tenant.run_batch([KEY])
            batch_done.set()

        reader = threading.Thread(target=query, daemon=True)
        reader.start()
        # The reader must be parked behind the writer...
        assert not batch_done.wait(timeout=0.3)
        release_write.set()
        # ...and proceed the moment it commits.
        assert batch_done.wait(timeout=10.0)
        writer.join(timeout=10.0)
        assert results["batch"].ok
        assert tenant.updates == 1
        assert tenant.queries == 1

    def test_epoch_moves_with_updates(self, registry):
        tenant = registry.create("alpha", source=ACQUAINTANCE)
        before = tenant.system.epoch
        _delta, epoch = tenant.add_facts('t9 0.5: live("Zoe","DC").')
        assert epoch == before + 1
