"""Unit tests for the ProbLog surface-syntax parser."""

import pytest

from repro.datalog.ast import Fact, Rule
from repro.datalog.parser import ParseError, parse_clause, parse_program
from repro.datalog.terms import Constant, Variable


class TestFactParsing:
    def test_labelled_probabilistic_fact(self):
        fact = parse_clause('t4 0.4: like("Steve","Veggies").')
        assert isinstance(fact, Fact)
        assert fact.label == "t4"
        assert fact.probability == 0.4
        assert fact.atom.relation == "like"

    def test_plain_fact_defaults(self):
        fact = parse_clause("edge(1,2).")
        assert fact.probability == 1.0
        assert fact.label is None

    def test_double_colon_form(self):
        fact = parse_clause("0.8::edge(1,2).")
        assert fact.probability == 0.8
        assert fact.label is None

    def test_probability_without_label(self):
        fact = parse_clause("0.8: edge(1,2).")
        assert fact.probability == 0.8

    def test_integer_arguments(self):
        fact = parse_clause("trust(1,13).")
        assert fact.atom.as_values() == (1, 13)

    def test_negative_number_argument(self):
        fact = parse_clause("weight(1,-7).")
        assert fact.atom.as_values() == (1, -7)

    def test_float_argument(self):
        fact = parse_clause("score(1,0.75).")
        assert fact.atom.as_values() == (1, 0.75)

    def test_single_quoted_string(self):
        fact = parse_clause("name('Bob').")
        assert fact.atom.as_values() == ("Bob",)

    def test_escaped_quote(self):
        fact = parse_clause('note("say \\"hi\\"").')
        assert fact.atom.as_values() == ('say "hi"',)

    def test_lowercase_identifier_is_constant(self):
        fact = parse_clause("color(red).")
        assert fact.atom.args[0] == Constant("red")

    def test_nullary_fact(self):
        fact = parse_clause("raining.")
        assert fact.atom.relation == "raining"
        assert fact.atom.arity == 0


class TestRuleParsing:
    def test_labelled_rule(self):
        rule = parse_clause(
            "r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1!=P2.")
        assert isinstance(rule, Rule)
        assert rule.label == "r1"
        assert rule.probability == 0.8
        assert len(rule.body) == 2
        assert len(rule.constraints) == 1

    def test_uppercase_is_variable(self):
        rule = parse_clause("q(X) :- p(X).")
        assert rule.head.args[0] == Variable("X")

    def test_underscore_prefix_is_variable(self):
        rule = parse_clause("q(_x) :- p(_x).")
        assert rule.head.args[0] == Variable("_x")

    def test_all_comparison_operators(self):
        rule = parse_clause(
            "q(X,Y) :- p(X,Y), X!=Y, X<Y, X<=Y, X>0, X>=0, X==X.")
        ops = [guard.op for guard in rule.constraints]
        assert ops == ["!=", "<", "<=", ">", ">=", "=="]

    def test_guard_against_constant(self):
        rule = parse_clause('q(X) :- p(X), X != "Steve".')
        guard = rule.constraints[0]
        assert guard.right == Constant("Steve")

    def test_multiline_rule(self):
        rule = parse_clause("""
            r3 0.2: know(P1,P3) :-
                know(P1,P2), know(P2,P3),
                P1!=P3.
        """)
        assert rule.label == "r3"
        assert len(rule.body) == 2

    def test_unsafe_rule_reports_position(self):
        with pytest.raises(ParseError):
            parse_clause("q(X,Y) :- p(X).")


class TestProgramParsing:
    def test_acquaintance_program(self):
        from repro.data import ACQUAINTANCE
        program = parse_program(ACQUAINTANCE)
        assert len(program.facts) == 6
        assert len(program.rules) == 3
        assert program.fact_by_label("t6").atom.relation == "know"

    def test_empty_program(self):
        program = parse_program("")
        assert len(program) == 0

    def test_comment_styles(self):
        program = parse_program("""
            % percent comment
            # hash comment
            // slash comment
            edge(1,2).  % trailing comment
        """)
        assert len(program.facts) == 1

    def test_mixed_auto_and_explicit_labels(self):
        program = parse_program("""
            t1 0.5: p(1).
            p(2).
            r1 0.5: q(X) :- p(X).
        """)
        labels = [fact.label for fact in program.facts]
        assert labels == ["t1", "t2"]


class TestParseErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("edge(1,2)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("edge(1,2)&")
        assert "line 1" in str(excinfo.value)

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_program("edge(1,2.")

    def test_bad_probability_value(self):
        with pytest.raises(ParseError):
            parse_program("t1 1.5: p(1).")

    def test_dangling_body(self):
        with pytest.raises(ParseError):
            parse_program("q(X) :- .")

    def test_bare_term_body_item(self):
        with pytest.raises(ParseError):
            parse_program("q(X) :- p(X), Y.")

    def test_trailing_garbage_in_clause(self):
        with pytest.raises(ParseError):
            parse_clause("p(1). q(2).")

    def test_error_carries_line_and_column(self):
        try:
            parse_program("p(1).\nq(2)&.")
        except ParseError as exc:
            assert exc.line == 2
            assert exc.column > 0
        else:
            pytest.fail("expected ParseError")


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        't1 0.4: like("Steve","Veggies").',
        "r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1!=P3.",
        "t1 1.0: trust(1,2).",
    ])
    def test_str_reparses_identically(self, source):
        clause = parse_clause(source)
        again = parse_clause(str(clause))
        assert str(again) == str(clause)


class TestReservedNames:
    """``m_``-prefixed relations are reserved for the magic-set rewrite."""

    def test_reserved_fact_relation_rejected(self):
        from repro.datalog.parser import ReservedNameError
        with pytest.raises(ReservedNameError) as info:
            parse_clause("m_path(1,2).")
        assert info.value.name == "m_path"
        assert "my_path" in str(info.value)  # suggests a rename

    def test_reserved_head_relation_rejected(self):
        from repro.datalog.parser import ReservedNameError
        with pytest.raises(ReservedNameError):
            parse_clause("r1 1.0: m_p(X) :- q(X).")

    def test_reserved_body_relation_rejected(self):
        from repro.datalog.parser import ReservedNameError
        with pytest.raises(ReservedNameError):
            parse_clause("r1 1.0: p(X) :- m_q(X).")

    def test_reserved_name_error_is_parse_error(self):
        from repro.datalog.parser import ReservedNameError
        assert issubclass(ReservedNameError, ParseError)
        try:
            parse_program("p(1).\nq(X) :- m_aux(X).")
        except ReservedNameError as exc:
            assert exc.line == 2
            assert exc.column > 0
        else:
            pytest.fail("expected ReservedNameError")

    def test_m_prefix_requires_underscore(self):
        # Only the literal "m_" prefix is reserved; "magic"/"mpath" fine.
        parse_clause("magic(1).")
        parse_clause("mpath(1,2).")
