"""Ablation — goal-directed (magic sets) vs full bottom-up evaluation.

When the analyst asks about *one* tuple, evaluating the whole least model
(as the paper's prototype does) wastes work on irrelevant derivations.
This ablation measures the magic-set specialisation on BFS samples of the
trust network: same answer, same provenance polynomial, a fraction of the
rule firings.
"""

import time

from repro import P3, P3Config
from repro.core.goal import goal_directed_query

from reporting import record_table
from workloads import bfs_sample

#: Dense BFS samples make unbounded extraction explode; compare provenance
#: under a modest hop limit (evaluation itself is always complete).
HOP_LIMIT = 3


def _pick_query(p3):
    """A mutual-trust tuple from the sample (any derivable one)."""
    for atom in sorted(map(str, p3.derived_atoms("mutualTrustPath"))):
        return atom
    return None


def test_ablation_magic_sets(benchmark):
    rows = []
    speedups = []
    for size in (30, 50, 70):
        sample = bfs_sample(size, seed=1)
        program = sample.to_program()

        start = time.perf_counter()
        full = P3(program, P3Config(hop_limit=HOP_LIMIT))
        full.evaluate()
        full_time = time.perf_counter() - start
        key = _pick_query(full)
        if key is None:
            continue
        values = tuple(int(v) for v in key[len("mutualTrustPath("):-1]
                       .split(","))

        start = time.perf_counter()
        directed = goal_directed_query(
            sample.to_program(), "mutualTrustPath", *values,
            config=P3Config(hop_limit=HOP_LIMIT))
        directed_time = time.perf_counter() - start

        # Same provenance, same probability.
        assert directed.polynomial_of(key) == full.polynomial_of(key)

        full_firings = full.evaluate().firing_count
        rows.append([size, key, full_firings, directed.firing_count,
                     full_time, directed_time])
        speedups.append(full_firings / max(1, directed.firing_count))

    record_table(
        "ablation_magic",
        "Ablation: goal-directed (magic sets) vs full evaluation on BFS "
        "samples",
        ["sample size", "query", "full firings", "magic firings",
         "full time (s)", "magic time (s)"],
        rows,
    )
    # Magic should prune a substantial share of the work on average.
    assert sum(speedups) / len(speedups) > 1.5

    sample = bfs_sample(30, seed=1)
    full = P3(sample.to_program(), P3Config(hop_limit=HOP_LIMIT))
    full.evaluate()
    key = _pick_query(full)
    values = tuple(int(v) for v in key[len("mutualTrustPath("):-1].split(","))
    benchmark.pedantic(
        goal_directed_query,
        args=(sample.to_program(), "mutualTrustPath") + values,
        rounds=2, iterations=1)
