"""Synthetic Bitcoin-OTC-like trust network (substitution substrate).

The paper's evaluation (Sections 5.2 and 6) uses the SNAP *Bitcoin OTC
trust weighted signed network*: 5,881 nodes, 35,592 directed edges, integer
trust weights in [-10, 10] (~89% positive), rescaled to [0, 1] probability
scores.  The dataset cannot be downloaded in this offline environment, so —
per DESIGN.md §5 — :func:`generate_network` builds a seeded synthetic graph
that matches the statistics the experiments actually depend on:

- node/edge counts (configurable; defaults match the real data),
- heavy-tailed in/out degree distributions (preferential attachment),
- the signed weight distribution (mostly small positive ratings),
- enough reciprocity that mutual trust paths exist (the real network is a
  trading platform; mutual ratings are common).

The module also implements the paper's sampling procedure: breadth-first
expansion from random seed nodes until a node budget is reached, collecting
the traversed edges (Section 6.1), plus the fixed node/edge-count variant
used for the query experiments (150 nodes / 150 edges, Section 6.2).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..datalog.ast import Fact, Program
from ..datalog.parser import parse_program
from ..datalog.terms import atom as make_atom
from .programs import TRUST_RULES


def rescale_weight(weight: int) -> float:
    """Map a signed trust rating in [-10, 10] to a probability in [0, 1].

    This is the paper's re-scaling for Section 5.2: ``(w + 10) / 20``.
    """
    if not -10 <= weight <= 10:
        raise ValueError("Trust weight must be in [-10, 10], got %r" % weight)
    return (weight + 10) / 20.0


class TrustEdge:
    """A directed, weighted trust statement ``src → dst``."""

    __slots__ = ("src", "dst", "weight", "probability")

    def __init__(self, src: int, dst: int, weight: int) -> None:
        self.src = src
        self.dst = dst
        self.weight = weight
        self.probability = rescale_weight(weight)

    def __repr__(self) -> str:
        return "TrustEdge(%d -> %d, w=%d, p=%.2f)" % (
            self.src, self.dst, self.weight, self.probability,
        )


class TrustNetwork:
    """A directed trust graph with signed integer weights."""

    def __init__(self, edges: Iterable[TrustEdge] = ()) -> None:
        self.edges: Dict[Tuple[int, int], TrustEdge] = {}
        self.out_adjacency: Dict[int, List[int]] = {}
        self.in_adjacency: Dict[int, List[int]] = {}
        self.nodes: Set[int] = set()
        for edge in edges:
            self.add_edge(edge)

    def add_edge(self, edge: TrustEdge) -> None:
        key = (edge.src, edge.dst)
        if edge.src == edge.dst:
            raise ValueError("Self-trust edges are not allowed: %r" % (edge,))
        if key in self.edges:
            return
        self.edges[key] = edge
        self.out_adjacency.setdefault(edge.src, []).append(edge.dst)
        self.in_adjacency.setdefault(edge.dst, []).append(edge.src)
        self.nodes.add(edge.src)
        self.nodes.add(edge.dst)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def positive_fraction(self) -> float:
        if not self.edges:
            return 0.0
        positive = sum(1 for e in self.edges.values() if e.weight > 0)
        return positive / len(self.edges)

    def out_degree(self, node: int) -> int:
        return len(self.out_adjacency.get(node, ()))

    # -- sampling (Section 6.1) ------------------------------------------------

    def bfs_sample(self, node_budget: int, seed: Optional[int] = None,
                   seed_count: int = 3) -> "TrustNetwork":
        """Sample a subgraph per the paper's procedure.

        Randomly choose ``seed_count`` seed nodes, expand breadth-first over
        outgoing trust edges until ``node_budget`` nodes are visited, then
        collect all traversed edges (edges between visited nodes).
        """
        if node_budget <= 0:
            raise ValueError("node_budget must be positive")
        rng = random.Random(seed)
        nodes = sorted(self.nodes)
        if not nodes:
            return TrustNetwork()
        seeds = rng.sample(nodes, min(seed_count, len(nodes)))
        visited: Set[int] = set()
        frontier: List[int] = list(seeds)
        while frontier and len(visited) < node_budget:
            next_frontier: List[int] = []
            for node in frontier:
                if len(visited) >= node_budget:
                    break
                if node in visited:
                    continue
                visited.add(node)
                successors = list(self.out_adjacency.get(node, ()))
                rng.shuffle(successors)
                next_frontier.extend(successors)
            frontier = next_frontier
        # Keep expanding from random unvisited nodes when BFS ran dry before
        # meeting the budget (disconnected graphs).
        remaining = [n for n in nodes if n not in visited]
        rng.shuffle(remaining)
        while len(visited) < node_budget and remaining:
            visited.add(remaining.pop())
        induced = TrustNetwork()
        for (src, dst), edge in sorted(self.edges.items()):
            if src in visited and dst in visited:
                induced.add_edge(TrustEdge(src, dst, edge.weight))
        return induced

    def sample_nodes_edges(self, node_budget: int, edge_budget: int,
                           seed: Optional[int] = None) -> "TrustNetwork":
        """The Section-6.2 sample shape: fixed node *and* edge budgets.

        BFS-samples ``node_budget`` nodes, then keeps ``edge_budget`` edges,
        preferring mutual (reciprocated) pairs so mutual-trust queries stay
        meaningful, exactly because the evaluation queries mutual paths.
        """
        base = self.bfs_sample(node_budget, seed=seed)
        if base.edge_count <= edge_budget:
            return base
        rng = random.Random(seed)
        edges = sorted(base.edges.values(), key=lambda e: (e.src, e.dst))
        mutual = [e for e in edges if (e.dst, e.src) in base.edges]
        rest = [e for e in edges if (e.dst, e.src) not in base.edges]
        rng.shuffle(rest)
        chosen: List[TrustEdge] = []
        chosen.extend(mutual[:edge_budget])
        chosen.extend(rest[: max(0, edge_budget - len(chosen))])
        sampled = TrustNetwork()
        for edge in chosen[:edge_budget]:
            sampled.add_edge(TrustEdge(edge.src, edge.dst, edge.weight))
        return sampled

    # -- conversion --------------------------------------------------------------

    def to_facts(self) -> List[Fact]:
        """``trust(src, dst)`` probabilistic facts, rescaled weights."""
        facts = []
        for (src, dst), edge in sorted(self.edges.items()):
            facts.append(Fact(make_atom("trust", src, dst), edge.probability))
        return facts

    def to_program(self, rules: Optional[str] = None) -> Program:
        """Full Trust program: Figure 7 rules plus this network's facts."""
        program = parse_program(rules if rules is not None else TRUST_RULES)
        for fact in self.to_facts():
            program.add(fact)
        return program

    def __repr__(self) -> str:
        return "TrustNetwork(<%d nodes, %d edges, %.0f%% positive>)" % (
            self.node_count, self.edge_count, 100 * self.positive_fraction(),
        )


def _sample_weight(rng: random.Random, positive_fraction: float) -> int:
    """Signed rating: mostly small positive values, like the real data.

    Magnitudes follow a truncated geometric distribution (mode 1), matching
    Bitcoin-OTC's concentration at ratings ±1..±3.
    """
    magnitude = 1
    while magnitude < 10 and rng.random() < 0.45:
        magnitude += 1
    if rng.random() < positive_fraction:
        return magnitude
    return -magnitude


def generate_network(nodes: int = 5881, edges: int = 35592,
                     seed: int = 2020,
                     positive_fraction: float = 0.89,
                     reciprocity: float = 0.35) -> TrustNetwork:
    """Generate a Bitcoin-OTC-like trust network.

    Directed preferential-attachment wiring produces heavy-tailed degree
    distributions; ``reciprocity`` is the chance that a new edge is
    immediately answered by a reverse rating (mutual trust), which the real
    trading network exhibits and the mutualTrustPath experiments require.
    """
    if nodes < 2:
        raise ValueError("Need at least 2 nodes")
    max_edges = nodes * (nodes - 1)
    if edges > max_edges:
        raise ValueError("Too many edges for %d nodes" % nodes)
    rng = random.Random(seed)
    network = TrustNetwork()

    # Start from a small seed cycle so attachment has targets.
    seed_size = min(5, nodes)
    for index in range(seed_size):
        src = index
        dst = (index + 1) % seed_size
        if src != dst:
            network.add_edge(TrustEdge(src, dst,
                                       _sample_weight(rng, positive_fraction)))

    # Repeated nodes in this list implement preferential attachment.
    attachment: List[int] = []
    for (src, dst) in network.edges:
        attachment.extend((src, dst))
    next_node = seed_size

    while network.edge_count < edges:
        if next_node < nodes:
            src = next_node
            next_node += 1
        else:
            src = attachment[rng.randrange(len(attachment))]
        for _ in range(20):  # retries to find a fresh (src, dst) pair
            dst = attachment[rng.randrange(len(attachment))]
            if dst != src and (src, dst) not in network.edges:
                break
        else:
            continue
        network.add_edge(TrustEdge(src, dst,
                                   _sample_weight(rng, positive_fraction)))
        attachment.extend((src, dst))
        if (rng.random() < reciprocity and network.edge_count < edges
                and (dst, src) not in network.edges):
            network.add_edge(TrustEdge(dst, src,
                                       _sample_weight(rng, positive_fraction)))
            attachment.extend((dst, src))
    return network


def paper_fragment() -> TrustNetwork:
    """The 6-node fragment behind Figure 8 / Tables 5-7.

    Edges and probabilities follow Table 5 exactly:
    trust(1,2)=0.9, trust(2,1)=0.9, trust(1,13)=0.65, trust(13,2)=0.6,
    trust(2,6)=0.75, trust(6,2)=0.7.
    """
    values = {
        (1, 2): 0.9,
        (2, 1): 0.9,
        (1, 13): 0.65,
        (13, 2): 0.6,
        (2, 6): 0.75,
        (6, 2): 0.7,
    }
    network = TrustNetwork()
    for (src, dst), probability in sorted(values.items()):
        weight = round(probability * 20 - 10)
        edge = TrustEdge(src, dst, weight)
        # Keep the exact probabilities of Table 5 (rounding the weight back
        # would perturb them).
        edge.probability = probability
        network.add_edge(edge)
    return network
