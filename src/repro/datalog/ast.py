"""Clause-level AST for ProbLog programs: facts, rules, and programs.

A :class:`Program` is the parsed form of Figure 1's syntax: a set of
probabilistic facts (``tid p: atom.``) and weighted conjunctive rules
(``rid p: head :- body.``).  Probabilities default to 1.0, which recovers
plain Datalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .builtins import Comparison
from .terms import Atom, Variable

_LABEL_COUNTER_FACT = "t"
_LABEL_COUNTER_RULE = "r"


class ClauseError(ValueError):
    """Raised for malformed clauses (bad probability, unsafe rule, ...)."""


def _check_probability(probability: float, context: str) -> float:
    try:
        probability = float(probability)
    except (TypeError, ValueError):
        raise ClauseError("%s probability must be a number" % context)
    if not 0.0 <= probability <= 1.0:
        raise ClauseError(
            "%s probability must be in [0, 1], got %s" % (context, probability)
        )
    return probability


class Fact:
    """A probabilistic base tuple: ``tid p: atom.``"""

    __slots__ = ("label", "probability", "atom")

    def __init__(self, atom: Atom, probability: float = 1.0,
                 label: Optional[str] = None) -> None:
        if not atom.is_ground:
            raise ClauseError("Facts must be ground: %s" % atom)
        self.atom = atom
        self.probability = _check_probability(probability, "Fact")
        self.label = label

    @property
    def is_probabilistic(self) -> bool:
        return self.probability < 1.0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fact)
            and other.atom == self.atom
            and other.probability == self.probability
            and other.label == self.label
        )

    def __hash__(self) -> int:
        return hash(("Fact", self.atom, self.probability, self.label))

    def __repr__(self) -> str:
        return "Fact(%r, %r, %r)" % (self.atom, self.probability, self.label)

    def __str__(self) -> str:
        prefix = "%s %s: " % (self.label or "_", _fmt_prob(self.probability))
        return "%s%s." % (prefix, self.atom)


class Rule:
    """A weighted conjunctive rule: ``rid p: head :- b1, ..., bn, guards.``

    ``body`` holds the positive relational subgoals in source order;
    ``constraints`` holds the comparison guards; ``negations`` holds
    negated subgoals (``not q(...)``, the stratified-negation extension —
    see :mod:`repro.datalog.stratification`).  Rules must be *safe*: every
    head, guard, and negated-subgoal variable must occur in some positive
    body atom.
    """

    __slots__ = ("label", "probability", "head", "body", "constraints",
                 "negations")

    def __init__(self, head: Atom, body: Sequence[Atom],
                 constraints: Sequence[Comparison] = (),
                 probability: float = 1.0,
                 label: Optional[str] = None,
                 negations: Sequence[Atom] = ()) -> None:
        body = tuple(body)
        constraints = tuple(constraints)
        negations = tuple(negations)
        if not body:
            raise ClauseError("Rule body must contain at least one atom: %s" % head)
        body_vars: Set[Variable] = set()
        for atom in body:
            body_vars.update(atom.variables())
        for var in head.variables():
            if var not in body_vars:
                raise ClauseError(
                    "Unsafe rule: head variable %s of %s not bound in body"
                    % (var, head)
                )
        for guard in constraints:
            for var in guard.variables():
                if var not in body_vars:
                    raise ClauseError(
                        "Unsafe rule: guard variable %s of %s not bound in body"
                        % (var, guard)
                    )
        for negated in negations:
            for var in negated.variables():
                if var not in body_vars:
                    raise ClauseError(
                        "Unsafe rule: negated subgoal variable %s of %s not "
                        "bound in a positive body atom" % (var, negated)
                    )
        self.head = head
        self.body = body
        self.constraints = constraints
        self.negations = negations
        self.probability = _check_probability(probability, "Rule")
        self.label = label

    @property
    def is_probabilistic(self) -> bool:
        return self.probability < 1.0

    @property
    def is_recursive(self) -> bool:
        """True when the head relation also appears in the body (direct recursion)."""
        return any(atom.relation == self.head.relation for atom in self.body)

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set(self.head.variables())
        for atom in self.body:
            result.update(atom.variables())
        for guard in self.constraints:
            result.update(guard.variables())
        for negated in self.negations:
            result.update(negated.variables())
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and other.head == self.head
            and other.body == self.body
            and other.constraints == self.constraints
            and other.negations == self.negations
            and other.probability == self.probability
            and other.label == self.label
        )

    def __hash__(self) -> int:
        return hash(
            ("Rule", self.head, self.body, self.constraints, self.negations,
             self.probability, self.label)
        )

    def __repr__(self) -> str:
        return "Rule(%r, %r, %r, %r, %r, negations=%r)" % (
            self.head, self.body, self.constraints, self.probability,
            self.label, self.negations,
        )

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts.extend("not %s" % atom for atom in self.negations)
        parts.extend(str(guard) for guard in self.constraints)
        prefix = "%s %s: " % (self.label or "_", _fmt_prob(self.probability))
        return "%s%s :- %s." % (prefix, self.head, ", ".join(parts))


def _fmt_prob(probability: float) -> str:
    text = "%g" % probability
    return text if "." in text or "e" in text else text + ".0"


class Program:
    """A ProbLog program: an ordered collection of facts and rules.

    Labels (``tid``/``rid``) are auto-assigned when missing and must be
    unique; they identify rule literals in provenance polynomials.
    """

    def __init__(self, clauses: Iterable[object] = ()) -> None:
        self.facts: List[Fact] = []
        self.rules: List[Rule] = []
        #: ``query(...)`` directives: atom patterns (may contain variables).
        self.queries: List[Atom] = []
        #: ``evidence(...)`` directives: (ground atom, observed truth).
        self.evidence: List[Tuple[Atom, bool]] = []
        self._labels: Set[str] = set()
        self._fact_counter = 0
        self._rule_counter = 0
        for clause in clauses:
            self.add(clause)

    def add(self, clause: object) -> None:
        """Add a fact or rule, auto-labelling it if needed."""
        if isinstance(clause, Fact):
            clause.label = self._assign_label(clause.label, _LABEL_COUNTER_FACT)
            self.facts.append(clause)
        elif isinstance(clause, Rule):
            clause.label = self._assign_label(clause.label, _LABEL_COUNTER_RULE)
            self.rules.append(clause)
        else:
            raise TypeError("Program clauses must be Fact or Rule, got %r" % clause)

    def _assign_label(self, label: Optional[str], prefix: str) -> str:
        if label is None:
            label = self._next_label(prefix)
        if label in self._labels:
            raise ClauseError("Duplicate clause label: %r" % label)
        self._labels.add(label)
        return label

    def _next_label(self, prefix: str) -> str:
        while True:
            if prefix == _LABEL_COUNTER_FACT:
                self._fact_counter += 1
                candidate = "%s%d" % (prefix, self._fact_counter)
            else:
                self._rule_counter += 1
                candidate = "%s%d" % (prefix, self._rule_counter)
            if candidate not in self._labels:
                return candidate

    def add_query(self, pattern: Atom) -> None:
        """Register a ``query(...)`` directive (pattern may have variables)."""
        self.queries.append(pattern)

    def add_evidence(self, atom: Atom, observed: bool = True) -> None:
        """Register an ``evidence(...)`` directive (ground observation)."""
        if not atom.is_ground:
            raise ClauseError("Evidence must be ground: %s" % atom)
        self.evidence.append((atom, observed))

    @property
    def clauses(self) -> List[object]:
        return list(self.facts) + list(self.rules)

    def rule_by_label(self, label: str) -> Rule:
        for rule in self.rules:
            if rule.label == label:
                return rule
        raise KeyError("No rule labelled %r" % label)

    def fact_by_label(self, label: str) -> Fact:
        for fact in self.facts:
            if fact.label == label:
                return fact
        raise KeyError("No fact labelled %r" % label)

    def relations(self) -> Set[str]:
        """All relation names mentioned anywhere in the program."""
        names: Set[str] = set()
        for fact in self.facts:
            names.add(fact.atom.relation)
        for rule in self.rules:
            names.add(rule.head.relation)
            for atom in rule.body:
                names.add(atom.relation)
            for atom in rule.negations:
                names.add(atom.relation)
        return names

    def edb_relations(self) -> Set[str]:
        """Relations defined only by facts (the extensional database)."""
        return self.relations() - self.idb_relations()

    def idb_relations(self) -> Set[str]:
        """Relations appearing in some rule head (the intensional database)."""
        return {rule.head.relation for rule in self.rules}

    def dependency_pairs(self) -> Iterator[Tuple[str, str]]:
        """Yield (head_relation, body_relation) dependency edges."""
        for rule in self.rules:
            for atom in rule.body:
                yield rule.head.relation, atom.relation

    def probabilities(self) -> Dict[str, float]:
        """Map every clause label to its probability."""
        result = {fact.label: fact.probability for fact in self.facts}
        result.update({rule.label: rule.probability for rule in self.rules})
        return result

    def __len__(self) -> int:
        return len(self.facts) + len(self.rules)

    def __iter__(self) -> Iterator[object]:
        return iter(self.clauses)

    def __str__(self) -> str:
        lines = [str(clause) for clause in self.clauses]
        lines.extend("query(%s)." % pattern for pattern in self.queries)
        lines.extend(
            "evidence(%s,%s)." % (atom, "true" if observed else "false")
            for atom, observed in self.evidence)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Program(<%d facts, %d rules>)" % (len(self.facts), len(self.rules))
