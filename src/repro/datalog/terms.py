"""Terms and atoms for the Datalog/ProbLog substrate.

The term language is deliberately small: a term is either a :class:`Constant`
(wrapping a Python string, int, or float) or a :class:`Variable`.  An
:class:`Atom` is a relation name applied to a tuple of terms.  Ground atoms
(no variables) double as the tuple identity used throughout the provenance
subsystem, so both classes are immutable and hashable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple, Union


class Term:
    """Abstract base class for terms; see :class:`Constant` and :class:`Variable`."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        raise NotImplementedError


class Constant(Term):
    """An immutable constant term wrapping a Python value.

    Values are compared by type *and* value so that ``Constant(1)`` and
    ``Constant("1")`` are distinct.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Union[str, int, float]) -> None:
        if not isinstance(value, (str, int, float)):
            raise TypeError(
                "Constant value must be str, int, or float, got %r" % type(value)
            )
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((type(value).__name__, value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constant is immutable")

    @property
    def is_ground(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and type(other.value) is type(self.value)
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Constant(%r)" % (self.value,)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return '"%s"' % self.value
        return str(self.value)


class Variable(Term):
    """A logic variable, identified by name within a clause."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("Variable name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    @property
    def is_ground(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return "Variable(%r)" % (self.name,)

    def __str__(self) -> str:
        return self.name


#: A substitution maps variables to constants (or, transiently, other terms).
Substitution = Dict[Variable, Term]


class Atom:
    """A relation name applied to a tuple of terms.

    Ground atoms serve as tuple identities in the provenance graph; they are
    immutable, hashable, and render as ``relation(arg1,arg2)``.
    """

    __slots__ = ("relation", "args", "_hash", "_str")

    def __init__(self, relation: str, args: Iterable[Term] = ()) -> None:
        if not relation:
            raise ValueError("Atom relation name must be non-empty")
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError("Atom arguments must be Terms, got %r" % (arg,))
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((relation, args)))
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        return all(arg.is_ground for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of this atom in argument order (with repeats)."""
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def substitute(self, subst: Substitution) -> "Atom":
        """Return a copy of this atom with variables replaced per ``subst``."""
        new_args = tuple(
            subst.get(arg, arg) if isinstance(arg, Variable) else arg
            for arg in self.args
        )
        return Atom(self.relation, new_args)

    def as_values(self) -> Tuple[Union[str, int, float], ...]:
        """Return the raw Python values of a ground atom's arguments."""
        values = []
        for arg in self.args:
            if not isinstance(arg, Constant):
                raise ValueError("as_values() requires a ground atom: %s" % self)
            values.append(arg.value)
        return tuple(values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other.relation == self.relation
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Atom(%r, %r)" % (self.relation, self.args)

    def __str__(self) -> str:
        # The rendering doubles as the tuple's provenance key and is built
        # several times per rule firing, so it is cached (atoms are
        # immutable; the cache cannot go stale).
        cached = self._str
        if cached is None:
            if not self.args:
                cached = self.relation
            else:
                cached = "%s(%s)" % (
                    self.relation, ",".join(str(a) for a in self.args))
            object.__setattr__(self, "_str", cached)
        return cached


def atom(relation: str, *values: Union[str, int, float, Term]) -> Atom:
    """Convenience constructor: wrap raw Python values as constants.

    >>> str(atom("live", "Steve", "DC"))
    'live("Steve","DC")'
    """
    args = tuple(
        value if isinstance(value, Term) else Constant(value) for value in values
    )
    return Atom(relation, args)


def unify_atom(pattern: Atom, ground: Atom,
               subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify a (possibly non-ground) ``pattern`` atom against a ``ground`` atom.

    Returns an extended substitution, or ``None`` when unification fails.
    The input substitution is never mutated.
    """
    if pattern.relation != ground.relation or pattern.arity != ground.arity:
        return None
    result: Substitution = dict(subst) if subst else {}
    for pat_arg, ground_arg in zip(pattern.args, ground.args):
        if isinstance(pat_arg, Constant):
            if pat_arg != ground_arg:
                return None
        else:
            bound = result.get(pat_arg)
            if bound is None:
                result[pat_arg] = ground_arg
            elif bound != ground_arg:
                return None
    return result
