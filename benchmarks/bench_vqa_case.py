"""Section 5.1 — the VQA case study as a benchmark (CS1 in DESIGN.md).

Times the full pipeline (evaluate + provenance queries) on the modified
scene and records the answer rankings before and after the Query 1C fix,
plus the Table 4 unique-influence values.
"""

from repro import P3, P3Config
from repro.data import fixed_scene, modified_scene

from reporting import record_table

HOP_LIMIT = 8


def _evaluate(scene):
    p3 = P3(scene.to_program(), P3Config(hop_limit=HOP_LIMIT))
    p3.evaluate()
    return p3


def _ranking(p3):
    return sorted(
        ((atom.as_values()[1], p3.probability_of(str(atom)))
         for atom in p3.derived_atoms("ans")),
        key=lambda pair: -pair[1])


def test_vqa_debugging_pipeline(benchmark):
    buggy = benchmark.pedantic(
        lambda: _evaluate(modified_scene()), rounds=2, iterations=1)

    before = _ranking(buggy)
    assert before[0][0] == "barn"  # the bug

    barn_literals = buggy.polynomial_of("ans", "ID1", "barn").literals()
    report = buggy.influence("ans", "ID1", "church", relation="sim")
    unique = [s for s in report if s.literal not in barn_literals][:3]
    assert str(unique[0].literal) == 'sim("church","cross")'

    repaired = _evaluate(fixed_scene())
    after = _ranking(repaired)
    assert after[0][0] == "church"

    record_table(
        "vqa_case_study",
        "Section 5.1 VQA case study: answers before/after the sim fix, and "
        "Table 4 unique influential tuples",
        ["item", "value"],
        [["answers (modified scene)",
          ", ".join("%s=%.4f" % pair for pair in before)],
         ["answers (fixed scene)",
          ", ".join("%s=%.4f" % pair for pair in after)]]
        + [["unique influence: %s" % s.literal, s.influence] for s in unique],
    )
