"""The unified inference-backend request object.

Before this module, every backend grew its own keyword convention —
``samples=`` and ``seed=`` on the sampling backends, ``max_workers=`` on
the batch path, deadlines threaded through thread-locals, budgets through
an ambient context variable — and every caller (executor, fallback
ladder, audit oracle, CLI) had to know which backend accepted which.
:class:`InferenceRequest` collapses that sprawl into one typed value
accepted by all seven registered backends:

================  =============================================================
field             meaning
================  =============================================================
``samples``       Monte-Carlo sample budget (ignored by exact backends)
``seed``          RNG seed; None = non-reproducible entropy
``workers``       intra-call parallelism hint for vectorized kernels
``depth``         search/deepening depth hint (bounded evaluation)
``deadline``      *absolute* ``time.monotonic()`` instant to stop by
``budget``        a :class:`~repro.resilience.budgets.ResourceBudget` to meter
================  =============================================================

Requests are immutable; derive variants with :meth:`InferenceRequest.replace`.
The legacy keyword paths (``backend.run(poly, probs, samples=…, seed=…)``
and four-positional-argument backend functions) still work but emit
:class:`DeprecationWarning` — see docs/INFERENCE.md for migration notes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["InferenceRequest", "DEFAULT_SAMPLES"]

#: Default Monte-Carlo sample budget when a request does not specify one.
DEFAULT_SAMPLES = 10000


class InferenceRequest:
    """Typed, immutable parameters for one backend invocation."""

    __slots__ = ("samples", "seed", "workers", "depth", "deadline",
                 "budget")

    def __init__(self, samples: int = DEFAULT_SAMPLES,
                 seed: Optional[int] = None,
                 workers: int = 1,
                 depth: Optional[int] = None,
                 deadline: Optional[float] = None,
                 budget: Optional[Any] = None) -> None:
        if samples <= 0:
            raise ValueError("samples must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        if depth is not None and depth <= 0:
            raise ValueError("depth must be positive or None")
        object.__setattr__(self, "samples", samples)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "workers", workers)
        object.__setattr__(self, "depth", depth)
        object.__setattr__(self, "deadline", deadline)
        object.__setattr__(self, "budget", budget)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "InferenceRequest is immutable; use replace(%s=...)" % name)

    def __reduce__(self) -> tuple:
        # Slot-state unpickling would call the forbidding __setattr__;
        # rebuild through the constructor instead so requests survive the
        # pickle framing of the process-isolation worker protocol.
        return (InferenceRequest,
                tuple(getattr(self, name) for name in self.__slots__))

    def replace(self, **changes: Any) -> "InferenceRequest":
        """A copy with the given fields replaced."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        unknown = set(changes) - set(fields)
        if unknown:
            raise TypeError(
                "Unknown InferenceRequest fields: %s"
                % ", ".join(sorted(unknown)))
        fields.update(changes)
        return InferenceRequest(**fields)

    @classmethod
    def coerce(cls, value: object) -> "InferenceRequest":
        """Accept a request, None (defaults), or a parameter dict."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError("Cannot coerce %r to an InferenceRequest" % (value,))

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (budget rendered via its own to_dict)."""
        document: Dict[str, Any] = {
            "samples": self.samples,
            "seed": self.seed,
            "workers": self.workers,
        }
        if self.depth is not None:
            document["depth"] = self.depth
        if self.deadline is not None:
            document["deadline"] = self.deadline
        if self.budget is not None:
            document["budget"] = (self.budget.to_dict()
                                  if hasattr(self.budget, "to_dict")
                                  else repr(self.budget))
        return document

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InferenceRequest):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in self.__slots__)

    def __hash__(self) -> int:
        return hash(tuple(
            getattr(self, name) for name in
            ("samples", "seed", "workers", "depth", "deadline")))

    def __repr__(self) -> str:
        parts = ["samples=%d" % self.samples]
        if self.seed is not None:
            parts.append("seed=%d" % self.seed)
        if self.workers != 1:
            parts.append("workers=%d" % self.workers)
        if self.depth is not None:
            parts.append("depth=%d" % self.depth)
        if self.deadline is not None:
            parts.append("deadline=%.3f" % self.deadline)
        if self.budget is not None:
            parts.append("budget=%r" % self.budget)
        return "InferenceRequest(%s)" % ", ".join(parts)
