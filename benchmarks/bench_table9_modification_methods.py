"""Table 9 — modification-query running time across three methods.

Paper (366 monomials / 65 literals, reduce P from 0.873 to 0.373):
sequential 20.66 s, parallel 1.55 s, sequential-with-sufficient-provenance
2.44 s — and all three return the same change sequence.

Reproduced on our large mutual-trust polynomial: the greedy strategy runs
with (a) the sequential MC evaluator, (b) the vectorized MC evaluator, and
(c) the sequential evaluator on 10%-sufficient provenance, checking that
the plans agree on the change sequence and that both (b) and (c) beat (a)
by a large factor.
"""

import time

from repro.inference.montecarlo import monte_carlo_probability
from repro.inference.parallel_mc import parallel_probability
from repro.queries.derivation import derivation_query
from repro.queries.modification import greedy_strategy

from reporting import record_table
from workloads import query_workload

SAMPLES = 1000
DELTA = 0.25  # reduce P by this much, mirroring the paper's 0.873 -> 0.373


def _seq_evaluator(poly, probs):
    return monte_carlo_probability(poly, probs, samples=SAMPLES, seed=7).value


def _par_evaluator(poly, probs):
    return parallel_probability(poly, probs, samples=SAMPLES, seed=7).value


#: Candidate pool: the greedy search considers the top influential
#: literals, mirroring the paper's "uses the results from the Influence
#: Query as a basis" while keeping the sequential baseline tractable.
CANDIDATES = 8


def test_table9_modification_methods(benchmark):
    p3, key, poly = query_workload()
    probabilities = p3.probabilities
    initial = parallel_probability(
        poly, probabilities, samples=20000, seed=1).value
    target = max(0.05, initial - DELTA)

    from repro.queries.influence import influence_query
    report = influence_query(poly, probabilities, method="parallel",
                             samples=SAMPLES, seed=1)
    pool = {score.literal for score in report.top(CANDIDATES)}

    def modifiable(literal):
        return literal in pool

    # (a) sequential MC evaluator.
    start = time.perf_counter()
    seq_plan = greedy_strategy(poly, probabilities, target,
                               modifiable=modifiable,
                               evaluator=_seq_evaluator, max_steps=3)
    seq_time = time.perf_counter() - start

    # (b) vectorized MC evaluator.
    start = time.perf_counter()
    par_plan = greedy_strategy(poly, probabilities, target,
                               modifiable=modifiable,
                               evaluator=_par_evaluator, max_steps=3)
    par_time = time.perf_counter() - start

    # (c) sequential evaluator on sufficient provenance (10% error), the
    # paper's "seq. with suff. prov." configuration.
    start = time.perf_counter()
    sufficient = derivation_query(
        poly, probabilities, 0.10 * initial, method="naive-mc").sufficient
    suff_plan = greedy_strategy(sufficient, probabilities, target,
                                modifiable=modifiable,
                                evaluator=_seq_evaluator, max_steps=3)
    suff_time = time.perf_counter() - start

    record_table(
        "table9_modification_methods",
        "Table 9: modification query times (%s, P %.3f -> %.3f; paper: "
        "20.66 / 1.55 / 2.44 s)" % (key, initial, target),
        ["method", "time (s)", "first change"],
        [
            ["sequential", seq_time,
             str(seq_plan.steps[0].literal) if seq_plan.steps else "-"],
            ["parallel", par_time,
             str(par_plan.steps[0].literal) if par_plan.steps else "-"],
            ["seq. with suff. prov.", suff_time,
             str(suff_plan.steps[0].literal) if suff_plan.steps else "-"],
        ],
    )

    # All methods pick the same first (most influential) change.
    firsts = {str(plan.steps[0].literal)
              for plan in (seq_plan, par_plan, suff_plan) if plan.steps}
    assert len(firsts) == 1, "methods disagreed on the change sequence"
    # The parallel method and the sufficient-provenance method both beat
    # sequential substantially (paper: 13x and 8.5x).
    assert par_time < seq_time / 4
    assert suff_time < seq_time / 2

    benchmark.pedantic(
        greedy_strategy, args=(sufficient, probabilities, target),
        kwargs={"modifiable": modifiable, "evaluator": _par_evaluator,
                "max_steps": 1},
        rounds=2, iterations=1)
