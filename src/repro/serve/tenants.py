"""Resident multi-tenant program registry for the provenance service.

One :class:`Tenant` is one evaluated :class:`~repro.core.system.P3`
(program, provenance graph, probability map) plus its long-lived
:class:`~repro.exec.QueryExecutor` — shared caches, breaker board, and
fallback ladder included — kept resident across requests, the way the
resident-engine ProbLog architecture keeps compiled programs warm
between queries.  The :class:`TenantRegistry` maps names to tenants and
loads programs from files or POSTed source.

Concurrency model
-----------------
Queries on one tenant run concurrently (the executor is thread-safe and
its epoch-tagged caches make post-update reads correct), but a live
update grows the provenance graph *in place* — a reader iterating the
graph mid-growth could observe a torn structure.  Each tenant therefore
holds a read/write lock: query batches take the shared side, updates the
exclusive side.  Writers wait for in-flight readers (no preference —
acceptable at service scale; a starving update surfaces as latency on
``POST /tenants/{name}/facts``, never as corruption).
"""

from __future__ import annotations

import contextlib
import re
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.config import P3Config
from ..core.errors import P3Error
from ..core.system import P3

__all__ = [
    "Tenant",
    "TenantRegistry",
    "TenantExistsError",
    "TenantLimitError",
    "UnknownTenantError",
]

#: Tenant names are path segments in URLs; keep them boring.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: Per-tenant config fields a POSTed tenant definition may override.
_CONFIG_OVERRIDE_FIELDS = (
    "probability_method", "samples", "seed", "hop_limit", "query_timeout",
    "executor_workers", "inference_workers", "grounding",
    "isolation", "isolation_workers", "worker_memory_bytes",
)


class UnknownTenantError(P3Error, KeyError):
    """No tenant registered under this name (HTTP 404)."""

    def __init__(self, name: str) -> None:
        super().__init__("Unknown tenant %r" % name)
        self.name = name


class TenantExistsError(P3Error, ValueError):
    """A tenant with this name is already resident (HTTP 409)."""

    def __init__(self, name: str) -> None:
        super().__init__("Tenant %r already exists" % name)
        self.name = name


class TenantLimitError(P3Error, ValueError):
    """The registry is full (HTTP 409)."""

    def __init__(self, limit: int) -> None:
        super().__init__("Tenant limit reached (%d resident)" % limit)
        self.limit = limit


class _ReadWriteLock:
    """Shared/exclusive lock: many readers or one writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class Tenant:
    """One resident evaluated program plus its warm executor."""

    def __init__(self, name: str, system: P3) -> None:
        self.name = name
        self.system = system
        self.created_monotonic = time.monotonic()
        self._rw = _ReadWriteLock()
        self._counter_lock = threading.Lock()
        self.queries = 0
        self.updates = 0
        #: In-flight requests currently holding an admission slot for
        #: this tenant (maintained by the admission controller).
        self.inflight = 0

    @property
    def executor(self) -> Any:
        """The tenant's shared executor (created lazily by the system)."""
        return self.system.executor()

    def run_batch(self, specs: List[object], parallel: bool = True) -> Any:
        """Answer one batch under the shared (reader) side of the lock."""
        with self._rw.read():
            batch = self.system.executor().run(specs, parallel=parallel)
        with self._counter_lock:
            self.queries += len(specs)
        return batch

    def add_facts(self, facts: object) -> Tuple[Optional[Any], int]:
        """Apply a live update exclusively; returns (delta, new epoch).

        Goes through :meth:`P3.add_facts`, so the epoch bump invalidates
        every executor cache entry computed before the mutation.
        """
        with self._rw.write():
            delta = self.system.add_facts(facts)
            epoch = self.system.epoch
        with self._counter_lock:
            self.updates += 1
        return delta, epoch

    def close(self) -> None:
        executor = self.system._executor  # shared one, if ever created
        if executor is not None:
            executor.close()
        store = self.system.store
        if store is not None:
            self.system.detach_store()
            store.close()

    def __repr__(self) -> str:
        return "Tenant(%r, epoch=%d, %d queries)" % (
            self.name, self.system.epoch, self.queries)


def default_tenant_config() -> P3Config:
    """The service-side default: resilience on, so every tenant gets the
    fallback ladder, per-backend breakers, and pool supervision."""
    from ..resilience import ResilienceConfig
    return P3Config(resilience=ResilienceConfig(pool_hang_seconds=30.0,
                                                pool_max_rebuilds=1))


class TenantRegistry:
    """Named resident tenants, loaded from files or POSTed source."""

    def __init__(self, base_config: Optional[P3Config] = None,
                 max_tenants: int = 32) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be positive")
        self._base_config = base_config
        self._max_tenants = max_tenants
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}

    def _config(self, overrides: Optional[Dict[str, Any]]) -> P3Config:
        config = (self._base_config if self._base_config is not None
                  else default_tenant_config())
        if overrides:
            unknown = set(overrides) - set(_CONFIG_OVERRIDE_FIELDS)
            if unknown:
                raise ValueError(
                    "Unknown tenant config fields: %s"
                    % ", ".join(sorted(str(key) for key in unknown)))
            config = config.replace(**overrides)
        return config

    def create(self, name: str,
               source: Optional[str] = None,
               path: Optional[str] = None,
               session: Optional[str] = None,
               store: Optional[str] = None,
               persist: bool = False,
               config_overrides: Optional[Dict[str, Any]] = None) -> Tenant:
        """Load, evaluate (or warm-start), and register one tenant.

        Exactly one of ``source`` (program text), ``path`` (program
        file), ``session`` (saved session JSON), and ``store``
        (provenance store file) must be given.  The first two evaluate
        the program before the tenant becomes visible; the last two
        warm-start from persisted provenance, so the tenant answers
        without re-running the fixpoint.  ``persist=True`` keeps a
        store-backed tenant attached, so every live update appends a
        new epoch to the store.
        """
        if not _NAME_PATTERN.match(name or ""):
            raise ValueError(
                "Invalid tenant name %r (want 1-64 chars of "
                "[A-Za-z0-9_.-])" % name)
        sources = [("source", source), ("path", path),
                   ("session", session), ("store", store)]
        given = [field for field, value in sources if value is not None]
        if len(given) != 1:
            raise ValueError(
                "Exactly one of 'source', 'path', 'session', and "
                "'store' must be provided (got: %s)"
                % (", ".join(given) or "none"))
        if persist and store is None:
            raise ValueError("'persist' requires a 'store' source")
        with self._lock:
            # Reserve the name first: evaluation can be slow and two
            # concurrent creates must not both run it.
            if name in self._tenants:
                raise TenantExistsError(name)
            if len(self._tenants) >= self._max_tenants:
                raise TenantLimitError(self._max_tenants)
            self._tenants[name] = None  # type: ignore[assignment]
        try:
            config = self._config(config_overrides)
            if source is not None:
                system = P3.from_source(source, config=config)
                system.evaluate()
            elif path is not None:
                system = P3.from_file(path, config=config)
                system.evaluate()
            elif session is not None:
                system = P3.from_session(session, config=config)
            else:
                system = P3.from_store(store, config=config,
                                       attach=persist)
            system.executor()  # build the warm executor up front
            tenant = Tenant(name, system)
        except BaseException:
            with self._lock:
                self._tenants.pop(name, None)
            raise
        with self._lock:
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:  # absent, or still mid-create
            raise UnknownTenantError(name)
        return tenant

    def remove(self, name: str) -> None:
        with self._lock:
            tenant = self._tenants.pop(name, None)
        if tenant is None:
            raise UnknownTenantError(name)
        tenant.close()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(name for name, tenant in self._tenants.items()
                          if tenant is not None)

    def close(self) -> None:
        with self._lock:
            tenants = [t for t in self._tenants.values() if t is not None]
            self._tenants.clear()
        for tenant in tenants:
            tenant.close()

    def sync_stores(self) -> None:
        """Detach and close every store-attached tenant's store, only.

        The force-shutdown path: a drain timed out, so executors may
        still be wedged mid-query and cannot be joined.  Queries never
        write to the store (only updates do, and those finish inside
        their admission slot), so syncing just the durable side is safe;
        the caller is expected to hard-exit immediately afterwards.
        """
        with self._lock:
            tenants = [t for t in self._tenants.values() if t is not None]
        for tenant in tenants:
            store = tenant.system.store
            if store is not None:
                tenant.system.detach_store()
                store.close()

    def __len__(self) -> int:
        return len(self.names())

    def __repr__(self) -> str:
        return "TenantRegistry(%d tenants)" % len(self)
