"""Datalog/ProbLog substrate: terms, AST, parser, store, and engine."""

from .ast import ClauseError, Fact, Program, Rule
from .builtins import Comparison, UnboundComparisonError
from .database import Database, Relation
from .engine import Engine, EvaluationError, EvaluationResult, evaluate
from .incremental import IncrementalSession
from .parser import ParseError, parse_clause, parse_file, parse_program
from .stratification import (
    StratificationError,
    check_negation_determinism,
    deterministic_relations,
    rule_strata,
    stratify,
    validate_program,
)
from .rewrite import (
    PROV_RELATION,
    RULE_RELATION,
    CompiledRule,
    RewriteError,
    compile_program,
    execution_id,
)
from .terms import Atom, Constant, Substitution, Term, Variable, atom, unify_atom

__all__ = [
    "Atom",
    "ClauseError",
    "Comparison",
    "CompiledRule",
    "Constant",
    "Database",
    "Engine",
    "EvaluationError",
    "EvaluationResult",
    "Fact",
    "IncrementalSession",
    "ParseError",
    "Program",
    "PROV_RELATION",
    "Relation",
    "RewriteError",
    "Rule",
    "RULE_RELATION",
    "StratificationError",
    "Substitution",
    "Term",
    "UnboundComparisonError",
    "Variable",
    "atom",
    "compile_program",
    "evaluate",
    "execution_id",
    "parse_clause",
    "parse_file",
    "parse_program",
    "unify_atom",
    "check_negation_determinism",
    "deterministic_relations",
    "rule_strata",
    "stratify",
    "validate_program",
]
