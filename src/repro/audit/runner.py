"""The audit sweep driver behind ``p3 audit``.

Generates a deterministic case list, runs the differential oracle over
each case, shrinks any disagreement to a minimal reproducer, and packages
everything into an :class:`AuditReport` whose ``to_dict`` follows the
repo's versioned JSON envelope convention.  Failures can additionally be
serialized to *replay files* — self-contained JSON documents holding the
shrunk case, the original case, the disagreements, and the oracle
settings — which :func:`run_replay` re-executes bit-for-bit.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from .generator import AuditCase, GeneratorConfig, generate_cases
from .oracle import (
    DEFAULT_SAMPLES,
    DEFAULT_Z,
    EXACT_TOLERANCE,
    CaseVerdict,
    audit_case,
    audit_polynomial_case,
)
from .shrink import shrink_case, shrink_report

#: Envelope version (kept in lockstep with repro.io.serialize).
FORMAT_VERSION = 1


class AuditFailure:
    """One disagreeing case, with its shrunk reproducer.

    When the sweep ran with telemetry enabled, ``trace`` carries the
    failing case's span dicts so the replay file shows exactly which
    backends ran (and how long they took) when the disagreement surfaced.
    """

    __slots__ = ("verdict", "shrunk", "reduction", "trace")

    def __init__(self, verdict: CaseVerdict,
                 shrunk: Optional[AuditCase] = None,
                 reduction: Optional[dict] = None,
                 trace: Optional[List[dict]] = None) -> None:
        self.verdict = verdict
        self.shrunk = shrunk
        self.reduction = reduction
        self.trace = trace

    def to_dict(self) -> dict:
        document = {
            "verdict": self.verdict.to_dict(),
            "case": self.verdict.case.to_dict(),
        }
        if self.shrunk is not None:
            document["shrunk"] = self.shrunk.to_dict()
        if self.reduction is not None:
            document["reduction"] = self.reduction
        if self.trace is not None:
            document["trace"] = self.trace
        return document


class AuditReport:
    """Outcome of one audit sweep."""

    __slots__ = ("settings", "cases_run", "origins", "failures",
                 "backends_checked")

    def __init__(self, settings: Dict[str, object], cases_run: int,
                 origins: Dict[str, int],
                 failures: Sequence[AuditFailure],
                 backends_checked: Sequence[str]) -> None:
        self.settings = dict(settings)
        self.cases_run = cases_run
        self.origins = dict(origins)
        self.failures = list(failures)
        self.backends_checked = list(backends_checked)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def disagreement_count(self) -> int:
        return sum(len(failure.verdict.disagreements)
                   for failure in self.failures)

    def to_dict(self) -> dict:
        return {
            "version": FORMAT_VERSION,
            "kind": "audit_report",
            "ok": self.ok,
            "cases": self.cases_run,
            "origins": self.origins,
            "backends": self.backends_checked,
            "settings": self.settings,
            "disagreements": self.disagreement_count,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def summary(self) -> str:
        origin_text = ", ".join(
            "%d %s" % (count, origin)
            for origin, count in sorted(self.origins.items()))
        if self.ok:
            return ("audit: %d cases (%s) x %d backends, all agree"
                    % (self.cases_run, origin_text,
                       len(self.backends_checked)))
        return ("audit: %d cases (%s), %d case(s) FAILED with %d "
                "disagreement(s)"
                % (self.cases_run, origin_text, len(self.failures),
                   self.disagreement_count))

    def __repr__(self) -> str:
        return "AuditReport(%s)" % self.summary()


def run_audit(cases: int = 100,
              seed: int = 0,
              backends: Optional[Sequence[str]] = None,
              samples: int = DEFAULT_SAMPLES,
              repeats: int = 1,
              z: float = DEFAULT_Z,
              exact_tolerance: float = EXACT_TOLERANCE,
              include_corpus: bool = True,
              include_programs: bool = True,
              shrink: bool = True,
              fail_fast: bool = False,
              replay_dir: Optional[str] = None,
              config: Optional[GeneratorConfig] = None,
              case_list: Optional[Sequence[AuditCase]] = None
              ) -> AuditReport:
    """Run one differential audit sweep.

    Deterministic in ``(cases, seed)`` and the oracle settings: the same
    invocation always checks the same polynomials with the same sampling
    seeds, so a red sweep reproduces locally from its command line alone.
    ``case_list`` bypasses generation (used by replays and fault tests).
    """
    from ..inference.registry import backend_names
    if case_list is None:
        case_list = generate_cases(
            cases, seed, include_corpus=include_corpus,
            include_programs=include_programs, config=config)
    settings: Dict[str, object] = {
        "cases": cases, "seed": seed, "samples": samples,
        "repeats": repeats, "z": z, "exact_tolerance": exact_tolerance,
        "include_corpus": include_corpus,
        "include_programs": include_programs,
        "backends": list(backends) if backends is not None else None,
    }
    from .. import telemetry
    origins: Dict[str, int] = {}
    failures: List[AuditFailure] = []
    for case in case_list:
        origins[case.origin] = origins.get(case.origin, 0) + 1
        rt = telemetry.runtime()
        trace: Optional[List[dict]] = None
        if rt.enabled:
            # One span per case; a failing case's whole span tree (every
            # backend call beneath it) is attached to the replay file.
            with rt.tracer.span("audit.case", case=case.name,
                                origin=case.origin) as span:
                verdict = audit_case(
                    case, backends=backends, samples=samples, seed=seed,
                    repeats=repeats, z=z, exact_tolerance=exact_tolerance)
                span.set_attribute("ok", verdict.ok)
            if not verdict.ok and rt.ring is not None:
                trace = [s.to_dict(rt.tracer.anchor_ns)
                         for s in rt.ring.trace(span.trace_id)]
        else:
            verdict = audit_case(
                case, backends=backends, samples=samples, seed=seed,
                repeats=repeats, z=z, exact_tolerance=exact_tolerance)
        if verdict.ok:
            continue
        failure = AuditFailure(verdict, trace=trace)
        if shrink and any(
                d.channel.startswith("backend:")
                for d in verdict.disagreements):
            failure.shrunk, failure.reduction = _shrink_failure(
                case, backends=backends, samples=samples, seed=seed,
                repeats=repeats, z=z, exact_tolerance=exact_tolerance)
        failures.append(failure)
        if replay_dir is not None:
            path = os.path.join(
                replay_dir, "audit-replay-%s.json" % case.name)
            write_replay(path, failure, settings)
        if fail_fast:
            break
    checked = list(backends) if backends is not None \
        else list(backend_names())
    return AuditReport(settings, len(case_list), origins, failures,
                       checked)


def _shrink_failure(case: AuditCase, **oracle_settings: object):
    """Shrink against the backend channels only (deterministic re-check)."""
    def still_fails(candidate: AuditCase) -> bool:
        verdict = audit_polynomial_case(candidate, **oracle_settings)
        return not verdict.ok

    shrunk = shrink_case(case, still_fails)
    return shrunk, shrink_report(case, shrunk)


# -- replay files ----------------------------------------------------------------

def write_replay(path: str, failure: AuditFailure,
                 settings: Dict[str, object]) -> dict:
    """Serialize one failure as a self-contained replay document."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    document = {
        "version": FORMAT_VERSION,
        "kind": "audit_replay",
        "settings": dict(settings),
        "failure": failure.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_replay(path: str) -> Dict[str, object]:
    """Parse and validate a replay file; returns cases plus settings.

    The returned dict holds ``case`` (the original :class:`AuditCase`),
    ``shrunk`` (the minimal reproducer, when one was recorded), and
    ``settings`` (the oracle configuration of the failing sweep).
    """
    from ..io.serialize import SerializationError
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("version") != FORMAT_VERSION or \
            document.get("kind") != "audit_replay":
        raise SerializationError(
            "Not an audit replay document: %s" % path)
    failure = document["failure"]
    loaded: Dict[str, object] = {
        "case": AuditCase.from_dict(failure["case"]),
        "settings": document.get("settings", {}),
    }
    if "shrunk" in failure:
        loaded["shrunk"] = AuditCase.from_dict(failure["shrunk"])
    return loaded


def run_replay(path: str, prefer_shrunk: bool = True,
               **overrides: object) -> AuditReport:
    """Re-run a recorded failure with its original oracle settings.

    ``prefer_shrunk`` replays the minimal reproducer when the file holds
    one (the fast triage loop); pass ``False`` to re-check the original
    case.  Keyword overrides replace individual oracle settings.
    """
    loaded = load_replay(path)
    case = loaded.get("shrunk") if prefer_shrunk else None
    if case is None:
        case = loaded["case"]
    settings = dict(loaded["settings"])
    settings.pop("cases", None)
    settings.pop("include_corpus", None)
    settings.pop("include_programs", None)
    settings.update(overrides)
    return run_audit(
        cases=1,
        seed=int(settings.pop("seed", 0)),  # type: ignore[arg-type]
        backends=settings.pop("backends", None),  # type: ignore[arg-type]
        samples=int(settings.pop("samples", DEFAULT_SAMPLES)),  # type: ignore[arg-type]
        repeats=int(settings.pop("repeats", 1)),  # type: ignore[arg-type]
        z=float(settings.pop("z", DEFAULT_Z)),  # type: ignore[arg-type]
        exact_tolerance=float(settings.pop(
            "exact_tolerance", EXACT_TOLERANCE)),  # type: ignore[arg-type]
        shrink=bool(settings.pop("shrink", False)),
        case_list=[case],
    )
