"""Unit tests for audit case generation."""

import random

import pytest

from repro.audit.generator import (
    AuditCase,
    GeneratorConfig,
    corpus_cases,
    generate_cases,
    random_polynomial,
)
from repro.inference.exact import exact_probability
from repro.inference.registry import BRUTE_FORCE_LITERAL_LIMIT


class TestRandomPolynomials:
    def test_deterministic_in_seed(self):
        first = random_polynomial(random.Random(7))
        second = random_polynomial(random.Random(7))
        assert first == second

    def test_respects_size_budget(self):
        config = GeneratorConfig(max_literals=5, max_monomials=3,
                                 max_width=2)
        for seed in range(20):
            poly = random_polynomial(random.Random(seed), config)
            assert 1 <= len(poly) <= 3
            assert len(poly.literals()) <= 5
            assert all(len(m) <= 2 for m in poly.monomials)

    def test_default_budget_fits_brute_force(self):
        for seed in range(30):
            poly = random_polynomial(random.Random(seed))
            assert len(poly.literals()) <= BRUTE_FORCE_LITERAL_LIMIT

    def test_mixes_rule_literals(self):
        config = GeneratorConfig(rule_literal_rate=1.0)
        poly = random_polynomial(random.Random(1), config)
        assert all(lit.is_rule for lit in poly.literals())


class TestGenerateCases:
    def test_deterministic_case_list(self):
        first = generate_cases(40, seed=3)
        second = generate_cases(40, seed=3)
        assert [c.name for c in first] == [c.name for c in second]
        assert all(a.polynomial == b.polynomial
                   and a.probabilities == b.probabilities
                   for a, b in zip(first, second))

    def test_count_honoured(self):
        assert len(generate_cases(25, seed=0)) == 25
        assert len(generate_cases(60, seed=0)) == 60

    def test_origin_mix(self):
        cases = generate_cases(60, seed=0)
        origins = {case.origin for case in cases}
        assert origins == {"corpus", "program", "random"}

    def test_corpus_and_programs_can_be_disabled(self):
        cases = generate_cases(20, seed=0, include_corpus=False,
                               include_programs=False)
        assert {case.origin for case in cases} == {"random"}

    def test_every_case_has_probabilities_for_its_literals(self):
        for case in generate_cases(40, seed=5):
            for literal in case.polynomial.literals():
                assert literal in case.probabilities
                assert 0.0 <= case.probabilities[literal] <= 1.0

    def test_unique_names(self):
        names = [case.name for case in generate_cases(80, seed=2)]
        assert len(names) == len(set(names))


class TestCorpus:
    def test_expected_fixtures_present(self):
        names = {case.name for case in corpus_cases()}
        assert {"corpus-absorption", "corpus-duplicates",
                "corpus-rule-only", "corpus-p4-diamond",
                "corpus-karp-luby-heavy", "corpus-zero", "corpus-one",
                "corpus-cycle", "corpus-diamond"} <= names

    def test_constants(self):
        by_name = {case.name: case for case in corpus_cases()}
        assert by_name["corpus-zero"].polynomial.is_zero
        assert by_name["corpus-one"].polynomial.is_one

    def test_program_fixtures_carry_sources(self):
        by_name = {case.name: case for case in corpus_cases()}
        for name in ("corpus-cycle", "corpus-diamond"):
            case = by_name[name]
            assert case.is_program_case
            assert "trustPath" in case.program_source
            assert not case.polynomial.is_zero

    def test_cycle_fixture_is_actually_cyclic(self):
        # Ann→Bob→Cat→Ann: extraction must terminate and produce a
        # nonzero cycle-free polynomial.
        by_name = {case.name: case for case in corpus_cases()}
        case = by_name["corpus-cycle"]
        value = exact_probability(case.polynomial, case.probabilities)
        assert 0.0 < value < 1.0


class TestCaseSerialization:
    @pytest.mark.parametrize("index", range(5))
    def test_round_trip(self, index):
        case = generate_cases(10, seed=9)[index]
        restored = AuditCase.from_dict(case.to_dict())
        assert restored.name == case.name
        assert restored.origin == case.origin
        assert restored.polynomial == case.polynomial
        assert restored.probabilities == case.probabilities
        assert restored.program_source == case.program_source
        assert restored.query_key == case.query_key

    def test_envelope_helpers(self):
        from repro.io.serialize import (
            SerializationError,
            audit_case_from_json,
            audit_case_to_json,
        )
        case = corpus_cases()[0]
        document = audit_case_to_json(case)
        assert document["kind"] == "audit_case"
        assert document["version"] == 2
        restored = audit_case_from_json(document)
        assert restored.polynomial == case.polynomial
        with pytest.raises(SerializationError):
            audit_case_to_json(object())
