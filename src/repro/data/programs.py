"""The three ProbLog programs used throughout the paper.

- :data:`ACQUAINTANCE`: the running example (Figure 2);
- :data:`TRUST_RULES`: the Trust program rules (Figure 7) — facts come from
  a trust network sample (:mod:`repro.data.bitcoin_otc`);
- :data:`VQA_RULES`: the Visual Question Answering program (Figure 5) —
  facts come from a VQA scene (:mod:`repro.data.vqa`).
"""

from __future__ import annotations

from ..datalog.ast import Program
from ..datalog.parser import parse_program

#: Figure 2 — the Acquaintance running example, verbatim.
ACQUAINTANCE = """
r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1!=P2.
r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1!=P2.
r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1!=P3.
t1 1.0: live("Steve","DC").
t2 1.0: live("Elena","DC").
t3 1.0: live("Mary","NYC").
t4 0.4: like("Steve","Veggies").
t5 0.6: like("Elena","Veggies").
t6 1.0: know("Ben","Steve").
"""

#: Figure 7 — the Trust program (rules only; trust/2 facts are data).
TRUST_RULES = """
r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1!=P3.
r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).
"""

#: Figure 5 — the VQA program (rules only; scene tuples are data).
#: Rule weights w1-w4 follow the paper's "can be assigned any reasonable
#: values"; we fix them so results are deterministic.
VQA_RULES = """
r1 0.5: hasImgAns(V,Z,X1,R1,Y1) :-
    word(V,Z), hasImg(V,X1,R1,Y1), sim(Z,X1), sim(Z,Y1).
r2 0.3: candidate(V,Z) :- word(V,Z).
r3 0.7: candidate(V,Z) :- word(V,Z),
    hasQ(V,X,R,Y), hasImgAns(V,Z,X1,R1,Y1),
    sim(R,R1), sim(Y,Y1), sim(X,X1).
r4 0.9: ans(V,Z) :- candidate(V,Z),
    hasQ(V,X,R,"WHAT"), hasImg(V,Z1,R1,X1),
    sim(Z,Z1), sim(R,R1), sim(X,X1).
"""


def acquaintance_program() -> Program:
    """Parsed Figure 2 program."""
    return parse_program(ACQUAINTANCE)


def trust_rules_program() -> Program:
    """Parsed Figure 7 rules (no facts)."""
    return parse_program(TRUST_RULES)


def vqa_rules_program() -> Program:
    """Parsed Figure 5 rules (no facts)."""
    return parse_program(VQA_RULES)
