"""Setup shim: enables `pip install -e .` in offline environments.

The environment this project targets has no `wheel` package, so PEP 517
editable builds (which build an editable wheel) are unavailable; with this
shim pip falls back to the legacy `setup.py develop` path that needs only
setuptools.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
