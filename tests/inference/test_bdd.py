"""Unit tests for the ROBDD package."""

import itertools

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.bdd import BDD, ONE, ZERO, bdd_probability, from_polynomial
from repro.inference.exact import brute_force_probability
from repro.provenance.polynomial import Polynomial, tuple_literal

A = tuple_literal("a")
B = tuple_literal("b")
C = tuple_literal("c")


class TestConstruction:
    def test_rejects_duplicate_order(self):
        with pytest.raises(ValueError):
            BDD([A, A])

    def test_variable_node(self):
        bdd = BDD([A])
        node = bdd.variable(A)
        assert not bdd.is_terminal(node)
        level, low, high = bdd.node(node)
        assert (level, low, high) == (0, ZERO, ONE)

    def test_hash_consing(self):
        bdd = BDD([A])
        assert bdd.variable(A) == bdd.variable(A)

    def test_terminals_have_no_structure(self):
        bdd = BDD([A])
        with pytest.raises(ValueError):
            bdd.node(ZERO)


class TestApply:
    def test_and(self):
        bdd = BDD([A, B])
        root = bdd.apply("and", bdd.variable(A), bdd.variable(B))
        assert bdd.evaluate(root, {A: True, B: True})
        assert not bdd.evaluate(root, {A: True, B: False})

    def test_or(self):
        bdd = BDD([A, B])
        root = bdd.apply("or", bdd.variable(A), bdd.variable(B))
        assert bdd.evaluate(root, {A: False, B: True})
        assert not bdd.evaluate(root, {A: False, B: False})

    def test_unknown_op(self):
        bdd = BDD([A])
        with pytest.raises(ValueError):
            bdd.apply("xor", ZERO, ONE)

    def test_terminal_shortcuts(self):
        bdd = BDD([A])
        var = bdd.variable(A)
        assert bdd.apply("and", var, ZERO) == ZERO
        assert bdd.apply("and", var, ONE) == var
        assert bdd.apply("or", var, ONE) == ONE
        assert bdd.apply("or", var, ZERO) == var

    def test_idempotence(self):
        bdd = BDD([A])
        var = bdd.variable(A)
        assert bdd.apply("and", var, var) == var
        assert bdd.apply("or", var, var) == var

    def test_reduction_collapses_redundant_tests(self):
        # a·b + a·¬b is just a; monotone inputs can't express ¬b directly,
        # but (a AND (b OR not-b-shaped)) arises via OR of cofactors:
        bdd = BDD([A, B])
        left = bdd.apply("and", bdd.variable(A), bdd.variable(B))
        root = bdd.apply("or", left, bdd.variable(A))
        assert root == bdd.variable(A)

    def test_conjoin_disjoin(self):
        bdd = BDD([A, B, C])
        root = bdd.disjoin([
            bdd.conjoin([bdd.variable(A), bdd.variable(B)]),
            bdd.variable(C),
        ])
        assert bdd.evaluate(root, {A: True, B: True, C: False})
        assert bdd.evaluate(root, {A: False, B: False, C: True})
        assert not bdd.evaluate(root, {A: True, B: False, C: False})


class TestFromPolynomial:
    def test_zero(self):
        bdd, root = from_polynomial(Polynomial.zero())
        assert root == ZERO

    def test_one(self):
        bdd, root = from_polynomial(Polynomial.one())
        assert root == ONE

    def test_truth_table_equivalence(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("a", "c"))
        bdd, root = from_polynomial(poly)
        for values in itertools.product((False, True), repeat=3):
            assignment = dict(zip(sorted(poly.literals()), values))
            assert bdd.evaluate(root, assignment) == poly.evaluate(assignment)

    def test_explicit_order_respected(self):
        poly = make_polynomial(("a", "b"))
        bdd, root = from_polynomial(poly, order=[B, A])
        assert bdd.order == (B, A)
        assert bdd.evaluate(root, {A: True, B: True})


class TestProbability:
    def test_single_variable(self):
        poly = make_polynomial(("a",))
        assert bdd_probability(poly, {A: 0.3}) == pytest.approx(0.3)

    def test_matches_brute_force(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("a", "c"))
        probs = random_probabilities(poly, seed=3)
        assert bdd_probability(poly, probs) == pytest.approx(
            brute_force_probability(poly, probs))

    def test_independent_of_variable_order(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly, seed=5)
        default = bdd_probability(poly, probs)
        reversed_order = bdd_probability(
            poly, probs, order=sorted(poly.literals(), reverse=True))
        assert default == pytest.approx(reversed_order)

    def test_terminal_polynomials(self):
        assert bdd_probability(Polynomial.zero(), {}) == 0.0
        assert bdd_probability(Polynomial.one(), {}) == 1.0


class TestCounting:
    def test_model_count(self):
        poly = make_polynomial(("a",), ("b",))
        bdd, root = from_polynomial(poly)
        # a OR b over 2 variables: 3 models.
        assert bdd.model_count(root) == 3

    def test_satisfying_assignments_match_count(self):
        poly = make_polynomial(("a", "b"), ("c",))
        bdd, root = from_polynomial(poly)
        models = list(bdd.satisfying_assignments(root))
        assert len(models) == bdd.model_count(root)
        for model in models:
            assert poly.evaluate(model)

    def test_size_reporting(self):
        poly = make_polynomial(("a", "b"), ("c",))
        bdd, root = from_polynomial(poly)
        assert bdd.size(root) >= 3
        assert bdd.size(ZERO) == 0
