"""Paper-style results tables: formatting, persistence, registry.

Benchmarks call :func:`record_table`; the benchmarks' conftest prints every
recorded table in the pytest terminal summary, and a copy is written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md to cite.  Each table
is also persisted as machine-readable JSON (``results/<name>.json``) so CI
and regression tooling can diff numbers without parsing aligned text;
:func:`record_json` writes free-form JSON documents (e.g. the executor
benchmark's ``BENCH_executor.json`` summary) in the same envelope.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version stamped into every machine-readable results document.
RESULTS_FORMAT_VERSION = 1

_TABLES: List[str] = []


def paper_scale() -> bool:
    """True when the operator asked for the paper's original sizes."""
    return os.environ.get("P3_BENCH_SCALE", "").lower() == "paper"


def record_table(name: str, title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Format, persist, and register a paper-style results table.

    Writes ``results/<name>.txt`` (the human-readable table) and
    ``results/<name>.json`` (a versioned document with the raw cells).
    """
    widths = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    lines = [title]
    lines.append("  " + "  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  " + "  ".join(
            cell.ljust(w) for cell, w in zip(rendered, widths)))
    text = "\n".join(lines)
    _TABLES.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")
    record_json(name, {
        "title": title,
        "headers": list(map(str, headers)),
        "rows": [list(row) for row in rows],
    }, kind="bench_table")
    return text


def record_json(name: str, payload: dict, kind: str = "bench_result") -> str:
    """Persist a machine-readable benchmark document.

    Wraps ``payload`` in the repo's versioned envelope and writes it to
    ``results/<name>.json`` (stable sorted-key JSON).  Returns the path.
    """
    document = {
        "version": RESULTS_FORMAT_VERSION,
        "kind": kind,
        "name": name,
    }
    document.update(payload)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.4f" % cell
    return str(cell)


def recorded_tables() -> List[str]:
    return list(_TABLES)
