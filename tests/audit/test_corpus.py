"""Cross-representation agreement on adversarial structure.

These tests complement the randomized sweep with deliberate fixtures:
absorbed vs unabsorbed DNF, duplicated monomials, rule-only literals, and
cycle-elimination programs.  The raw-DNF brute-force helper evaluates the
*unabsorbed* formula directly — bypassing Polynomial's canonical-by-
construction absorption — so it can certify that canonicalization never
changes the probability semantics.
"""

import itertools

import pytest

from repro.audit.generator import corpus_cases
from repro.audit.oracle import audit_polynomial_case
from repro.inference import probability
from repro.inference.registry import (
    available_backends,
    exact_backend_names,
)
from repro.provenance.polynomial import (
    Monomial,
    Polynomial,
    rule_literal,
    tuple_literal,
)


def raw_dnf_probability(groups, probabilities):
    """Brute-force P[DNF] over the literal groups as written.

    No absorption, no deduplication — the reference semantics any
    canonicalized representation must preserve.
    """
    literals = sorted({lit for group in groups for lit in group})
    total = 0.0
    for values in itertools.product([False, True], repeat=len(literals)):
        assignment = dict(zip(literals, values))
        if not any(all(assignment[lit] for lit in group)
                   for group in groups):
            continue
        weight = 1.0
        for literal in literals:
            p = probabilities[literal]
            weight *= p if assignment[literal] else (1.0 - p)
        total += weight
    return total


def T(key):
    return tuple_literal(key)


ADVERSARIAL_DNFS = {
    # ab + a: absorption drops ab entirely.
    "absorbed-pair": (
        [[T("a"), T("b")], [T("a")]],
        {T("a"): 0.3, T("b"): 0.7},
    ),
    # Literally duplicated monomials (and a permuted duplicate).
    "duplicates": (
        [[T("a"), T("b")], [T("b"), T("a")], [T("a"), T("b")], [T("c")]],
        {T("a"): 0.4, T("b"): 0.6, T("c"): 0.2},
    ),
    # Chains of absorption: abc + ab + a collapses to a.
    "absorption-chain": (
        [[T("a"), T("b"), T("c")], [T("a"), T("b")], [T("a")], [T("d")]],
        {T("a"): 0.25, T("b"): 0.5, T("c"): 0.75, T("d"): 0.1},
    ),
    # Rule-only literals.
    "rule-only": (
        [[rule_literal("r1"), rule_literal("r2")],
         [rule_literal("r2"), rule_literal("r3")]],
        {rule_literal("r1"): 0.8, rule_literal("r2"): 0.4,
         rule_literal("r3"): 0.2},
    ),
    # Non-read-once diamond with a redundant absorbed copy.
    "diamond-plus-duplicate": (
        [[T("a"), T("b")], [T("b"), T("c")], [T("c"), T("d")],
         [T("b"), T("a")]],
        {T("a"): 0.5, T("b"): 0.5, T("c"): 0.5, T("d"): 0.5},
    ),
}


class TestAbsorbedVsUnabsorbed:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_DNFS))
    def test_canonical_polynomial_preserves_raw_semantics(self, name):
        groups, probs = ADVERSARIAL_DNFS[name]
        raw = raw_dnf_probability(groups, probs)
        polynomial = Polynomial.from_monomials(
            Monomial(group) for group in groups)
        for backend in exact_backend_names():
            if not any(b.name == backend
                       for b in available_backends(polynomial)):
                continue
            value = probability(polynomial, probs, method=backend)
            assert value == pytest.approx(raw, abs=1e-12), (
                "backend %s disagrees with raw DNF on %s"
                % (backend, name))

    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_DNFS))
    def test_absorption_actually_triggered(self, name):
        # Guard the fixtures themselves: each must exercise dedup or
        # absorption (otherwise the comparison is vacuous).
        groups, _ = ADVERSARIAL_DNFS[name]
        polynomial = Polynomial.from_monomials(
            Monomial(group) for group in groups)
        if name in ("rule-only",):
            assert len(polynomial) == len(groups)
        else:
            assert len(polynomial) < len(groups)


class TestCorpusAgreement:
    """Every exact backend agrees to 1e-12 on every corpus fixture —
    these fixtures seed the audit sweep, so a regression here also turns
    the CI audit job red."""

    @pytest.mark.parametrize(
        "case", corpus_cases(), ids=lambda case: case.name)
    def test_exact_backends_agree(self, case):
        verdict = audit_polynomial_case(
            case, backends=list(exact_backend_names()))
        assert verdict.ok, verdict.disagreements

    @pytest.mark.parametrize(
        "case",
        [c for c in corpus_cases() if not c.polynomial.is_zero
         and not c.polynomial.is_one],
        ids=lambda case: case.name)
    def test_sampling_backends_within_band(self, case):
        verdict = audit_polynomial_case(
            case, samples=4000, seed=0, repeats=2)
        assert verdict.ok, verdict.disagreements
