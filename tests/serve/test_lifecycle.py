"""Service lifecycle: graceful drain on SIGTERM, forced shutdown past
the drain budget, and restart-from-store envelope identity.

The signal tests boot ``p3 serve`` as a real subprocess (signals and
exit codes are process-level behavior); the draining/degraded readiness
checks run in-process against :func:`start_in_background`.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.data import ACQUAINTANCE
from repro.serve import (
    AdmissionController,
    ProvenanceService,
    TenantRegistry,
    start_in_background,
)
from repro.serve.envelopes import health_envelope

KEY = 'know("Ben","Elena")'

#: ~2.5 s of chunked Monte-Carlo work: long enough to still be in
#: flight when SIGTERM lands, short enough to finish within any drain.
SLOW_SPEC = {"kind": "probability", "key": KEY,
             "params": {"method": "mc", "samples": 50_000_000}}

#: Several minutes of work: reliably outlives a ~1 s drain budget.
WEDGE_SPEC = {"kind": "probability", "key": KEY,
              "params": {"method": "mc", "samples": 4_000_000_000}}


def request(port, method, path, body=None, timeout=60):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        data = response.read()
        headers = {name.lower(): value
                   for name, value in response.getheaders()}
        return response.status, headers, data
    finally:
        connection.close()


def boot_serve(*args):
    """Start ``p3 serve`` as a subprocess; returns (process, port)."""
    source_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ, PYTHONPATH=source_root)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *args],
        env=env, stderr=subprocess.PIPE, text=True)
    line = process.stderr.readline()
    if "listening on" not in line:
        process.kill()
        raise AssertionError("serve failed to boot: %r" % line)
    port = int(line.split("http://", 1)[1].split(",", 1)[0]
               .rsplit(":", 1)[1])
    return process, port


def finish(process, timeout=60):
    """Wait for exit; returns (exit code, remaining stderr)."""
    _, stderr = process.communicate(timeout=timeout)
    return process.returncode, stderr


def normalize(document):
    """Strip volatile timing/caching fields for envelope comparison."""
    if isinstance(document, dict):
        return {key: normalize(value) for key, value in document.items()
                if key not in ("seconds", "cached")}
    if isinstance(document, list):
        return [normalize(item) for item in document]
    return document


def background_request(port, body, results):
    try:
        status, headers, data = request(port, "POST",
                                        "/tenants/default/query", body)
        results["status"] = status
        results["data"] = data
    except Exception as exc:  # noqa: BLE001 — asserted by the caller
        results["error"] = exc


@pytest.fixture
def store_path(tmp_path):
    from repro import P3
    from repro.store import ProvenanceStore
    path = str(tmp_path / "lifecycle.db")
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    store = ProvenanceStore(path)
    try:
        p3.attach_store(store)
    finally:
        p3.detach_store()
        store.close()
    return path


class TestSigtermLifecycle:
    def test_sigterm_drains_inflight_and_restarts_identically(
            self, store_path):
        process, port = boot_serve("--from-store", store_path, "--persist",
                                   "--drain-timeout", "30")
        try:
            status, _, baseline = request(
                port, "POST", "/tenants/default/query", {"specs": [KEY]})
            assert status == 200

            results = {}
            inflight = threading.Thread(
                target=background_request,
                args=(port, {"specs": [SLOW_SPEC]}, results))
            inflight.start()
            time.sleep(0.5)  # let the slow query take its slot
            process.send_signal(signal.SIGTERM)
            time.sleep(0.3)  # let the handler close admission

            # Admission is closed: new work is shed with an orderly
            # 503 + Retry-After — never a connection reset — and
            # /healthz reports the drain to the load balancer.
            status, headers, data = request(
                port, "POST", "/tenants/default/query", {"specs": [KEY]})
            assert status == 503
            assert "retry-after" in headers
            assert json.loads(data)["kind"] == "error"
            status, headers, data = request(port, "GET", "/healthz")
            assert status == 503
            assert json.loads(data)["status"] == "draining"
            assert json.loads(data)["admission"]["draining"] is True

            # The in-flight query completes under the drain budget.
            inflight.join(timeout=60)
            assert not inflight.is_alive()
            assert results.get("status") == 200, results

            code, stderr = finish(process)
            assert code == 0, stderr
            assert "drained cleanly" in stderr
            assert "stores synced" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        # Restart from the same store: byte-identical answers (modulo
        # wall-clock timing fields) without re-running the fixpoint.
        process, port = boot_serve("--from-store", store_path, "--persist",
                                   "--drain-timeout", "30")
        try:
            status, _, restarted = request(
                port, "POST", "/tenants/default/query", {"specs": [KEY]})
            assert status == 200
            before = normalize(json.loads(baseline))
            after = normalize(json.loads(restarted))
            assert json.dumps(before, sort_keys=True) == \
                json.dumps(after, sort_keys=True)
            process.send_signal(signal.SIGTERM)
            code, stderr = finish(process)
            assert code == 0, stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    def test_sigterm_past_drain_timeout_forces_distinct_exit_code(
            self, tmp_path):
        program = tmp_path / "acquaintance.pl"
        program.write_text(ACQUAINTANCE)
        process, port = boot_serve(str(program), "--drain-timeout", "1")
        try:
            results = {}
            wedged = threading.Thread(
                target=background_request,
                args=(port, {"specs": [WEDGE_SPEC]}, results))
            wedged.start()
            time.sleep(0.5)
            process.send_signal(signal.SIGTERM)
            code, stderr = finish(process, timeout=60)
            assert code == 3, stderr
            assert "forcing shutdown" in stderr
            assert "forced exit" in stderr
            wedged.join(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


class TestDrainingReadiness:
    def test_begin_drain_sheds_and_flips_healthz(self):
        registry = TenantRegistry()
        registry.create("t", source=ACQUAINTANCE)
        service = ProvenanceService(registry, AdmissionController())
        with start_in_background(service) as handle:
            status, _, data = request(handle.port, "GET", "/healthz")
            assert status == 200
            assert json.loads(data)["status"] == "ok"

            service.begin_drain()
            service.begin_drain()  # idempotent

            status, headers, data = request(handle.port, "GET", "/healthz")
            assert status == 503
            assert headers.get("retry-after") == "1"
            assert json.loads(data)["status"] == "draining"
            status, headers, data = request(
                handle.port, "POST", "/tenants/t/query", {"specs": [KEY]})
            assert status == 503
            assert "retry-after" in headers
        registry.close()

    def test_drain_without_inflight_returns_immediately(self):
        import asyncio
        service = ProvenanceService(TenantRegistry())
        service.begin_drain()
        assert asyncio.run(service.drain(timeout=1.0)) is True

    def test_admission_snapshot_reports_draining(self):
        admission = AdmissionController()
        assert admission.snapshot()["draining"] is False
        admission.begin_drain()
        assert admission.draining is True
        assert admission.snapshot()["draining"] is True


class TestDegradedReadiness:
    def test_abandoned_threads_flip_health_to_degraded(self):
        registry = TenantRegistry()
        registry.create("t", source=ACQUAINTANCE)
        tenant = registry.get("t")
        executor = tenant.executor
        try:
            stats = dict(executor.deadline_runner_stats())
            stats["abandoned_live"] = 3
            executor.deadline_runner_stats = lambda: stats
            admission = AdmissionController()
            healthy = health_envelope(registry, 1.0, admission,
                                      abandoned_threshold=4)
            assert healthy["status"] == "ok"
            assert healthy["deadline_threads"]["abandoned_live"] == 3
            degraded = health_envelope(registry, 1.0, admission,
                                       abandoned_threshold=3)
            assert degraded["status"] == "degraded"
            assert degraded["deadline_threads"]["degraded_threshold"] == 3
            unchecked = health_envelope(registry, 1.0, admission)
            assert unchecked["status"] == "ok"
        finally:
            registry.close()

    def test_draining_outranks_degraded(self):
        registry = TenantRegistry()
        admission = AdmissionController()
        admission.begin_drain()
        document = health_envelope(registry, 1.0, admission,
                                   abandoned_threshold=0)
        assert document["status"] == "draining"
        registry.close()
