"""Polynomial extraction from the provenance graph, with cycle removal.

Section 3.3 shows that for a queried tuple ``q`` whose provenance graph is
cyclic, the polynomial restricted to **cycle-free derivations** (λ⁰, the
derivations that never use a tuple to derive itself) has the same success
probability as the full infinite polynomial — the absorption law collapses
every around-the-cycle derivation onto a cycle-free one (Equations 6-13).

:func:`extract_polynomial` therefore performs a depth-first expansion of the
graph with an *ancestor set*: a derived tuple already on the current
expansion path contributes FALSE.  The result is a polynomial containing
only base-tuple and rule literals, exactly the λ⁰ = P_B + P'_B of the paper.

:func:`extract_unrolled` additionally allows each tuple to be revisited up
to ``rounds`` times; by the theorem P[λ⁰] = P[λᵏ] for every k, which the
test suite and the cycle-handling ablation benchmark verify empirically.

Hop limit: Section 6.1 bounds provenance querying by a hop limit (4 or 6)
on the derivation depth; derivations needing deeper expansion are dropped.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, Optional, Tuple

from .. import telemetry
from ..core.errors import BudgetExceededError, DepthLimitError
from ..resilience.budgets import active_meter
from .graph import ProvenanceGraph
from .polynomial import Polynomial, rule_literal, tuple_literal


class ExtractionError(BudgetExceededError):
    """Raised when extraction exceeds the configured size budget.

    A :class:`~repro.core.errors.BudgetExceededError` (and therefore still
    a ``RuntimeError``, its historical base) carrying the last consistent
    intermediate polynomial as ``partial``.
    """


def extract_polynomial(graph: ProvenanceGraph, root: str,
                       hop_limit: Optional[int] = None,
                       max_monomials: Optional[int] = None) -> Polynomial:
    """Extract the cycle-free provenance polynomial λ⁰ for ``root``.

    The returned polynomial contains only base-tuple literals and rule
    literals; its success probability equals the tuple's ProbLog success
    probability (restricted to the hop limit when one is given).

    Raises :class:`KeyError` when ``root`` is not a tuple in the graph, and
    :class:`ExtractionError` when ``max_monomials`` is exceeded.
    """
    if root not in graph:
        raise KeyError("Tuple %r does not appear in the provenance graph" % root)
    rt = telemetry.runtime()
    if not rt.enabled:
        extractor = _Extractor(graph, hop_limit, max_monomials, rounds=0)
        return extractor.expand_root(root)
    with rt.tracer.span("extract.polynomial", root=root,
                        hop_limit=hop_limit) as span:
        extractor = _Extractor(graph, hop_limit, max_monomials, rounds=0)
        polynomial = extractor.expand_root(root)
        span.set_attributes(monomials=len(polynomial),
                            literals=len(polynomial.literals()))
    return polynomial


def extract_unrolled(graph: ProvenanceGraph, root: str, rounds: int,
                     hop_limit: Optional[int] = None,
                     max_monomials: Optional[int] = None) -> Polynomial:
    """Extract λᵏ: derivations traversing any cycle at most ``rounds`` times.

    ``rounds=0`` coincides with :func:`extract_polynomial`.  Used to validate
    the cycle-elimination theorem: P[λ⁰] = P[λᵏ] for all k.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    if root not in graph:
        raise KeyError("Tuple %r does not appear in the provenance graph" % root)
    extractor = _Extractor(graph, hop_limit, max_monomials, rounds=rounds)
    return extractor.expand_root(root)


def extract_many(graph: ProvenanceGraph, roots, hop_limit: Optional[int] = None,
                 max_monomials: Optional[int] = None) -> Dict[str, Polynomial]:
    """Extract λ⁰ for many tuples, sharing the expansion memo.

    Related tuples (e.g. all mutual-trust pairs of one sample) share most
    of their sub-derivations; a single extractor instance reuses every
    memoised cofactor across roots, which is substantially faster than
    one :func:`extract_polynomial` call per tuple.
    """
    extractor = _Extractor(graph, hop_limit, max_monomials, rounds=0)
    result: Dict[str, Polynomial] = {}
    with telemetry.runtime().tracer.span(
            "extract.many", hop_limit=hop_limit) as span:
        for root in roots:
            if root not in graph:
                raise KeyError(
                    "Tuple %r does not appear in the provenance graph" % root)
            result[root] = extractor.expand_root(root)
        span.set_attribute("roots", len(result))
    return result


def extract_bounds(graph: ProvenanceGraph, root: str, hop_limit: int,
                   max_monomials: Optional[int] = None
                   ) -> Tuple[Polynomial, Polynomial]:
    """Extract (λ_lower, λ_upper) at a given depth bound.

    The lower polynomial drops derivations cut off by the hop limit (as
    :func:`extract_polynomial` does); the upper polynomial instead treats
    every depth-cut derived tuple as certainly true.  Hence

        P[λ_lower] ≤ P[λ⁰] ≤ P[λ_upper]

    — the bounds of ProbLog's iterative-deepening anytime inference (see
    :func:`repro.inference.bounded.bounded_probability`).  Cycle-blocked
    branches stay FALSE in both (dropping them is exact, per Sec. 3.3).
    """
    if hop_limit is None or hop_limit <= 0:
        raise ValueError("extract_bounds requires a positive hop_limit")
    if root not in graph:
        raise KeyError("Tuple %r does not appear in the provenance graph" % root)
    lower = _Extractor(graph, hop_limit, max_monomials,
                       rounds=0).expand_root(root)
    upper = _Extractor(graph, hop_limit, max_monomials, rounds=0,
                       frontier_true=True).expand_root(root)
    return lower, upper


class _Extractor:
    """DFS expansion engine shared by λ⁰, λᵏ, and bound extraction."""

    def __init__(self, graph: ProvenanceGraph, hop_limit: Optional[int],
                 max_monomials: Optional[int], rounds: int,
                 frontier_true: bool = False) -> None:
        self._graph = graph
        self._hop_limit = hop_limit
        self._max_monomials = max_monomials
        self._rounds = rounds
        # Upper-bound mode: a derived tuple cut off by the hop limit is
        # treated as certainly true instead of underivable.
        self._frontier_true = frontier_true
        # Memo keyed by (tuple, blocked-ancestor set, remaining depth); exact,
        # because the expansion of a tuple depends only on which ancestors are
        # blocked and how much depth remains.
        self._memo: Dict[Tuple[str, FrozenSet[str], Optional[int]], Polynomial] = {}
        # Ambient budget meter, resolved once per extractor: the contextvar
        # lookup stays off the per-node hot path.
        self._meter = active_meter()
        # Root-level partial progress: the sum of fully-expanded root
        # derivations, maintained by :meth:`expand` at depth 0 and attached
        # to budget errors by :meth:`expand_root`.
        self._root_partial = Polynomial.zero()

    def expand_root(self, key: str) -> Polynomial:
        """Expand ``key`` as a query root with root-level partial progress.

        When a budget trips mid-expansion, the ``partial`` carried by the
        raised :class:`~repro.core.errors.BudgetExceededError` is replaced
        with the sum of the root derivations completed so far.  That sum is
        a well-formed under-approximation of the final polynomial (every
        monomial is subsumed, so its probability is a lower bound) —
        unlike whatever intermediate product happened to trip the meter
        deep in the recursion.

        Pathologically deep derivation chains that would crash the
        interpreter with a bare ``RecursionError`` instead raise a typed
        :class:`~repro.core.errors.DepthLimitError` naming the phase and
        the interpreter's depth bound, so a service worker fails the
        query, not the process.
        """
        self._root_partial = Polynomial.zero()
        try:
            return self.expand(key, frozenset(), {}, 0)
        except BudgetExceededError as exc:
            exc.partial = self._root_partial
            raise
        except RecursionError as exc:
            if isinstance(exc, DepthLimitError):
                raise
            raise DepthLimitError(
                "provenance extraction of %r" % key,
                sys.getrecursionlimit(),
                detail="derivation chain deeper than the interpreter "
                       "stack; raise the limit or set a hop_limit"
            ) from exc

    def expand(self, key: str, ancestors: FrozenSet[str],
               visit_counts: Dict[str, int], depth: int) -> Polynomial:
        graph = self._graph
        if self._meter is not None:
            self._meter.count_visit()
        result = Polynomial.zero()

        if graph.is_base(key):
            result = Polynomial.from_literal(tuple_literal(key))
            if not graph.is_derived(key):
                return result

        if not graph.is_derived(key):
            # Underivable non-base tuple: contributes FALSE.
            return result

        count = visit_counts.get(key, 0)
        if count > self._rounds:
            # Cycle blocked: with rounds=0 this implements λ⁰ (ancestor
            # blocking); with rounds=k it allows k re-entries.
            return result

        remaining = (None if self._hop_limit is None
                     else self._hop_limit - depth)
        if remaining is not None and remaining <= 0:
            if self._frontier_true:
                # Upper bound: the cut-off tuple might hold — assume TRUE.
                return Polynomial.one()
            return result

        memo_key = None
        if self._rounds == 0:
            blocked = frozenset(a for a in ancestors if a != key)
            memo_key = (key, blocked, remaining, self._frontier_true)
            cached = self._memo.get(memo_key)
            if cached is not None:
                base_part = result
                return base_part + cached

        derived = Polynomial.zero()
        if depth == 0:
            self._root_partial = result
        child_ancestors = ancestors | {key}
        child_counts = dict(visit_counts)
        child_counts[key] = count + 1
        for execution in graph.derivations_of(key):
            term = Polynomial.one()
            for body_key in execution.body:
                factor = self.expand(body_key, child_ancestors,
                                     child_counts, depth + 1)
                if factor.is_zero:
                    term = Polynomial.zero()
                    break
                term = term * factor
                self._check_budget(term)
            if term.is_zero:
                continue
            derived = derived + term.times_literal(
                rule_literal(execution.rule_label))
            self._check_budget(derived)
            if depth == 0:
                self._root_partial = result + derived

        if memo_key is not None:
            self._memo[memo_key] = derived
        return result + derived

    def _check_budget(self, polynomial: Polynomial) -> None:
        if (self._max_monomials is not None
                and len(polynomial) > self._max_monomials):
            raise ExtractionError(
                "Extraction exceeded max_monomials=%d" % self._max_monomials,
                resource="monomials", limit=self._max_monomials,
                used=len(polynomial), partial=polynomial,
            )
        if self._meter is not None:
            self._meter.check_polynomial(polynomial)
