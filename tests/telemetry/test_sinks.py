"""Sink and exporter unit tests: ring buffer, JSONL, slow log, chrome."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.sinks import (
    JSONLSink,
    RingBufferSink,
    SlowQueryLog,
    chrome_trace_events,
    render_span_tree,
    write_chrome_trace,
)
from repro.telemetry.tracer import Span


def make_span(name="op", trace_id="t1", span_id="s1", parent_id=None,
              start_ns=0, duration_ns=1_000_000, status="ok",
              thread="MainThread", **attributes):
    span = Span(trace_id, span_id, parent_id, name, attributes)
    span.start_ns = start_ns
    span.duration_ns = duration_ns
    span.status = status
    span.thread = thread
    return span


class TestRingBufferSink:
    def test_retains_in_arrival_order(self):
        sink = RingBufferSink(capacity=8)
        spans = [make_span(span_id="s%d" % i) for i in range(3)]
        for span in spans:
            sink.on_span(span)
        assert sink.spans() == spans
        assert len(sink) == 3
        assert sink.dropped == 0

    def test_evicts_oldest_and_counts_drops(self):
        sink = RingBufferSink(capacity=2)
        spans = [make_span(span_id="s%d" % i) for i in range(5)]
        for span in spans:
            sink.on_span(span)
        assert sink.spans() == spans[-2:]
        assert sink.dropped == 3

    def test_trace_filters_by_trace_id(self):
        sink = RingBufferSink()
        keep = make_span(trace_id="ta", span_id="s1")
        other = make_span(trace_id="tb", span_id="s2")
        keep2 = make_span(trace_id="ta", span_id="s3")
        for span in (keep, other, keep2):
            sink.on_span(span)
        assert sink.trace("ta") == [keep, keep2]

    def test_clear_resets_everything(self):
        sink = RingBufferSink(capacity=1)
        sink.on_span(make_span(span_id="s1"))
        sink.on_span(make_span(span_id="s2"))
        sink.clear()
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJSONLSink:
    def test_one_parseable_line_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(str(path), anchor_ns=1_000)
        sink.on_span(make_span(span_id="s1", start_ns=10, key="v"))
        sink.on_span(make_span(span_id="s2", start_ns=20))
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["span_id"] == "s1"
        assert first["attributes"] == {"key": "v"}
        assert first["start_unix"] == pytest.approx((1_000 + 10) / 1e9)
        assert json.loads(lines[1])["span_id"] == "s2"

    def test_close_is_idempotent_and_stops_writes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(str(path))
        sink.on_span(make_span(span_id="s1"))
        sink.close()
        sink.close()
        sink.on_span(make_span(span_id="s2"))
        sink.flush()
        assert len(path.read_text().splitlines()) == 1


class TestSlowQueryLog:
    def test_retains_only_named_spans_over_threshold(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        slow_query = make_span(
            name="query", parent_id="sX", duration_ns=600_000_000)
        fast_query = make_span(
            name="query", parent_id="sX", duration_ns=100_000_000)
        slow_stage = make_span(
            name="infer", parent_id="sX", duration_ns=700_000_000)
        for span in (slow_query, fast_query, slow_stage):
            log.on_span(span)
        assert log.entries() == [slow_query]

    def test_slow_trace_roots_retained_regardless_of_name(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        root = make_span(
            name="evaluate", parent_id=None, duration_ns=600_000_000)
        log.on_span(root)
        assert log.entries() == [root]

    def test_emit_callback_fires_per_entry(self):
        emitted = []
        log = SlowQueryLog(threshold_seconds=0.1, emit=emitted.append)
        span = make_span(name="query", duration_ns=200_000_000)
        log.on_span(span)
        assert emitted == [span]

    def test_clear_and_len(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        log.on_span(make_span(name="query", duration_ns=200_000_000))
        assert len(log) == 1
        log.clear()
        assert len(log) == 0

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=0.0)


class TestChromeTrace:
    def test_complete_events_sorted_with_thread_metadata(self):
        child = make_span(
            name="infer", span_id="s2", parent_id="s1",
            start_ns=2_000, duration_ns=1_000, thread="worker-1",
            backend="exact")
        root = make_span(
            name="query", span_id="s1", start_ns=1_000,
            duration_ns=5_000, thread="MainThread")
        events = chrome_trace_events([child, root])
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert [e["name"] for e in complete] == ["query", "infer"]
        assert complete[0]["ts"] == 1.0 and complete[0]["dur"] == 5.0
        assert complete[1]["args"]["parent_id"] == "s1"
        assert complete[1]["args"]["backend"] == "exact"
        assert complete[0]["tid"] != complete[1]["tid"]
        assert {e["args"]["name"] for e in metadata} == {
            "MainThread", "worker-1"}

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "chrome.json"
        write_chrome_trace([make_span()], str(path))
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in document["traceEvents"])


class TestRenderSpanTree:
    def test_indents_children_under_parents(self):
        root = make_span(name="query", span_id="s1", start_ns=0)
        child = make_span(
            name="infer", span_id="s2", parent_id="s1", start_ns=10,
            backend="exact")
        text = render_span_tree([root, child])
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  infer")
        assert "{backend=exact}" in lines[1]

    def test_orphans_surface_as_roots(self):
        orphan = make_span(
            name="infer", span_id="s2", parent_id="evicted")
        text = render_span_tree([orphan])
        assert text.startswith("infer")

    def test_error_status_marked(self):
        span = make_span(name="query", status="error")
        assert "[error]" in render_span_tree([span])
