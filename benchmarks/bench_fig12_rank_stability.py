"""Figure 12 — rank stability of the top-5 influential literals vs error.

The paper computes the top-5 most influential literals on the original
provenance, then recomputes influence on sufficient provenance at
increasing error limits: ranks stay stable below ~2% error, fluctuate
beyond, but the single most influential literal survives through 10%.
"""

from repro.queries.derivation import derivation_query
from repro.queries.influence import influence_query

from reporting import record_table
from workloads import query_workload

SAMPLES = 20000
ERRORS = [0.0, 0.001, 0.01, 0.02, 0.05, 0.10]


def test_fig12_rank_stability(benchmark):
    p3, key, poly = query_workload()
    probabilities = p3.probabilities

    baseline = influence_query(
        poly, probabilities, method="parallel", samples=SAMPLES, seed=1)
    top5 = [score.literal for score in baseline.top(5)]

    rows = []
    top1_stable = True
    small_error_stable = True
    for fraction in ERRORS:
        epsilon = fraction * baseline.top(1)[0].influence
        sufficient = derivation_query(
            poly, probabilities, epsilon, method="naive-mc").sufficient
        report = influence_query(
            sufficient, probabilities, method="parallel",
            samples=SAMPLES, seed=1)
        ranking = list(report.ranking())
        ranks = []
        for literal in top5:
            ranks.append(ranking.index(literal) + 1
                         if literal in ranking else "-")
        rows.append(["%.1f%%" % (100 * fraction), len(sufficient)] + ranks)
        if ranks[0] != 1:
            top1_stable = False
        if fraction <= 0.01 and ranks != [1, 2, 3, 4, 5]:
            small_error_stable = False

    record_table(
        "fig12_rank_stability",
        "Figure 12: rank of the baseline top-5 literals under sufficient "
        "provenance (query %s)" % key,
        ["approx. error", "dnf size"]
        + ["#%d %s" % (i + 1, lit) for i, lit in enumerate(top5)],
        rows,
    )

    assert top1_stable, "the most influential literal must survive all errors"
    assert small_error_stable, "top-5 ranks must hold at <=1% error"

    benchmark.pedantic(
        influence_query, args=(poly, probabilities),
        kwargs={"method": "parallel", "samples": 2000, "seed": 1,
                "literals": top5},
        rounds=2, iterations=1)
