"""The provenance toolbox: a tour of the extension features.

The other examples follow the paper's own case studies; this one walks
through the capabilities P3 adds around them, on one small social-trust
program:

1. **Why-not provenance** — explain an absent tuple,
2. **Anytime bounded inference** — bracket a probability without full
   extraction,
3. **Conditional probability** — update beliefs under evidence,
4. **Joint influence** — find complementary / substitutable literal pairs,
5. **Goal-directed evaluation** — answer one query with magic sets,
6. **Offline sessions** — export provenance, reload, query without
   re-evaluating.

Run with::

    python examples/provenance_toolbox.py
"""

import os
import tempfile

from repro import P3, goal_directed_query
from repro.data import paper_fragment
from repro.inference import exact_probability
from repro.inference.bounded import bounded_probability
from repro.io import load_session, save_session
from repro.queries import most_synergistic_pairs

TARGET = "mutualTrustPath(1,6)"


def main() -> None:
    program = paper_fragment().to_program()
    p3 = P3(program)
    p3.evaluate()
    print("Program: the paper's 6-node Bitcoin-OTC fragment (Tables 5-7)")
    print("P[%s] = %.4f" % (TARGET, p3.probability_of(TARGET)))

    # ---- 1. why-not -------------------------------------------------------
    print("\n--- 1. Why-not provenance " + "-" * 40)
    # Person 5 has no ratings at all: both directions are missing.
    print(p3.why_not("mutualTrustPath", 1, 5).to_text())
    # Drilling down one level: what would give us trustPath(5,1)?
    print(p3.why_not("trustPath", 5, 1).to_text())

    # ---- 2. anytime bounds --------------------------------------------------
    print("\n--- 2. Anytime bounded inference " + "-" * 33)
    result = bounded_probability(p3.graph, TARGET, p3.probabilities,
                                 epsilon=1e-6)
    for hop, low, up in result.history:
        print("  hop %2d: P in [%.4f, %.4f]" % (hop, low, up))
    print("  converged to the exact value at hop %d" % result.hop_limit)

    # ---- 3. conditional probability ------------------------------------------
    print("\n--- 3. Conditional probability " + "-" * 35)
    prior = p3.probability_of(TARGET)
    posterior = p3.conditional_probability_of(
        TARGET, evidence={"trustPath(6,1)": True})
    print("  P[%s]                      = %.4f" % (TARGET, prior))
    print("  P[%s | trustPath(6,1)]     = %.4f" % (TARGET, posterior))
    negative = p3.conditional_probability_of(
        TARGET, evidence={"trust(1,13)": False})
    print("  P[%s | no trust(1,13)]     = %.4f" % (TARGET, negative))

    # ---- 4. joint influence ----------------------------------------------------
    print("\n--- 4. Joint influence " + "-" * 42)
    poly = p3.polynomial_of(TARGET)
    pairs = most_synergistic_pairs(
        poly, p3.probabilities, k=3,
        literals=sorted(poly.tuple_literals()))
    for first, second, value in pairs:
        kind = "complements" if value > 0 else "substitutes"
        print("  %s + %s: %+.4f (%s)" % (first, second, value, kind))

    # ---- 5. goal-directed evaluation ---------------------------------------------
    print("\n--- 5. Goal-directed evaluation (magic sets) " + "-" * 21)
    directed = goal_directed_query(
        paper_fragment().to_program(), "mutualTrustPath", 1, 6)
    print("  %d rule firings (full evaluation: %d)"
          % (directed.firing_count, p3.evaluate().firing_count))
    print("  same probability: %.4f"
          % directed.probability_of(TARGET))

    # ---- 6. offline sessions --------------------------------------------------------
    print("\n--- 6. Offline provenance sessions " + "-" * 31)
    handle, path = tempfile.mkstemp(suffix=".json")
    os.close(handle)
    try:
        save_session(p3.program, p3.graph, path)
        print("  session written: %d bytes" % os.path.getsize(path))
        _, graph, probabilities, _ = load_session(path)
        from repro.provenance import extract_polynomial
        offline = exact_probability(
            extract_polynomial(graph, TARGET), probabilities)
        print("  reloaded without re-evaluation: P = %.4f" % offline)
    finally:
        os.unlink(path)


if __name__ == "__main__":
    main()
