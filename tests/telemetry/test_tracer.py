"""Tracer unit tests: nesting, context propagation, and the null path."""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.telemetry.sinks import RingBufferSink
from repro.telemetry.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    current_span,
)


@pytest.fixture()
def tracer():
    sink = RingBufferSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    tracer.ring = sink  # test convenience
    return tracer


class TestNesting:
    def test_root_span_has_no_parent(self, tracer):
        with tracer.span("root") as span:
            assert span.parent_id is None
            assert span.trace_id
        [finished] = tracer.ring.spans()
        assert finished is span

    def test_child_inherits_trace_and_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_current_span_tracks_with_scope(self, tracer):
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_child_interval_contained_in_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert child.start_ns >= root.start_ns
        assert child.end_ns <= root.end_ns

    def test_children_finish_before_parents(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        names = [span.name for span in tracer.ring.spans()]
        assert names == ["child", "root"]


class TestAttributesAndStatus:
    def test_constructor_and_setter_attributes(self, tracer):
        with tracer.span("s", backend="exact") as span:
            span.set_attribute("monomials", 7)
            span.set_attributes(value=0.5, cached=False)
        assert span.attributes == {
            "backend": "exact", "monomials": 7, "value": 0.5,
            "cached": False}

    def test_exception_marks_error_status(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("failing") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert "RuntimeError" in span.attributes["error"]
        assert span.duration_ns >= 0
        assert current_span() is None

    def test_to_dict_fields(self, tracer):
        with tracer.span("s", k=1) as span:
            pass
        document = span.to_dict(anchor_ns=1_000_000_000)
        for field in ("trace_id", "span_id", "parent_id", "name",
                      "start_ns", "duration_ns", "start_unix", "duration",
                      "status", "thread"):
            assert field in document
        assert document["attributes"] == {"k": 1}
        assert document["start_unix"] == pytest.approx(
            (1_000_000_000 + span.start_ns) / 1e9)


class TestThreadPropagation:
    def test_copied_context_parents_worker_spans(self, tracer):
        """The executor's fan-out pattern: copy_context per task."""
        def work():
            with tracer.span("worker") as span:
                return span

        with tracer.span("batch") as batch:
            contexts = [contextvars.copy_context() for _ in range(4)]
            with ThreadPoolExecutor(max_workers=2) as pool:
                spans = list(pool.map(
                    lambda ctx: ctx.run(work), contexts))
        assert len(spans) == 4
        for span in spans:
            assert span.trace_id == batch.trace_id
            assert span.parent_id == batch.span_id

    def test_uncopied_thread_starts_fresh_trace(self, tracer):
        def work():
            with tracer.span("detached") as span:
                return span

        with tracer.span("batch") as batch:
            with ThreadPoolExecutor(max_workers=1) as pool:
                span = pool.submit(work).result()
        assert span.parent_id is None
        assert span.trace_id != batch.trace_id

    def test_span_records_thread_name(self, tracer):
        with ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="p3-test") as pool:
            def work():
                with tracer.span("t") as span:
                    return span
            span = pool.submit(work).result()
        assert span.thread.startswith("p3-test")


class TestNullPath:
    def test_disabled_tracer_returns_shared_null_span(self):
        first = NULL_TRACER.span("anything", key="value")
        second = NULL_TRACER.span("other")
        assert first is NULL_SPAN
        assert second is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("x") as span:
            span.set_attribute("a", 1)
            span.set_attributes(b=2)
            assert not span.recording
            assert span.status == "ok"
        assert span.attributes == {}
        assert current_span() is None

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("propagates")
