"""Ablation — top-K derivations: lazy best-first vs full DNF extraction.

The extension modules add a lazy top-K search (``repro.queries.topk``)
that avoids materialising the full provenance polynomial when only the
best few derivations are needed.  This ablation compares it against the
extract-then-rank baseline on the large query workload and checks the two
agree on the answer.
"""

import time

import pytest

from repro.provenance.extraction import extract_polynomial
from repro.queries.topk import top_k_derivations

from reporting import record_table
from workloads import QUERY_HOP_LIMIT, query_workload

K = 5


def test_ablation_topk_vs_extraction(benchmark):
    p3, key, poly = query_workload()
    probabilities = p3.probabilities

    # Baseline: extract the full polynomial, rank its monomials.
    start = time.perf_counter()
    full = extract_polynomial(p3.graph, key, hop_limit=QUERY_HOP_LIMIT)
    ranked = full.monomials_by_probability(probabilities)[:K]
    extract_time = time.perf_counter() - start

    # Lazy: best-first search straight on the graph.
    start = time.perf_counter()
    lazy = top_k_derivations(p3.graph, key, probabilities, k=K,
                             hop_limit=QUERY_HOP_LIMIT)
    lazy_time = time.perf_counter() - start

    # Same probabilities in the same order; ties may order differently
    # between the two methods, so compare probability sequences and
    # membership rather than exact monomial order.
    lazy_probs = [p for _, p in lazy]
    ranked_probs = [p for _, p in ranked]
    assert lazy_probs == pytest.approx(ranked_probs)
    full_monomials = set(full.monomials)
    assert all(m in full_monomials for m, _ in lazy)

    record_table(
        "ablation_topk",
        "Ablation: top-%d derivations of %s — lazy search vs full "
        "extraction (%d monomials)" % (K, key, len(full)),
        ["method", "time (ms)", "best derivation p"],
        [
            ["extract + rank", 1000 * extract_time, ranked[0][1]],
            ["lazy best-first", 1000 * lazy_time, lazy[0][1]],
        ],
    )

    benchmark.pedantic(
        top_k_derivations, args=(p3.graph, key, probabilities),
        kwargs={"k": K, "hop_limit": QUERY_HOP_LIMIT},
        rounds=3, iterations=1)
