"""Ablation — read-once factorization vs Shannon expansion.

The paper's related work notes that Kanagal et al.'s fast sensitivity
analysis needs read-once lineage, which PLP provenance does not guarantee.
This ablation quantifies both halves of that remark on our workloads:

- how often mutual-trust provenance is actually read-once (rarely, once
  paths overlap), and
- the speedup read-once evaluation gives when it does apply.
"""

import time

from repro import P3
from repro.data import paper_fragment
from repro.inference.exact import exact_probability
from repro.provenance.polynomial import Polynomial, tuple_literal
from repro.provenance.readonce import decompose, is_read_once

from reporting import record_table
from workloads import query_workload


def test_ablation_readonce_applicability(benchmark):
    # How often is trust provenance read-once?
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    fragment_stats = _classify(p3, list(map(str, p3.derived_atoms(
        "mutualTrustPath"))) + list(map(str, p3.derived_atoms("trustPath"))))

    big_p3, key, poly = query_workload()
    big_read_once = is_read_once(poly)

    record_table(
        "ablation_readonce_applicability",
        "Ablation: how often is extracted provenance read-once?",
        ["workload", "tuples", "read-once", "fraction"],
        [
            ["trust fragment (all derived)", fragment_stats[0],
             fragment_stats[1],
             fragment_stats[1] / max(1, fragment_stats[0])],
            ["150/150 sample, largest query", 1,
             int(big_read_once), float(big_read_once)],
        ],
    )
    # The paper's remark: read-once is NOT universal for PLP provenance.
    assert not big_read_once

    benchmark.pedantic(is_read_once, args=(poly,), rounds=2, iterations=1)


def _classify(p3, keys):
    total = 0
    read_once = 0
    for key in keys:
        polynomial = p3.polynomial_of(key)
        if polynomial.is_zero or polynomial.is_one:
            continue
        total += 1
        if is_read_once(polynomial):
            read_once += 1
    return total, read_once


def test_ablation_readonce_speedup(benchmark):
    # A wide product-of-sums polynomial: read-once evaluation is linear,
    # Shannon expansion is not.
    factors = 12
    poly = Polynomial.one()
    probabilities = {}
    for i in range(factors):
        left = tuple_literal("a%d" % i)
        right = tuple_literal("b%d" % i)
        poly = poly * Polynomial.from_monomials([[left], [right]])
        probabilities[left] = 0.3
        probabilities[right] = 0.4

    tree = decompose(poly)
    assert tree is not None

    start = time.perf_counter()
    fast = tree.probability(probabilities)
    read_once_time = time.perf_counter() - start

    start = time.perf_counter()
    slow = exact_probability(poly, probabilities)
    shannon_time = time.perf_counter() - start

    assert abs(fast - slow) < 1e-9
    record_table(
        "ablation_readonce_speedup",
        "Ablation: (a+b)^%d product-of-sums, %d monomials — read-once vs "
        "Shannon" % (factors, len(poly)),
        ["method", "P", "time (ms)"],
        [
            ["read-once tree", fast, 1000 * read_once_time],
            ["Shannon expansion", slow, 1000 * shannon_time],
        ],
    )

    benchmark.pedantic(tree.probability, args=(probabilities,),
                       rounds=5, iterations=1)
