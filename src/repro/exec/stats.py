"""Per-stage observability for the batch executor.

One :class:`ExecutorStats` object accumulates, across every query a
:class:`~repro.exec.executor.QueryExecutor` answers:

- wall-clock totals and call counts per pipeline stage (``parse``,
  ``evaluate``, ``extract``, ``infer``, ``query``);
- query counters by kind, plus error and deduplication counts;
- cache hit/miss/eviction counters (snapshotted from the executor's two
  LRU caches at :meth:`as_dict` time).

All mutation goes through a lock so worker threads can record freely.

When :mod:`repro.telemetry` is enabled, this object is a *consumer* of
the same event stream the tracer sees: :meth:`time_stage` opens a span
named after the stage, and every ``record_*`` call additionally feeds
the process-wide metrics registry (``p3_stage_seconds``,
``p3_queries_total``, ``p3_query_errors_total``, ``p3_batches_total``,
``p3_deduplicated_total``), so ``--stats`` output and exported metrics
can never drift apart.  With telemetry disabled (the default) each
recording costs one extra attribute check.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .. import telemetry

#: Pipeline stages with dedicated timing slots.  ``parse`` and
#: ``evaluate`` are recorded by whoever builds the system (the CLI does);
#: ``extract``/``infer`` are recorded inside the executor; ``query`` is
#: the end-to-end time of one spec; ``update`` is incremental fact
#: propagation (:meth:`repro.core.system.P3.add_facts`).
STAGES = ("parse", "evaluate", "update", "extract", "infer", "query")


class ExecutorStats:
    """Thread-safe counters and wall-clock timings for query execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stage_seconds: Dict[str, float] = {}
        self._stage_calls: Dict[str, int] = {}
        self._query_counts: Dict[str, int] = {}
        self._errors = 0
        self._batches = 0
        self._deduplicated = 0
        self._pool_events: Dict[str, int] = {}
        self._pool_reasons: Dict[str, str] = {}

    # -- recording ---------------------------------------------------------------

    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one timed call to a pipeline stage."""
        with self._lock:
            self._stage_seconds[stage] = (
                self._stage_seconds.get(stage, 0.0) + seconds)
            self._stage_calls[stage] = self._stage_calls.get(stage, 0) + 1
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.histogram(
                "p3_stage_seconds",
                help="Wall-clock seconds per pipeline stage call",
                labelnames=("stage",)).observe(seconds, stage=stage)

    @contextmanager
    def time_stage(self, stage: str) -> Iterator[None]:
        """Context manager timing one call of ``stage``.

        With telemetry enabled the timed region is also a span named
        after the stage, nested under whatever span is current.
        """
        start = time.perf_counter()
        with telemetry.runtime().tracer.span(stage):
            try:
                yield
            finally:
                self.record_stage(stage, time.perf_counter() - start)

    def record_query(self, kind: str) -> None:
        with self._lock:
            self._query_counts[kind] = self._query_counts.get(kind, 0) + 1
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_queries_total", help="Queries answered, by kind",
                labelnames=("kind",)).inc(kind=kind)

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_query_errors_total",
                help="Queries that ended in an error outcome").inc()

    def record_batch(self, deduplicated: int = 0) -> None:
        with self._lock:
            self._batches += 1
            self._deduplicated += deduplicated
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_batches_total", help="Executor batches run").inc()
            if deduplicated:
                rt.metrics.counter(
                    "p3_deduplicated_total",
                    help="Duplicate specs collapsed before execution"
                ).inc(deduplicated)

    def record_pool_event(self, event: str, reason: str = "") -> None:
        """Record a worker-pool supervision event.

        Events: ``rebuild`` (a hung or broken pool was replaced),
        ``hang_abandon`` (rebuild quota exhausted — remaining specs got
        error outcomes), ``degrade_sequential`` (the batch fell back to
        in-thread execution).  The most recent reason per event is kept
        for :meth:`as_dict`.
        """
        with self._lock:
            self._pool_events[event] = self._pool_events.get(event, 0) + 1
            if reason:
                self._pool_reasons[event] = reason
        rt = telemetry.runtime()
        if rt.enabled:
            if event == "rebuild":
                rt.metrics.counter(
                    "p3_resilience_pool_rebuilds_total",
                    help="Hung or broken worker pools replaced").inc()
            else:
                rt.metrics.counter(
                    "p3_resilience_pool_degradations_total",
                    help="Batches degraded past pool rebuild, by mode",
                    labelnames=("mode",)).inc(mode=event)

    def reset(self) -> None:
        """Zero every counter and timing (cache counters are separate)."""
        with self._lock:
            self._stage_seconds.clear()
            self._stage_calls.clear()
            self._query_counts.clear()
            self._errors = 0
            self._batches = 0
            self._deduplicated = 0
            self._pool_events.clear()
            self._pool_reasons.clear()

    # -- reading ------------------------------------------------------------------

    def stage_seconds(self, stage: str) -> float:
        with self._lock:
            return self._stage_seconds.get(stage, 0.0)

    def stage_calls(self, stage: str) -> int:
        with self._lock:
            return self._stage_calls.get(stage, 0)

    @property
    def total_queries(self) -> int:
        with self._lock:
            return sum(self._query_counts.values())

    @property
    def errors(self) -> int:
        with self._lock:
            return self._errors

    def as_dict(self, polynomial_cache: Optional[object] = None,
                probability_cache: Optional[object] = None) -> dict:
        """Snapshot every counter as a JSON-friendly dict.

        The two cache arguments (anything with a ``stats()`` method, i.e.
        :class:`~repro.exec.cache.LRUCache`) are snapshotted under the
        ``caches`` key when provided.
        """
        with self._lock:
            stages = {
                stage: {
                    "seconds": self._stage_seconds.get(stage, 0.0),
                    "calls": self._stage_calls.get(stage, 0),
                }
                for stage in sorted(
                    set(STAGES) | set(self._stage_seconds))
            }
            document = {
                "stages": stages,
                "queries": dict(self._query_counts),
                "total_queries": sum(self._query_counts.values()),
                "errors": self._errors,
                "batches": self._batches,
                "deduplicated": self._deduplicated,
            }
            if self._pool_events:
                document["pool"] = {
                    "events": dict(self._pool_events),
                    "reasons": dict(self._pool_reasons),
                }
        caches = {}
        if polynomial_cache is not None:
            caches["polynomial"] = polynomial_cache.stats()
        if probability_cache is not None:
            caches["probability"] = probability_cache.stats()
        if caches:
            document["caches"] = caches
            # Epoch-staleness evictions across both caches: nonzero means
            # a live update forced cached work to be recomputed.
            document["invalidations"] = sum(
                snapshot.get("invalidations", 0)
                for snapshot in caches.values())
        return document

    def __repr__(self) -> str:
        return "ExecutorStats(%d queries, %d errors)" % (
            self.total_queries, self.errors)
