"""Unit tests for semi-naive evaluation and firing capture."""

import pytest

from repro.datalog.ast import Fact
from repro.datalog.engine import Engine, EvaluationError, evaluate
from repro.datalog.parser import parse_program
from repro.datalog.rewrite import PROV_RELATION, RULE_RELATION
from repro.datalog.terms import atom


TC = """
t1 1.0: edge(1,2).
t2 1.0: edge(2,3).
t3 1.0: edge(3,4).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


class RecordingRecorder:
    """Captures every fact and firing the engine reports."""

    def __init__(self):
        self.facts = []
        self.firings = []

    def record_fact(self, fact):
        self.facts.append(fact)

    def record_firing(self, rule, head, body):
        self.firings.append((rule.label, str(head),
                             tuple(str(b) for b in body)))


def derived(result, relation):
    return set(map(str, result.database.atoms(relation)))


class TestBasicEvaluation:
    def test_transitive_closure(self):
        result = evaluate(parse_program(TC))
        assert derived(result, "path") == {
            "path(1,2)", "path(2,3)", "path(3,4)",
            "path(1,3)", "path(2,4)", "path(1,4)",
        }

    def test_nonrecursive_join(self):
        result = evaluate(parse_program("""
            p(1). q(1). q(2).
            r1 1.0: both(X) :- p(X), q(X).
        """))
        assert derived(result, "both") == {"both(1)"}

    def test_guards_filter(self):
        result = evaluate(parse_program("""
            n(1). n(2). n(3).
            r1 1.0: pair(X,Y) :- n(X), n(Y), X<Y.
        """))
        assert derived(result, "pair") == {
            "pair(1,2)", "pair(1,3)", "pair(2,3)",
        }

    def test_constants_in_rule_body(self):
        result = evaluate(parse_program("""
            p(1,"a"). p(2,"b").
            r1 1.0: onlya(X) :- p(X,"a").
        """))
        assert derived(result, "onlya") == {"onlya(1)"}

    def test_no_rules(self):
        result = evaluate(parse_program("p(1). p(2)."))
        assert result.derived_count == 0
        assert result.rounds == 1

    def test_facts_not_duplicated(self):
        result = evaluate(parse_program("p(1). r1 1.0: p2(X) :- p(X)."))
        assert result.database.count("p") == 1

    def test_cyclic_graph_terminates(self):
        result = evaluate(parse_program("""
            edge(1,2). edge(2,3). edge(3,1).
            r1 1.0: path(X,Y) :- edge(X,Y).
            r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
        """))
        # Full closure of a 3-cycle: all 9 ordered pairs.
        assert len(derived(result, "path")) == 9

    def test_mutual_recursion(self):
        result = evaluate(parse_program("""
            start(1).
            r1 1.0: even(X) :- start(X).
            r2 1.0: odd(Y) :- even(X), succ(X,Y).
            r3 1.0: even(Y) :- odd(X), succ(X,Y).
            succ(1,2). succ(2,3). succ(3,4).
        """))
        assert derived(result, "even") == {"even(1)", "even(3)"}
        assert derived(result, "odd") == {"odd(2)", "odd(4)"}


class TestFiringCapture:
    def test_every_distinct_firing_recorded(self):
        recorder = RecordingRecorder()
        Engine(parse_program(TC), recorder=recorder).run()
        # r1 fires 3× (one per edge); r2 fires once per (edge, path) pair:
        # (1,2)+path(2,*): 2 firings; (2,3)+path(3,4): 1; total 3.
        r1 = [f for f in recorder.firings if f[0] == "r1"]
        r2 = [f for f in recorder.firings if f[0] == "r2"]
        assert len(r1) == 3
        assert len(r2) == 3

    def test_no_duplicate_firings(self):
        recorder = RecordingRecorder()
        Engine(parse_program(TC), recorder=recorder).run()
        assert len(recorder.firings) == len(set(recorder.firings))

    def test_rederivation_of_base_fact_recorded(self):
        # know(Ben,Steve) is base AND re-derivable through the recursive
        # rule — the paper's cyclic-provenance situation.
        from repro.data import ACQUAINTANCE
        recorder = RecordingRecorder()
        Engine(parse_program(ACQUAINTANCE), recorder=recorder).run()
        heads = [head for _, head, _ in recorder.firings]
        assert 'know("Ben","Steve")' in heads

    def test_multiple_derivations_same_tuple_all_recorded(self):
        recorder = RecordingRecorder()
        Engine(parse_program("""
            p(1). q(1).
            r1 1.0: d(X) :- p(X).
            r2 1.0: d(X) :- q(X).
        """), recorder=recorder).run()
        derivations = [f for f in recorder.firings if f[1] == "d(1)"]
        assert {f[0] for f in derivations} == {"r1", "r2"}

    def test_facts_recorded(self):
        recorder = RecordingRecorder()
        Engine(parse_program("t1 0.5: p(1)."), recorder=recorder).run()
        assert len(recorder.facts) == 1
        assert recorder.facts[0].probability == 0.5

    def test_firing_count_matches_recorder(self):
        recorder = RecordingRecorder()
        result = Engine(parse_program(TC), recorder=recorder).run()
        assert result.firing_count == len(recorder.firings)

    def test_semi_naive_matches_naive_firings(self):
        # Ground truth: enumerate firings naively on the final database.
        program = parse_program(TC)
        recorder = RecordingRecorder()
        result = Engine(program, recorder=recorder).run()
        paths = derived(result, "path")
        edges = derived(result, "edge")
        expected = set()
        import re
        pairs = {tuple(map(int, re.findall(r"\d+", e))) for e in edges}
        path_pairs = {tuple(map(int, re.findall(r"\d+", p))) for p in paths}
        for (x, y) in pairs:
            expected.add(("r1", "path(%d,%d)" % (x, y),
                          ("edge(%d,%d)" % (x, y),)))
        for (x, y) in pairs:
            for (a, z) in path_pairs:
                if a == y:
                    expected.add(("r2", "path(%d,%d)" % (x, z),
                                  ("edge(%d,%d)" % (x, y),
                                   "path(%d,%d)" % (y, z))))
        assert set(recorder.firings) == expected


class TestCaptureTables:
    def test_capture_tables_present_by_default(self):
        result = evaluate(parse_program(TC))
        assert result.database.count(PROV_RELATION) > 0
        assert result.database.count(RULE_RELATION) > 0

    def test_capture_tables_disabled(self):
        result = evaluate(parse_program(TC), capture_tables=False)
        assert result.database.count(PROV_RELATION) == 0
        assert result.database.count(RULE_RELATION) == 0

    def test_one_prov_row_per_firing(self):
        result = evaluate(parse_program(TC))
        assert result.database.count(PROV_RELATION) == result.firing_count

    def test_derived_count_excludes_capture_rows(self):
        result = evaluate(parse_program(TC))
        assert result.derived_count == 6  # the six path tuples


class TestLimits:
    def test_max_rounds(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_program(TC), max_rounds=1)

    def test_max_tuples(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_program(TC), max_tuples=4, capture_tables=False)

    def test_limits_permit_normal_run(self):
        result = evaluate(parse_program(TC), max_rounds=10, max_tuples=1000)
        assert result.rounds <= 10


class TestDeterminism:
    def test_same_result_across_runs(self):
        first = evaluate(parse_program(TC))
        second = evaluate(parse_program(TC))
        assert derived(first, "path") == derived(second, "path")
        assert first.firing_count == second.firing_count
