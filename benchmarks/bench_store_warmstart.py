"""Store bench — warm-start vs cold evaluation, append overhead.

The durable store earns its keep if reopening a persisted workload is
much cheaper than re-running fixpoint evaluation, and if the per-update
append (the sync after every ``add_facts``) stays noise next to the
incremental evaluation itself.  Both answers land in
``results/store_warmstart.json`` / ``results/store_append.txt``.
"""

import time

from repro import P3, P3Config
from repro.data import generate_network
from repro.store import ProvenanceStore

from reporting import record_json, record_table
from workloads import MAINTENANCE_HOP_LIMIT

SEED = 11


def _workload_source():
    network = generate_network(nodes=400, edges=1200, seed=SEED)
    return str(network.bfs_sample(80, seed=SEED).to_program())


def _config():
    return P3Config(hop_limit=MAINTENANCE_HOP_LIMIT, seed=SEED)


def _cold(source):
    p3 = P3.from_source(source, config=_config())
    p3.evaluate()
    return p3


def test_warmstart_vs_cold(benchmark, tmp_path):
    source = _workload_source()
    store_path = str(tmp_path / "prov.db")

    start = time.perf_counter()
    p3 = _cold(source)
    cold_seconds = time.perf_counter() - start
    # A cheap derived tuple (one firing, base-only body): the equality
    # check validates the restored graph without paying for a dense
    # mutual-trust polynomial.
    firings_per_head = {}
    for execution in p3.graph.executions():
        firings_per_head.setdefault(execution.head, []).append(execution)
    key = sorted(
        head for head, entries in firings_per_head.items()
        if len(entries) == 1
        and all(p3.graph.is_base(body) for body in entries[0].body))[0]
    expected = p3.probability_of(key)

    store = ProvenanceStore(store_path)
    p3.attach_store(store)
    p3.detach_store()
    store.close()

    def warm():
        system = P3.from_store(store_path, attach=False,
                               config=_config())
        assert system.warm_started
        return system

    system = benchmark.pedantic(warm, rounds=5, iterations=1)
    # Same answers, no fixpoint.
    assert system.evaluate().rounds == 0
    assert abs(system.probability_of(key) - expected) < 1e-12

    warm_seconds = benchmark.stats.stats.mean
    record_table(
        "store_warmstart",
        "Store: warm-start vs cold evaluation (%d tuples, %d firings)"
        % (len(p3.graph.tuple_keys()), len(p3.graph.executions())),
        ["path", "seconds"],
        [["cold evaluate", cold_seconds],
         ["warm-start from store", warm_seconds]],
    )
    record_json("store_warmstart", {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "tuples": len(p3.graph.tuple_keys()),
        "firings": len(p3.graph.executions()),
    })


def test_append_overhead(benchmark, tmp_path):
    source = _workload_source()
    updates = ['0.5::trust(%d,%d).' % (9000 + i, 9100 + i)
               for i in range(20)]

    detached = _cold(source)
    start = time.perf_counter()
    for update in updates:
        detached.add_facts(update)
    plain_seconds = time.perf_counter() - start

    def attached_run():
        p3 = _cold(source)
        store = ProvenanceStore(str(
            tmp_path / ("prov-%d.db" % time.monotonic_ns())))
        p3.attach_store(store)
        start = time.perf_counter()
        for update in updates:
            p3.add_facts(update)
        elapsed = time.perf_counter() - start
        epochs = len(store.epochs())
        p3.detach_store()
        store.close()
        assert epochs == 1 + len(updates)
        return elapsed

    attached_seconds = benchmark.pedantic(
        attached_run, rounds=3, iterations=1)
    record_table(
        "store_append",
        "Store: %d live updates, detached vs attached (epoch appends)"
        % len(updates),
        ["configuration", "seconds total"],
        [["detached add_facts", plain_seconds],
         ["attached (sync per update)", attached_seconds]],
    )
