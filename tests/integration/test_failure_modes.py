"""Failure-injection and edge-case integration tests.

Production users hit limits, degenerate inputs, and odd data long before
they hit the happy path.  These tests pin down the behaviour at those
edges: configured budgets fire the right exceptions, degenerate
probabilities stay exact, odd constants round-trip, and deep recursion
stays within Python's limits at realistic scales.
"""

import pytest

from repro import P3, P3Config
from repro.core.errors import UnknownTupleError
from repro.datalog.engine import EvaluationError
from repro.provenance.extraction import ExtractionError


class TestEngineLimits:
    def test_max_tuples_surfaces_through_facade(self):
        source = "\n".join(
            ["edge(%d,%d)." % (i, i + 1) for i in range(20)]
            + ["r1 1.0: path(X,Y) :- edge(X,Y).",
               "r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z)."])
        p3 = P3.from_source(source, P3Config(max_tuples=10,
                                             capture_tables=False))
        with pytest.raises(EvaluationError):
            p3.evaluate()

    def test_max_rounds_surfaces_through_facade(self):
        source = """
            edge(1,2). edge(2,3). edge(3,4).
            r1 1.0: path(X,Y) :- edge(X,Y).
            r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
        """
        p3 = P3.from_source(source, P3Config(max_rounds=1))
        with pytest.raises(EvaluationError):
            p3.evaluate()

    def test_generous_limits_do_not_fire(self):
        p3 = P3.from_source("p(1). r1 1.0: q(X) :- p(X).",
                            P3Config(max_rounds=50, max_tuples=1000))
        p3.evaluate()
        assert p3.holds("q", 1)


class TestExtractionBudget:
    def test_max_monomials_surfaces_through_facade(self):
        lines = []
        for index in range(10):
            lines.append("p%d 0.5: p(%d)." % (index, index))
        lines.append("r1 1.0: d(X) :- p(X).")
        lines.append("r2 1.0: agg(1) :- d(X).")
        p3 = P3.from_source("\n".join(lines), P3Config(max_monomials=3))
        p3.evaluate()
        with pytest.raises(ExtractionError):
            p3.polynomial_of("agg", 1)


class TestDegeneratePrograms:
    def test_empty_program(self):
        p3 = P3.from_source("")
        result = p3.evaluate()
        assert result.derived_count == 0
        assert result.firing_count == 0

    def test_facts_only(self):
        p3 = P3.from_source("t1 0.5: p(1). t2 1.0: q(2).")
        p3.evaluate()
        assert p3.probability_of("p", 1) == 0.5
        assert p3.probability_of("q", 2) == 1.0

    def test_rules_without_matching_facts(self):
        p3 = P3.from_source("r1 1.0: q(X) :- nothing(X). seed(0).")
        p3.evaluate()
        assert not p3.holds("q", 0)
        with pytest.raises(UnknownTupleError):
            p3.polynomial_of("q", 0)

    def test_zero_probability_fact(self):
        p3 = P3.from_source("t1 0.0: p(1). r1 1.0: q(X) :- p(X).")
        p3.evaluate()
        # Derivable in the logical sense, probability zero.
        assert p3.holds("q", 1)
        assert p3.probability_of("q", 1) == 0.0

    def test_all_certain_program(self):
        p3 = P3.from_source("""
            live("a","x"). live("b","x").
            r1 1.0: know(P,Q) :- live(P,C), live(Q,C), P != Q.
        """)
        p3.evaluate()
        assert p3.probability_of("know", "a", "b") == 1.0


class TestOddConstants:
    def test_unicode_constants(self):
        p3 = P3.from_source('t1 0.7: name("café", "北京").')
        p3.evaluate()
        assert p3.probability_of("name", "café", "北京") == 0.7

    def test_constants_with_special_characters(self):
        p3 = P3.from_source('t1 0.5: path("a/b", "c d (e)").')
        p3.evaluate()
        assert p3.holds("path", "a/b", "c d (e)")

    def test_mixed_type_constants(self):
        p3 = P3.from_source('t1 0.5: rec(1, 2.5, "three").')
        p3.evaluate()
        assert p3.probability_of("rec", 1, 2.5, "three") == 0.5

    def test_int_vs_string_distinct(self):
        p3 = P3.from_source('t1 0.5: p(1). t2 0.9: p("1").')
        p3.evaluate()
        assert p3.probability_of("p", 1) == 0.5
        assert p3.probability_of("p", "1") == 0.9


class TestDeepRecursion:
    def test_long_chain_evaluates_and_extracts(self):
        length = 150
        lines = ["edge(%d,%d)." % (i, i + 1) for i in range(length)]
        lines.append("r1 1.0: path(X,Y) :- edge(X,Y).")
        lines.append("r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).")
        p3 = P3.from_source("\n".join(lines))
        p3.evaluate()
        key = "path(0,%d)" % length
        assert p3.holds(key)
        poly = p3.polynomial_of(key)
        assert len(poly) == 1
        assert p3.probability_of(key) == 1.0

    def test_wide_fanout(self):
        lines = ["t%d 0.5: src(%d)." % (i, i) for i in range(100)]
        lines.append("r1 1.0: any(1) :- src(X).")
        p3 = P3.from_source("\n".join(lines))
        p3.evaluate()
        poly = p3.polynomial_of("any", 1)
        assert len(poly) == 100
        # Exact inference still fine: independent union.
        expected = 1.0 - 0.5 ** 100
        assert p3.probability_of("any", 1) == pytest.approx(expected)


class TestQueryRobustness:
    def test_influence_on_certain_polynomial(self, acquaintance):
        report = acquaintance.influence("know", "Ben", "Steve")
        # The tuple is certain (base p=1): nothing can influence it except
        # itself being counterfactual.
        top = report.most_influential
        assert top.influence == pytest.approx(1.0)

    def test_modification_of_certain_tuple_downward(self, acquaintance):
        plan = acquaintance.modify("know", "Ben", "Steve", target=0.4)
        assert plan.reached
        updated = plan.updated_probabilities(acquaintance.probabilities)
        from repro.inference import exact_probability
        poly = acquaintance.polynomial_of("know", "Ben", "Steve")
        assert exact_probability(poly, updated) == pytest.approx(0.4)

    def test_sufficient_provenance_on_single_monomial(self, acquaintance):
        result = acquaintance.sufficient_provenance(
            "live", "Steve", "DC", epsilon=0.5, method="naive")
        assert len(result.sufficient) == 1
