"""Derivation Query (Section 4.2): ε-sufficient provenance.

Given the provenance polynomial λ of a queried tuple and an error limit ε,
return a *sufficient provenance* λˢ — a subset of λ's monomials with
|P[λ] − P[λˢ]| ≤ ε.  Finding the smallest such subset is NP-hard [25], so
the paper implements two heuristics, both reproduced here:

- **naive** (Section 4.2, "performs surprisingly well"): sort monomials by
  their independent-product probability and greedily drop the least likely
  while the error bound keeps holding;
- **match/group** (Ré–Suciu [25], extended to PLP): find a *match* (a set
  of pairwise literal-disjoint monomials, whose probability is computable
  in closed form); if insufficient, factor the polynomial into groups
  sharing a literal and recurse.

Since λˢ's monomials are a subset of λ's and the DNF is monotone,
P[λˢ] ≤ P[λ] always, so the error is one-sided.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from ..inference.exact import exact_probability
from ..provenance.polynomial import (
    Literal,
    Monomial,
    Polynomial,
    ProbabilityMap,
)
from .result import QueryResult, register_result

#: Signature of a probability evaluator used while searching.
Evaluator = Callable[[Polynomial, ProbabilityMap], float]


@register_result
class SufficientProvenance(QueryResult):
    """Result of a Derivation Query."""

    query_type = "derivation"

    def __init__(self, original: Polynomial, sufficient: Polynomial,
                 epsilon: float, error: float, method: str,
                 full_probability: float, sufficient_probability: float) -> None:
        self.original = original
        self.sufficient = sufficient
        self.epsilon = epsilon
        self.error = error
        self.method = method
        self.full_probability = full_probability
        self.sufficient_probability = sufficient_probability

    @property
    def compression_ratio(self) -> float:
        """|λˢ| / |λ| — Figure 11's metric (smaller is better)."""
        if len(self.original) == 0:
            return 1.0
        return len(self.sufficient) / len(self.original)

    @property
    def removed_count(self) -> int:
        return len(self.original) - len(self.sufficient)

    def most_important_derivations(
            self, probabilities: ProbabilityMap, k: int = 1
            ) -> Tuple[Monomial, ...]:
        """The k highest-probability monomials retained in λˢ."""
        ranked = self.sufficient.monomials_by_probability(probabilities)
        return tuple(monomial for monomial, _ in ranked[:k])

    def to_dict(self) -> dict:
        from ..io.serialize import polynomial_to_json
        return {
            "epsilon": self.epsilon,
            "error": self.error,
            "method": self.method,
            "full_probability": self.full_probability,
            "sufficient_probability": self.sufficient_probability,
            "compression_ratio": self.compression_ratio,
            "original": polynomial_to_json(self.original),
            "sufficient": polynomial_to_json(self.sufficient),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SufficientProvenance":
        from ..io.serialize import polynomial_from_json
        return cls(
            polynomial_from_json(payload["original"]),
            polynomial_from_json(payload["sufficient"]),
            payload["epsilon"],
            payload["error"],
            payload["method"],
            payload["full_probability"],
            payload["sufficient_probability"],
        )

    def summary(self) -> str:
        return ("%d -> %d monomials (error %.6f <= eps %.6f, method=%s)"
                % (len(self.original), len(self.sufficient),
                   self.error, self.epsilon, self.method))

    def __repr__(self) -> str:
        return (
            "SufficientProvenance(%d -> %d monomials, error=%.6f <= eps=%.6f,"
            " method=%s)" % (
                len(self.original), len(self.sufficient),
                self.error, self.epsilon, self.method,
            )
        )


def derivation_query(polynomial: Polynomial,
                     probabilities: ProbabilityMap,
                     epsilon: float,
                     method: str = "naive",
                     evaluator: Optional[Evaluator] = None,
                     samples: int = 20000,
                     seed: Optional[int] = 0) -> SufficientProvenance:
    """Run a Derivation Query: compute ε-sufficient provenance.

    ``method`` is ``"naive"``, ``"union-bound"`` (a batch naive variant
    whose ε guarantee comes from the union bound — use it on very large
    polynomials), or ``"match-group"``.  ``evaluator`` computes P[·] during
    the search (defaults to exact inference — swap in a Monte-Carlo lambda
    for very large polynomials).
    """
    rt = telemetry.runtime()
    if not rt.enabled:
        return _derivation_query(
            polynomial, probabilities, epsilon, method, evaluator,
            samples, seed)
    with rt.tracer.span("query.derive", method=method, epsilon=epsilon,
                        monomials=len(polynomial)) as span:
        result = _derivation_query(
            polynomial, probabilities, epsilon, method, evaluator,
            samples, seed)
        span.set_attributes(kept=len(result.sufficient),
                            error=result.error)
    return result


def _derivation_query(polynomial: Polynomial,
                      probabilities: ProbabilityMap,
                      epsilon: float,
                      method: str,
                      evaluator: Optional[Evaluator],
                      samples: int,
                      seed: Optional[int]) -> SufficientProvenance:
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if evaluator is None:
        if method == "naive-mc":
            # Keep reporting consistent with the search: estimate with the
            # same vectorized sampler (fresh, independent samples).
            from ..inference.parallel_mc import parallel_probability

            def evaluator(poly, probs):  # noqa: F811
                return parallel_probability(
                    poly, probs, samples=samples, seed=seed).value
        else:
            evaluator = exact_probability
    full_probability = evaluator(polynomial, probabilities)
    if method == "naive":
        sufficient = _naive_sufficient(
            polynomial, probabilities, epsilon, evaluator, full_probability)
    elif method == "naive-mc":
        sufficient = _naive_mc_sufficient(
            polynomial, probabilities, epsilon, samples, seed)
    elif method == "union-bound":
        sufficient = _union_bound_sufficient(polynomial, probabilities, epsilon)
    elif method == "match-group":
        sufficient = _match_group_sufficient(
            polynomial, probabilities, epsilon, evaluator, full_probability)
    else:
        raise ValueError(
            "Unknown sufficient-provenance method %r (expected 'naive', "
            "'naive-mc', 'union-bound', or 'match-group')" % method)
    sufficient_probability = evaluator(sufficient, probabilities)
    error = abs(full_probability - sufficient_probability)
    return SufficientProvenance(
        polynomial, sufficient, epsilon, error, method,
        full_probability, sufficient_probability,
    )


def _naive_sufficient(polynomial: Polynomial,
                      probabilities: ProbabilityMap,
                      epsilon: float,
                      evaluator: Evaluator,
                      full_probability: float) -> Polynomial:
    """Drop lowest-probability monomials while the ε bound still holds."""
    ranked = polynomial.monomials_by_probability(probabilities, descending=False)
    kept = list(polynomial.monomials)
    for monomial, _score in ranked:
        if len(kept) == 1:
            break
        candidate = [m for m in kept if m != monomial]
        candidate_poly = Polynomial(candidate)
        if full_probability - evaluator(candidate_poly, probabilities) <= epsilon:
            kept = candidate
        else:
            # Monomials are sorted ascending; anything later removes at
            # least as much probability alone, but may still be removable
            # after earlier removals changed nothing. Stopping here matches
            # the paper's "until the error limit is reached".
            break
    return Polynomial(kept)


def _naive_mc_sufficient(polynomial: Polynomial,
                         probabilities: ProbabilityMap,
                         epsilon: float,
                         samples: int,
                         seed: Optional[int]) -> Polynomial:
    """The naive algorithm with incremental Monte-Carlo evaluation.

    This is the configuration the paper's Section 6.2 actually measures:
    "the computation of Derivation Queries heavily relies on Monte-Carlo
    simulation".  One shared sample matrix is drawn; each monomial's
    satisfaction vector is precomputed; the per-sample count of satisfied
    kept monomials is maintained so every tentative removal costs one
    vector subtraction instead of a fresh simulation.  Removal proceeds in
    ascending monomial-probability order and stops at the first monomial
    whose removal would push the (estimated) error beyond ε.
    """
    import numpy as np

    from ..inference.parallel_mc import CompiledPolynomial

    if len(polynomial) <= 1:
        return polynomial
    compiled = CompiledPolynomial(polynomial)
    rng = np.random.default_rng(seed)
    matrix = compiled.sample_matrix(probabilities, samples, rng)

    monomials = [m for m, _ in polynomial.monomials_by_probability(
        probabilities, descending=False)]
    # One packed-bitset pass computes every monomial's satisfaction
    # vector in the kernel's canonical column order; reindex the columns
    # into this function's ascending-probability removal order.
    canonical = compiled.satisfaction_matrix(matrix)
    order = np.fromiter((compiled.monomial_column(m) for m in monomials),
                        dtype=np.intp, count=len(monomials))
    satisfaction = canonical[:, order]

    counts = satisfaction.sum(axis=1).astype(np.int32)
    full_hits = int((counts > 0).sum())
    removed = []
    for column, monomial in enumerate(monomials):
        if len(monomials) - len(removed) == 1:
            break
        tentative = counts - satisfaction[:, column]
        error = (full_hits - int((tentative > 0).sum())) / samples
        if error <= epsilon:
            counts = tentative
            removed.append(monomial)
        else:
            break
    return polynomial.without_monomials(removed)


def _union_bound_sufficient(polynomial: Polynomial,
                            probabilities: ProbabilityMap,
                            epsilon: float) -> Polynomial:
    """Batch variant of the naive algorithm for large polynomials.

    Dropping a set D of monomials from a monotone DNF reduces the success
    probability by at most Σ_{m∈D} P[m] (union bound), so removing
    lowest-probability monomials while that running sum stays ≤ ε is
    guaranteed ε-sufficient *without re-evaluating P per removal* — one
    sort instead of |λ| probability computations.  More conservative than
    the naive method (it may keep more monomials), but exact in guarantee
    and fast enough for thousand-monomial provenance.
    """
    ranked = polynomial.monomials_by_probability(probabilities, descending=False)
    dropped = []
    budget = epsilon
    for monomial, score in ranked:
        if len(polynomial) - len(dropped) == 1:
            break
        if score <= budget:
            dropped.append(monomial)
            budget -= score
        else:
            break
    return polynomial.without_monomials(dropped)


def find_match(polynomial: Polynomial,
               probabilities: ProbabilityMap) -> Polynomial:
    """Greedy *match*: pairwise literal-disjoint monomials, best-first.

    Monomials in a match are independent, so
    P[match] = 1 − Π (1 − P[mᵢ]) in closed form (Step 1 of Ré–Suciu).
    """
    ranked = polynomial.monomials_by_probability(probabilities)
    used: Set[Literal] = set()
    chosen: List[Monomial] = []
    for monomial, _score in ranked:
        if used.isdisjoint(monomial.literals):
            chosen.append(monomial)
            used.update(monomial.literals)
    return Polynomial(chosen)


def match_probability(match: Polynomial,
                      probabilities: ProbabilityMap) -> float:
    """Closed-form probability of a match (independent monomials)."""
    miss = 1.0
    for monomial in match.monomials:
        miss *= 1.0 - monomial.probability(probabilities)
    return 1.0 - miss


def _most_frequent_literal(monomials: Sequence[Monomial]) -> Literal:
    counts: dict = {}
    for monomial in monomials:
        for literal in monomial.literals:
            counts[literal] = counts.get(literal, 0) + 1
    return max(counts, key=lambda lit: (counts[lit], str(lit)))


def _match_group_sufficient(polynomial: Polynomial,
                            probabilities: ProbabilityMap,
                            epsilon: float,
                            evaluator: Evaluator,
                            full_probability: float) -> Polynomial:
    """Ré–Suciu match/group recursion, with a top-up safety net.

    The recursion follows the paper's four steps.  Because the original
    algorithm's guarantees depend on the match and group choices ("in some
    cases it provides little reduction"), we finish with a verification
    pass that adds back highest-probability dropped monomials until the ε
    bound verifiably holds.
    """
    result = _match_group_recurse(polynomial, probabilities, epsilon, depth=0)
    # Safety net: enforce the bound exactly.
    dropped = [m for m in polynomial.monomials if m not in result.monomials]
    dropped.sort(key=lambda m: -m.probability(probabilities))
    kept = list(result.monomials)
    while dropped:
        current = evaluator(Polynomial(kept), probabilities)
        if full_probability - current <= epsilon:
            break
        kept.append(dropped.pop(0))
    return Polynomial(kept)


_MAX_RECURSION_DEPTH = 40


def _match_group_recurse(polynomial: Polynomial,
                         probabilities: ProbabilityMap,
                         epsilon: float,
                         depth: int) -> Polynomial:
    if len(polynomial) <= 1 or depth > _MAX_RECURSION_DEPTH:
        return polynomial

    # Step 1: find an arbitrary (greedy, best-first) match.
    match = find_match(polynomial, probabilities)

    # Step 2: accept the match when it is already an ε-approximation.
    # P[λ] ≤ union bound; P[match] is exact. Compare against the cheap
    # union bound to avoid exact inference inside the recursion.
    union = sum(m.probability(probabilities) for m in polynomial.monomials)
    union = min(1.0, union)
    if union - match_probability(match, probabilities) <= epsilon:
        return match

    # Step 3: partition the non-match monomials into groups sharing a
    # literal; each group factors as l·(m₁ + ... + m_k).
    remaining = [m for m in polynomial.monomials if m not in match.monomials]
    groups: List[Tuple[Literal, List[Monomial]]] = []
    pending = list(remaining)
    while pending:
        literal = _most_frequent_literal(pending)
        group = [m for m in pending if m.contains(literal)]
        pending = [m for m in pending if not m.contains(literal)]
        groups.append((literal, group))

    # Step 4: recurse on each group's inner (k−1 literal) polynomial with a
    # proportional share of the budget.
    result = match
    budget = epsilon / max(1, len(groups))
    for literal, group in groups:
        inner = Polynomial(m.without(literal) for m in group)
        inner_sufficient = _match_group_recurse(
            inner, probabilities, budget, depth + 1)
        result = result + inner_sufficient.times_literal(literal)
    return result
