"""Command-line interface: ``p3`` (or ``python -m repro``).

Subcommands
-----------
run        Evaluate a program file and print derived tuples.
query      Batched probability queries through the shared executor.
update     Apply a live update (new base facts) and re-answer queries.
explain    Explanation Query for one tuple.
derive     Derivation Query (ε-sufficient provenance).
influence  Influence Query (top-K literals).
modify     Modification Query (reach a target probability).
audit      Differential audit of every inference backend and query path.
chaos      Chaos harness: inject backend faults, assert every query
           still yields a well-formed answer through the resilience layer.
           ``--service`` drives the HTTP service end-to-end instead.
serve      Long-lived multi-tenant HTTP/JSON service over the executor.
trace      Traced explanation query; prints the telemetry span tree.
generate   Emit a synthetic trust-network program to stdout.
export     Save the evaluated session (program + graph + epoch) as JSON.
snapshot   Append the evaluated provenance graph to a durable store file.
record     Capture a query session (queries, epochs, envelopes) in a store.
replay     Re-run a recorded session from the store; assert byte-identical
           envelopes.

``query``, ``export``, ``snapshot``, ``record``, and ``serve`` can start
from persisted provenance instead of a program file: ``--from-session
FILE`` loads a saved session JSON, ``--from-store FILE`` warm-starts
from a durable store (no fixpoint re-evaluation; see docs/STORE.md).

Tuples are addressed by their canonical key, e.g.::

    p3 explain program.pl 'know("Ben","Elena")'

Every querying subcommand accepts ``--stats`` (per-stage wall-clock
timings, counters, and cache hit rates on stderr) and, where a structured
answer exists, ``--json`` (the unified QueryResult envelope on stdout).
Telemetry flags are global: ``--trace-out FILE`` streams spans as JSONL,
``--metrics-out FILE`` writes Prometheus-text metrics on exit,
``--chrome-out FILE`` writes a Chrome ``trace_event`` file, and
``--slow-query SECONDS`` logs slow queries to stderr.

``--resilient`` answers probabilities through the default backend
fallback ladder (retries, circuit breakers) instead of a single backend.

Failures exit nonzero.  With ``--json``, a failed command prints the
structured error envelope (:func:`repro.io.serialize.error_to_json`) on
stdout — scripted callers always get parseable output — while the
human-readable message still goes to stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .core.config import P3Config
from .core.system import P3
from .data.bitcoin_otc import generate_network
from .exec.stats import ExecutorStats


def _build_system(args: argparse.Namespace) -> P3:
    """Build the system from a program file, a saved session, or a
    durable store, timing each stage into the shared executor's stats
    object so ``--stats`` covers the whole pipeline.

    A program file is parsed and evaluated; ``--from-session`` and
    ``--from-store`` warm-start instead (no fixpoint evaluation), with
    the persisted epoch restored into the executor's epoch-tagged
    caches.
    """
    from .inference.registry import is_deterministic
    resilience = None
    if getattr(args, "resilient", False):
        from .resilience import ResilienceConfig
        resilience = ResilienceConfig()
    config = P3Config(
        probability_method=args.method,
        influence_method=("exact" if is_deterministic(args.method)
                          else "parallel"),
        samples=args.samples,
        seed=args.seed,
        hop_limit=args.hop_limit,
        grounding=getattr(args, "grounding", "full") or "full",
        query_timeout=getattr(args, "timeout", None),
        resilience=resilience,
    )
    stats = ExecutorStats()
    program = getattr(args, "program", None)
    from_session = getattr(args, "from_session", None)
    from_store = getattr(args, "from_store", None)
    given = [name for name, value in (("a program file", program),
                                      ("--from-session", from_session),
                                      ("--from-store", from_store)) if value]
    if len(given) != 1:
        raise ValueError(
            "exactly one program source is required — a program file, "
            "--from-session, or --from-store (got: %s)"
            % (", ".join(given) or "none"))
    if from_session is not None:
        with stats.time_stage("load"):
            p3 = P3.from_session(from_session, config=config)
    elif from_store is not None:
        with stats.time_stage("load"):
            p3 = P3.from_store(from_store, config=config, attach=False)
    else:
        with stats.time_stage("parse"):
            p3 = P3.from_file(program, config=config)
        with stats.time_stage("evaluate"):
            p3.evaluate()
    overrides = {"stats": stats}
    workers = getattr(args, "workers", None)
    if workers is not None:
        overrides["max_workers"] = workers
    p3.configure_executor(**overrides)
    return p3


def _add_loading(parser: argparse.ArgumentParser) -> None:
    """``--from-session`` / ``--from-store`` warm-start flags."""
    parser.add_argument("--from-session", metavar="FILE", default=None,
                        help="warm-start from a session file written by "
                        "'p3 export' instead of evaluating a program")
    parser.add_argument("--from-store", metavar="FILE", default=None,
                        help="warm-start from a durable provenance store "
                        "(see 'p3 snapshot') instead of evaluating")


def _reclaim_program_positional(args: argparse.Namespace) -> None:
    """With ``--from-session``/``--from-store``, the optional program
    positional actually holds the first tuple key — rebind it."""
    if ((getattr(args, "from_session", None)
         or getattr(args, "from_store", None))
            and getattr(args, "program", None) is not None):
        args.tuples = [args.program] + list(args.tuples)
        args.program = None


def _emit_stats(p3: P3, args: argparse.Namespace) -> None:
    """Print executor statistics as JSON on stderr when --stats was given."""
    if getattr(args, "stats", False):
        json.dump(p3.executor().stats(), sys.stderr, indent=2,
                  sort_keys=True)
        sys.stderr.write("\n")


def _emit_result(result, args: argparse.Namespace) -> bool:
    """Print the unified QueryResult JSON envelope when --json was given."""
    if getattr(args, "json", False):
        from .io.serialize import dump_query_result
        print(dump_query_result(result))
        return True
    return False


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by every subcommand that does real work."""
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="stream every telemetry span to this JSONL "
                        "file (enables tracing)")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write metrics in Prometheus text format to "
                        "this file on exit (enables telemetry)")
    parser.add_argument("--chrome-out", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON file on "
                        "exit (open in chrome://tracing or Perfetto)")
    parser.add_argument("--slow-query", metavar="SECONDS", type=float,
                        default=None,
                        help="log queries slower than this many seconds "
                        "to stderr")


def _configure_telemetry(args: argparse.Namespace) -> None:
    """Install the telemetry runtime when any telemetry flag was given."""
    from . import telemetry
    wants = (getattr(args, "trace_out", None),
             getattr(args, "metrics_out", None),
             getattr(args, "chrome_out", None),
             getattr(args, "slow_query", None))
    if getattr(args, "command", None) == "trace" or any(
            value is not None for value in wants):
        telemetry.configure(telemetry.TelemetryConfig(
            trace_path=wants[0],
            metrics_path=wants[1],
            chrome_path=wants[2],
            slow_query_seconds=wants[3],
        ))


def _finish_telemetry() -> None:
    """Flush sinks, report slow queries, and restore the no-op runtime."""
    from . import telemetry
    rt = telemetry.runtime()
    if not rt.enabled:
        return
    if rt.slow_log is not None:
        for span in rt.slow_log.entries():
            print("p3: slow query: %s took %.3fs (threshold %.3fs) %s"
                  % (span.name, span.duration_seconds,
                     rt.slow_log.threshold_seconds, span.attributes),
                  file=sys.stderr)
    telemetry.disable()


def _add_common(parser: argparse.ArgumentParser,
                optional_program: bool = False) -> None:
    from .inference import METHODS
    if optional_program:
        parser.add_argument("program", nargs="?", default=None,
                            help="path to a ProbLog program file (omit "
                            "with --from-session/--from-store)")
    else:
        parser.add_argument("program", help="path to a ProbLog program file")
    parser.add_argument("--method", default="exact",
                        choices=METHODS,
                        help="probability backend (default: exact)")
    parser.add_argument("--samples", type=int, default=10000,
                        help="Monte-Carlo sample budget (default: 10000)")
    parser.add_argument("--seed", type=int, default=None,
                        help="random seed for estimation backends")
    parser.add_argument("--hop-limit", type=int, default=None,
                        help="bound derivation depth during extraction")
    parser.add_argument("--grounding", default="full",
                        choices=("full", "query", "auto"),
                        help="evaluation strategy: 'full' materializes "
                        "the whole least model up front, 'query' grounds "
                        "each queried goal on demand (magic sets), 'auto' "
                        "picks per program size (default: full)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-query deadline in seconds; a query "
                        "exceeding it reports a TimeoutError instead of "
                        "stalling the batch")
    parser.add_argument("--stats", action="store_true",
                        help="print executor statistics (stage timings, "
                        "cache hit rates) to stderr")
    parser.add_argument("--resilient", action="store_true",
                        help="answer probabilities through the default "
                        "backend fallback ladder (retries, circuit "
                        "breakers) instead of the single --method backend")
    _add_telemetry(parser)


def _cmd_run(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    relations = ([args.relation] if args.relation
                 else sorted(r for r in p3.database.relations()
                             if not r.endswith("_")))
    for relation in relations:
        for atom in sorted(map(str, p3.derived_atoms(relation))):
            if args.probabilities:
                print("%-50s %.6f" % (atom, p3.probability_of(atom)))
            else:
                print(atom)
    _emit_stats(p3, args)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .exec.specs import QuerySpec
    _reclaim_program_positional(args)
    p3 = _build_system(args)
    if args.tuples:
        specs = [QuerySpec.probability(key) for key in args.tuples]
        batch = p3.executor().run(specs)
        results = {}
        for outcome in batch:
            if outcome.error is not None:
                print("p3: query %s failed: %s"
                      % (outcome.spec.key, outcome.error), file=sys.stderr)
            results[outcome.spec.key] = outcome.value
        failed = not batch.ok
    else:
        results = p3.answer_queries()
        failed = False
        if not results:
            print("p3: program has no query(...) directives; pass tuple "
                  "keys explicitly", file=sys.stderr)
            _emit_stats(p3, args)
            return 2
    if args.json:
        document = {
            "version": 1,
            "kind": "query_batch",
            "results": {
                key: results[key] for key in sorted(results)
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for key in sorted(results):
            value = results[key]
            rendered = "%.6f" % value if value is not None else "ERROR"
            print("%-50s %s" % (key, rendered))
    _emit_stats(p3, args)
    return 1 if failed else 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .exec.specs import QuerySpec
    p3 = _build_system(args)
    with open(args.updates, encoding="utf-8") as handle:
        source = handle.read()
    delta = p3.add_facts(source)
    results = {}
    if args.tuples:
        batch = p3.executor().run(
            [QuerySpec.probability(key) for key in args.tuples])
        for outcome in batch:
            if outcome.error is not None:
                print("p3: query %s failed: %s"
                      % (outcome.spec.key, outcome.error), file=sys.stderr)
            results[outcome.spec.key] = outcome.value
    elif p3.program.queries:
        results = p3.answer_queries()
    if args.json:
        from .io.serialize import update_to_json
        print(json.dumps(update_to_json(delta, p3.epoch, results),
                         indent=2, sort_keys=True))
    else:
        print("update applied: %d rounds, %d new firings, %d derived "
              "tuples, %.3fs (epoch %d)"
              % (delta.rounds, delta.firing_count, delta.derived_count,
                 delta.elapsed_seconds, p3.epoch))
        for key in sorted(results):
            value = results[key]
            rendered = "%.6f" % value if value is not None else "ERROR"
            print("%-50s %s" % (key, rendered))
    _emit_stats(p3, args)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    explanation = p3.explain(args.tuple)
    if not _emit_result(explanation, args):
        if args.dot:
            print(explanation.to_dot())
        else:
            print(explanation.to_text())
    _emit_stats(p3, args)
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    result = p3.sufficient_provenance(
        args.tuple, epsilon=args.epsilon, method=args.algorithm)
    if not _emit_result(result, args):
        print("full probability:        %.6f" % result.full_probability)
        print("sufficient probability:  %.6f (error %.6f <= eps %.6f)"
              % (result.sufficient_probability, result.error, result.epsilon))
        print("monomials: %d -> %d (compression ratio %.1f%%)"
              % (len(result.original), len(result.sufficient),
                 100 * result.compression_ratio))
        print("sufficient provenance: %s" % result.sufficient)
    _emit_stats(p3, args)
    return 0


def _cmd_influence(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    report = p3.influence(args.tuple, kind=args.kind, relation=args.relation)
    if args.json:
        from .queries.influence import InfluenceReport
        trimmed = InfluenceReport(report.top(args.top), report.method)
        _emit_result(trimmed, args)
    else:
        for score in report.top(args.top):
            print("%-50s %.6f" % (score.literal, score.influence))
    _emit_stats(p3, args)
    return 0


def _cmd_modify(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    plan = p3.modify(
        args.tuple, target=args.target, strategy=args.strategy,
        only_tuples=args.only_tuples, only_rules=args.only_rules)
    if not _emit_result(plan, args):
        print(plan.to_text())
    _emit_stats(p3, args)
    return 0 if plan.reached else 1


def _cmd_topk(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    derivations = p3.top_derivations(args.tuple, k=args.k)
    for rank, (monomial, probability) in enumerate(derivations, start=1):
        print("#%d  p=%.6f  %s" % (rank, probability, monomial))
    if not derivations:
        print("no derivations found")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import telemetry
    rt = telemetry.runtime()
    p3 = _build_system(args)
    explanation = p3.explain(args.tuple)
    spans = rt.ring.spans() if rt.ring is not None else []
    if args.json:
        from .io.serialize import trace_to_json
        print(json.dumps(trace_to_json(spans, rt.tracer.anchor_ns),
                         indent=2, sort_keys=True))
    else:
        from .telemetry import render_span_tree
        print("trace of explain(%s): P=%.6f, %d spans"
              % (args.tuple, explanation.probability, len(spans)))
        print(render_span_tree(spans))
    _emit_stats(p3, args)
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    report = p3.what_if(deleted=args.delete, targets=[args.tuple])
    print(report.to_text())
    return 0


def _cmd_whynot(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    print(p3.why_not(args.tuple).to_text())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .provenance.stats import summarize
    p3 = _build_system(args)
    polynomial = None
    probabilities = None
    if args.tuple:
        polynomial = p3.polynomial_of(args.tuple)
        probabilities = p3.probabilities
    print(summarize(p3.graph, polynomial, probabilities))
    return 0


def _cmd_goal(args: argparse.Namespace) -> int:
    from .core.goal import goal_directed_query
    from .datalog.parser import parse_file

    config = P3Config(
        probability_method=args.method,
        samples=args.samples, seed=args.seed, hop_limit=args.hop_limit)
    program = parse_file(args.program)
    from .datalog.parser import parse_atom
    pattern = parse_atom(args.pattern)
    result = goal_directed_query(
        program, pattern.relation, pattern=pattern, config=config)
    print("goal-directed evaluation: %d rule firings" % result.firing_count)
    for key in result.answers():
        print("%-50s %.6f" % (key, result.probability_of(key)))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    p3 = _build_system(args)
    from .io.serialize import save_session
    save_session(p3.program, p3.graph, args.output, epoch=p3.epoch)
    print("session written to %s (epoch %d)" % (args.output, p3.epoch))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Evaluate (or load) a system and snapshot it into a durable store."""
    from .store import ProvenanceStore
    p3 = _build_system(args)
    store = ProvenanceStore(args.store)
    try:
        p3.attach_store(store)
        epochs = store.epochs()
    finally:
        p3.detach_store()
        store.close()
    if getattr(args, "json", False):
        from .io.serialize import FORMAT_VERSION
        print(json.dumps({
            "version": FORMAT_VERSION,
            "kind": "snapshot",
            "store": args.store,
            "epoch": p3.epoch,
            "epochs": epochs,
        }, indent=2, sort_keys=True))
    else:
        print("snapshot written to %s (epoch %d, %d committed epoch(s))"
              % (args.store, p3.epoch, len(epochs)))
    _emit_stats(p3, args)
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    """Capture a replayable query session into the store."""
    from .exec.specs import QuerySpec
    from .store import ProvenanceStore, record_session
    _reclaim_program_positional(args)
    p3 = _build_system(args)
    keys = args.tuples or p3.registered_queries()
    if not keys:
        print("p3: nothing to record: pass tuple keys or use a program "
              "with query(...) directives", file=sys.stderr)
        return 2
    specs = [QuerySpec.probability(key) for key in keys]
    updates = []
    for path in args.update:
        with open(path, encoding="utf-8") as handle:
            updates.append(handle.read())
    store = ProvenanceStore(args.store)
    try:
        recording = record_session(
            p3, store, args.name, specs, updates=updates)
        epochs = store.epochs()
    finally:
        store.close()
    if getattr(args, "json", False):
        from .io.serialize import FORMAT_VERSION
        print(json.dumps({
            "version": FORMAT_VERSION,
            "kind": "recording",
            "store": args.store,
            "name": recording.name,
            "queries": len(recording.queries),
            "epochs": epochs,
        }, indent=2, sort_keys=True))
    else:
        print("recorded '%s': %d queries across %d epoch(s) into %s"
              % (recording.name, len(recording.queries), len(epochs),
                 args.store))
    _emit_stats(p3, args)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay a recorded session from the store; fail on any divergence."""
    from .store import ProvenanceStore, replay_recording
    store = ProvenanceStore(args.store, create=False)
    try:
        report = replay_recording(store, args.name)
    finally:
        store.close()
    if getattr(args, "json", False):
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for mismatch in report.mismatches:
            print("  seq %d (epoch %d, %s %s): envelopes differ"
                  % (mismatch.seq, mismatch.epoch, mismatch.kind,
                     mismatch.key))
    return 0 if report.ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from .audit import run_audit, run_replay
    from .io.serialize import audit_report_to_json
    if args.replay:
        report = run_replay(args.replay,
                            prefer_shrunk=not args.replay_original)
    else:
        report = run_audit(
            cases=args.cases,
            seed=args.seed,
            backends=args.backends,
            samples=args.samples,
            repeats=args.repeats,
            z=args.z,
            include_corpus=not args.no_corpus,
            include_programs=not args.no_programs,
            shrink=not args.no_shrink,
            fail_fast=args.fail_fast,
            replay_dir=args.replay_dir,
        )
    if args.json:
        print(json.dumps(audit_report_to_json(report), indent=2,
                         sort_keys=True))
    else:
        print(report.summary())
        for failure in report.failures:
            for disagreement in failure.verdict.disagreements:
                print("  %s" % (disagreement,))
            if failure.shrunk is not None:
                print("  shrunk to %d monomial(s) / %d literal(s)"
                      % (len(failure.shrunk.polynomial),
                         len(failure.shrunk.polynomial.literals())))
        if not report.ok and args.replay_dir:
            print("replay files written to %s" % args.replay_dir)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from . import telemetry
    from .serve import AdmissionController, ProvenanceService, TenantRegistry
    from .serve.tenants import default_tenant_config

    # The service enables telemetry by default: a /metrics endpoint that
    # serves nothing is worse than none.  --no-telemetry opts out.
    if not telemetry.runtime().enabled and not args.no_telemetry:
        telemetry.configure(telemetry.TelemetryConfig())

    base_config = None
    if args.isolation is not None:
        base_config = default_tenant_config().replace(
            isolation=args.isolation)
    registry = TenantRegistry(base_config=base_config,
                              max_tenants=args.max_tenants)
    default_sources = [value for value in
                       (args.program, args.from_session, args.from_store)
                       if value is not None]
    if len(default_sources) > 1:
        raise ValueError(
            "Give the default tenant exactly one source: a program "
            "file, --from-session, or --from-store")
    if args.persist and args.from_store is None:
        raise ValueError("--persist requires --from-store")
    if args.program is not None:
        registry.create("default", path=args.program)
    elif args.from_session is not None:
        registry.create("default", session=args.from_session)
    elif args.from_store is not None:
        registry.create("default", store=args.from_store,
                        persist=args.persist)
    for spec in args.tenant:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ValueError(
                "--tenant expects NAME=PROGRAM_FILE, got %r" % spec)
        registry.create(name, path=path)
    admission = AdmissionController(
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        max_tenant_inflight=args.max_tenant_inflight)
    service = ProvenanceService(
        registry, admission,
        degraded_abandoned_threshold=(args.degraded_threshold or None))

    async def _serve() -> int:
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        handled_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
                handled_signals.append(signum)
            except (NotImplementedError, RuntimeError, OSError):
                pass  # non-POSIX loop; the KeyboardInterrupt path below
        await service.start(args.host, args.port)
        print("p3 serve: listening on http://%s:%d, tenants: %s"
              % (args.host, service.port,
                 ", ".join(registry.names()) or "(none)"),
              file=sys.stderr)
        server_task = asyncio.ensure_future(service.serve_forever())
        waiter = asyncio.ensure_future(shutdown.wait())
        done, _pending = await asyncio.wait(
            {server_task, waiter}, return_when=asyncio.FIRST_COMPLETED)
        for signum in handled_signals:
            loop.remove_signal_handler(signum)
        if server_task in done and waiter not in done:
            # The server itself died; surface its exception.
            waiter.cancel()
            await server_task
            return 0
        # Graceful lifecycle: close admission (503 + Retry-After for
        # new work), let in-flight requests finish under the drain
        # budget, then tear the front-end down.  The listening socket
        # stays open throughout, so clients never see a reset.
        print("p3 serve: signal received, draining (timeout %.1fs)"
              % args.drain_timeout, file=sys.stderr)
        service.begin_drain()
        clean = await service.drain(args.drain_timeout)
        server_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await server_task
        await service.stop()
        if clean:
            print("p3 serve: drained cleanly", file=sys.stderr)
            return 0
        snapshot = admission.snapshot()
        print("p3 serve: drain timed out with %d in flight, %d queued; "
              "forcing shutdown"
              % (snapshot["inflight"], snapshot["queued"]), file=sys.stderr)
        # Wedged worker threads cannot be joined (that is what process
        # isolation exists for), so sync the durable side and hard-exit
        # with the distinct force-shutdown code.
        registry.sync_stores()
        print("p3 serve: stores synced; forced exit", file=sys.stderr)
        sys.stderr.flush()
        os._exit(3)

    try:
        code = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("p3 serve: shutting down", file=sys.stderr)
        code = 0
    finally:
        # Closing the registry syncs and detaches every store-attached
        # tenant, so a restart from the same store resumes losslessly.
        registry.close()
        print("p3 serve: tenants closed, stores synced", file=sys.stderr)
    return code


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .io.serialize import chaos_report_to_json
    from .resilience.chaos import (
        run_chaos, run_process_chaos, run_service_chaos)
    if args.process:
        report = run_process_chaos(
            seed=args.seed,
            rounds=args.rounds,
            people=args.people,
            samples=args.samples,
            workers=args.workers,
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
            if report.unhandled:
                print("  unhandled exception: %s" % report.unhandled)
            for entry in report.malformed:
                print("  malformed exchange: %s" % entry)
        return 0 if report.ok else 1
    if args.service:
        report = run_service_chaos(
            seed=args.seed,
            request_count=args.requests,
            people=args.people,
            samples=args.samples,
            pool_hang_seconds=args.pool_hang,
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
            if report.unhandled:
                print("  unhandled exception: %s" % report.unhandled)
            for entry in report.malformed:
                print("  malformed exchange: %s" % entry)
        return 0 if report.ok else 1
    report = run_chaos(
        seed=args.seed,
        spec_count=args.specs,
        people=args.people,
        samples=args.samples,
        max_workers=args.workers,
        pool_hang_seconds=args.pool_hang,
        include_outcomes=args.outcomes,
    )
    if args.json:
        print(json.dumps(chaos_report_to_json(report), indent=2,
                         sort_keys=True))
    else:
        print(report.summary())
        if report.unhandled:
            print("  unhandled exception: %s" % report.unhandled)
        for failure in report.accuracy_failures:
            print("  accuracy failure: %s = %.6f vs reference %.6f "
                  "(tolerance %.2e, answered by %s)"
                  % (failure["key"], failure["value"], failure["reference"],
                     failure["tolerance"], failure["answered_by"]))
        for name, count in sorted(report.pool_events.items()):
            print("  pool event: %s x%d" % (name, count))
    return 0 if report.ok else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    network = generate_network(
        nodes=args.nodes, edges=args.edges, seed=args.seed)
    if args.sample:
        network = network.bfs_sample(args.sample, seed=args.seed)
    print("%% synthetic Bitcoin-OTC-like trust network: "
          "%d nodes, %d edges" % (network.node_count, network.edge_count))
    print(str(network.to_program()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="p3",
        description="P3: provenance queries over probabilistic logic programs",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="evaluate a program and print derived tuples")
    _add_common(run_parser)
    run_parser.add_argument("--relation", help="print only this relation")
    run_parser.add_argument("--probabilities", action="store_true",
                            help="also print success probabilities")
    run_parser.set_defaults(func=_cmd_run)

    query_parser = subparsers.add_parser(
        "query", help="batched probability queries through the executor")
    _add_common(query_parser, optional_program=True)
    _add_loading(query_parser)
    query_parser.add_argument(
        "tuples", nargs="*",
        help="tuple keys to query; when omitted, answer the program's "
        "query(...) directives")
    query_parser.add_argument("--workers", type=int, default=None,
                              help="executor thread-pool width")
    query_parser.add_argument("--json", action="store_true",
                              help="emit a JSON document of results")
    query_parser.set_defaults(func=_cmd_query)

    update_parser = subparsers.add_parser(
        "update", help="apply a live update (new base facts) and "
        "re-answer queries incrementally")
    _add_common(update_parser)
    update_parser.add_argument(
        "updates", help="path to a facts-only program file to insert")
    update_parser.add_argument(
        "tuples", nargs="*",
        help="tuple keys to (re-)query after the update; when omitted, "
        "the program's query(...) directives are answered")
    update_parser.add_argument("--workers", type=int, default=None,
                               help="executor thread-pool width")
    update_parser.add_argument("--json", action="store_true",
                               help="emit a JSON document of the delta "
                               "and results")
    update_parser.set_defaults(func=_cmd_update)

    explain_parser = subparsers.add_parser(
        "explain", help="explanation query for one tuple")
    _add_common(explain_parser)
    explain_parser.add_argument("tuple", help="tuple key, e.g. 'know(\"a\",\"b\")'")
    explain_parser.add_argument("--dot", action="store_true",
                                help="emit Graphviz DOT instead of text")
    explain_parser.add_argument("--json", action="store_true",
                                help="emit the QueryResult JSON envelope")
    explain_parser.set_defaults(func=_cmd_explain)

    derive_parser = subparsers.add_parser(
        "derive", help="derivation query (sufficient provenance)")
    _add_common(derive_parser)
    derive_parser.add_argument("tuple")
    derive_parser.add_argument("--epsilon", type=float, required=True,
                               help="approximation error limit")
    derive_parser.add_argument("--algorithm", default="naive",
                               choices=("naive", "match-group"))
    derive_parser.add_argument("--json", action="store_true",
                               help="emit the QueryResult JSON envelope")
    derive_parser.set_defaults(func=_cmd_derive)

    influence_parser = subparsers.add_parser(
        "influence", help="influence query (top-K literals)")
    _add_common(influence_parser)
    influence_parser.add_argument("tuple")
    influence_parser.add_argument("--top", type=int, default=10)
    influence_parser.add_argument("--kind", choices=("tuple", "rule"))
    influence_parser.add_argument("--relation",
                                  help="restrict to one base relation")
    influence_parser.add_argument("--json", action="store_true",
                                  help="emit the QueryResult JSON envelope")
    influence_parser.set_defaults(func=_cmd_influence)

    modify_parser = subparsers.add_parser(
        "modify", help="modification query (reach a target probability)")
    _add_common(modify_parser)
    modify_parser.add_argument("tuple")
    modify_parser.add_argument("--target", type=float, required=True)
    modify_parser.add_argument("--strategy", default="greedy",
                               choices=("greedy", "random"))
    modify_parser.add_argument("--only-tuples", action="store_true",
                               help="modify base tuples only")
    modify_parser.add_argument("--only-rules", action="store_true",
                               help="modify rule weights only")
    modify_parser.add_argument("--json", action="store_true",
                               help="emit the QueryResult JSON envelope")
    modify_parser.set_defaults(func=_cmd_modify)

    trace_parser = subparsers.add_parser(
        "trace", help="run a traced explanation query and print the "
        "span tree (telemetry is forced on)")
    _add_common(trace_parser)
    trace_parser.add_argument("tuple", help="tuple key to trace")
    trace_parser.add_argument("--json", action="store_true",
                              help="emit the trace JSON envelope instead "
                              "of the text tree")
    trace_parser.set_defaults(func=_cmd_trace)

    topk_parser = subparsers.add_parser(
        "topk", help="top-K most probable derivations of a tuple")
    _add_common(topk_parser)
    topk_parser.add_argument("tuple")
    topk_parser.add_argument("--k", type=int, default=3)
    topk_parser.set_defaults(func=_cmd_topk)

    whatif_parser = subparsers.add_parser(
        "whatif", help="deletion scenario: what happens without these "
        "tuples/rules?")
    _add_common(whatif_parser)
    whatif_parser.add_argument("tuple", help="target tuple to report on")
    whatif_parser.add_argument("--delete", action="append", required=True,
                               help="tuple key or rule label to delete "
                               "(repeatable)")
    whatif_parser.set_defaults(func=_cmd_whatif)

    whynot_parser = subparsers.add_parser(
        "whynot", help="explain why a tuple was NOT derived")
    _add_common(whynot_parser)
    whynot_parser.add_argument("tuple", help="the absent ground tuple")
    whynot_parser.set_defaults(func=_cmd_whynot)

    stats_parser = subparsers.add_parser(
        "stats", help="provenance size statistics")
    _add_common(stats_parser)
    stats_parser.add_argument("tuple", nargs="?", default=None,
                              help="also summarise this tuple's polynomial")
    stats_parser.set_defaults(func=_cmd_stats)

    goal_parser = subparsers.add_parser(
        "goal", help="goal-directed (magic sets) evaluation of one pattern")
    _add_common(goal_parser)
    goal_parser.add_argument(
        "pattern", help="query pattern, e.g. 'trustPath(1,X)'")
    goal_parser.set_defaults(func=_cmd_goal)

    export_parser = subparsers.add_parser(
        "export", help="export program + provenance graph (and epoch) "
        "as a session JSON file")
    _add_common(export_parser, optional_program=True)
    _add_loading(export_parser)
    export_parser.add_argument("--output", required=True,
                               help="output JSON path")
    export_parser.set_defaults(func=_cmd_export)

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="evaluate a program (or load a session) and "
        "snapshot its provenance into a durable store (see docs/STORE.md)")
    _add_common(snapshot_parser, optional_program=True)
    _add_loading(snapshot_parser)
    snapshot_parser.add_argument("--store", required=True, metavar="FILE",
                                 help="SQLite store file (created if "
                                 "missing, appended otherwise)")
    snapshot_parser.add_argument("--json", action="store_true",
                                 help="emit a JSON snapshot summary")
    snapshot_parser.set_defaults(func=_cmd_snapshot)

    record_parser = subparsers.add_parser(
        "record", help="capture a replayable query session: answer "
        "queries, apply updates (each a new store epoch), and persist "
        "every result envelope")
    _add_common(record_parser, optional_program=True)
    _add_loading(record_parser)
    record_parser.add_argument(
        "tuples", nargs="*",
        help="tuple keys to record; when omitted, the program's "
        "query(...) directives are recorded")
    record_parser.add_argument("--store", required=True, metavar="FILE",
                               help="SQLite store file to record into")
    record_parser.add_argument("--name", default="session",
                               help="recording name (default: session)")
    record_parser.add_argument("--update", action="append", default=[],
                               metavar="FILE",
                               help="facts-only program file applied as a "
                               "live update between query rounds "
                               "(repeatable; each lands as a new epoch)")
    record_parser.add_argument("--json", action="store_true",
                               help="emit a JSON recording summary")
    record_parser.set_defaults(func=_cmd_record)

    replay_parser = subparsers.add_parser(
        "replay", help="cold-start from the store at every recorded "
        "epoch, re-run the session with its recorded seeds, and assert "
        "byte-identical result envelopes")
    replay_parser.add_argument("--store", required=True, metavar="FILE",
                               help="SQLite store file holding the "
                               "recording")
    replay_parser.add_argument("--name", default=None,
                               help="recording name (default: the "
                               "newest recording in the store)")
    replay_parser.add_argument("--json", action="store_true",
                               help="emit the replay report JSON envelope")
    _add_telemetry(replay_parser)
    replay_parser.set_defaults(func=_cmd_replay)

    audit_parser = subparsers.add_parser(
        "audit", help="differential audit: cross-check every inference "
        "backend and query path on randomized cases")
    audit_parser.add_argument("--cases", type=int, default=100,
                              help="number of cases in the sweep "
                              "(default: 100)")
    audit_parser.add_argument("--seed", type=int, default=0,
                              help="sweep seed; fixes both case "
                              "generation and sampling (default: 0)")
    audit_parser.add_argument("--backends", nargs="+", default=None,
                              metavar="NAME",
                              help="restrict to these backends "
                              "(default: all registered)")
    audit_parser.add_argument("--samples", type=int, default=4000,
                              help="Monte-Carlo draws per sampling run "
                              "(default: 4000)")
    audit_parser.add_argument("--repeats", type=int, default=1,
                              help="independent runs averaged per "
                              "sampling backend (default: 1; raise to "
                              "hunt small biases)")
    audit_parser.add_argument("--z", type=float, default=5.0,
                              help="sampling agreement band width in "
                              "standard errors (default: 5)")
    audit_parser.add_argument("--replay", metavar="FILE", default=None,
                              help="re-run a recorded replay file "
                              "instead of sweeping")
    audit_parser.add_argument("--replay-original", action="store_true",
                              help="with --replay: check the original "
                              "case, not the shrunk reproducer")
    audit_parser.add_argument("--replay-dir", default=None,
                              help="write a replay file per failing case "
                              "into this directory")
    audit_parser.add_argument("--no-corpus", action="store_true",
                              help="skip the adversarial corpus fixtures")
    audit_parser.add_argument("--no-programs", action="store_true",
                              help="skip random recursive program cases")
    audit_parser.add_argument("--no-shrink", action="store_true",
                              help="report failures without shrinking")
    audit_parser.add_argument("--fail-fast", action="store_true",
                              help="stop at the first failing case")
    audit_parser.add_argument("--json", action="store_true",
                              help="emit the audit report JSON envelope")
    _add_telemetry(audit_parser)
    audit_parser.set_defaults(func=_cmd_audit)

    chaos_parser = subparsers.add_parser(
        "chaos", help="chaos harness: inject backend faults into a live "
        "batch and assert the resilience layer keeps every answer "
        "well-formed")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="seed for the program, the fault "
                              "plan, and sampling (default: 0)")
    chaos_parser.add_argument("--specs", type=int, default=50,
                              help="batch size including the pool-hang "
                              "spec (default: 50)")
    chaos_parser.add_argument("--people", type=int, default=13,
                              help="trust-network size; bounds how many "
                              "distinct query keys exist (default: 13)")
    chaos_parser.add_argument("--samples", type=int, default=20000,
                              help="Monte-Carlo budget for sampling "
                              "rungs (default: 20000)")
    chaos_parser.add_argument("--workers", type=int, default=4,
                              help="executor thread-pool width "
                              "(default: 4)")
    chaos_parser.add_argument("--pool-hang", type=float, default=0.5,
                              metavar="SECONDS",
                              help="pool supervision hang threshold "
                              "(default: 0.5)")
    chaos_parser.add_argument("--outcomes", action="store_true",
                              help="include every per-spec outcome in "
                              "the report (verbose)")
    chaos_parser.add_argument("--json", action="store_true",
                              help="emit the chaos report JSON envelope")
    chaos_parser.add_argument("--service", action="store_true",
                              help="drive the HTTP service end-to-end "
                              "instead of the library executor: boot "
                              "repro.serve in-process, inject the same "
                              "faults, and assert every HTTP exchange "
                              "is well-formed")
    chaos_parser.add_argument("--requests", type=int, default=60,
                              help="HTTP requests to issue in service "
                              "mode (default: 60)")
    chaos_parser.add_argument("--process", action="store_true",
                              help="target subprocess isolation workers "
                              "instead: SIGKILL, OOM, and wedge live "
                              "workers and assert typed errors, bounded "
                              "respawns, and correct answers after every "
                              "fault")
    chaos_parser.add_argument("--rounds", type=int, default=3,
                              help="process-mode fault rounds; each "
                              "delivers every fault class once "
                              "(default: 3)")
    _add_telemetry(chaos_parser)
    chaos_parser.set_defaults(func=_cmd_chaos)

    serve_parser = subparsers.add_parser(
        "serve", help="serve programs as a long-lived multi-tenant "
        "HTTP/JSON service (see docs/SERVICE.md)")
    serve_parser.add_argument("program", nargs="?", default=None,
                              help="program file served as tenant "
                              "'default'; omit to start empty and POST "
                              "programs to /tenants/{name}")
    serve_parser.add_argument("--tenant", action="append", default=[],
                              metavar="NAME=FILE",
                              help="load an additional named tenant "
                              "(repeatable)")
    _add_loading(serve_parser)
    serve_parser.add_argument("--persist", action="store_true",
                              help="with --from-store: keep the default "
                              "tenant attached, so live updates append "
                              "new epochs to the store")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="bind port; 0 picks a free one "
                              "(default: 8080)")
    serve_parser.add_argument("--max-concurrent", type=int, default=8,
                              help="admission slots executing at once "
                              "(default: 8)")
    serve_parser.add_argument("--max-queue", type=int, default=16,
                              help="requests allowed to wait for a "
                              "slot before 429s (default: 16)")
    serve_parser.add_argument("--max-tenant-inflight", type=int,
                              default=None,
                              help="per-tenant in-flight cap "
                              "(default: unlimited)")
    serve_parser.add_argument("--max-tenants", type=int, default=32,
                              help="resident program cap (default: 32)")
    serve_parser.add_argument("--drain-timeout", type=float, default=30.0,
                              metavar="SECONDS",
                              help="on SIGTERM/SIGINT, wait this long for "
                              "in-flight requests before forcing shutdown "
                              "(exit code 3; default: 30)")
    serve_parser.add_argument("--isolation", default=None,
                              choices=("thread", "process", "auto"),
                              help="inference isolation for every tenant: "
                              "'process' runs backends in killable "
                              "subprocess workers (default: config "
                              "default, i.e. thread)")
    serve_parser.add_argument("--degraded-threshold", type=int, default=8,
                              metavar="N",
                              help="wedged deadline-runner threads at "
                              "which /healthz reports 'degraded' "
                              "(default: 8; 0 disables)")
    serve_parser.add_argument("--no-telemetry", action="store_true",
                              help="do not enable the metrics registry "
                              "(makes /metrics a stub)")
    _add_telemetry(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    generate_parser = subparsers.add_parser(
        "generate", help="emit a synthetic trust-network program")
    generate_parser.add_argument("--nodes", type=int, default=500)
    generate_parser.add_argument("--edges", type=int, default=1500)
    generate_parser.add_argument("--seed", type=int, default=2020)
    generate_parser.add_argument("--sample", type=int, default=None,
                                 help="BFS-sample this many nodes")
    generate_parser.set_defaults(func=_cmd_generate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .core.errors import P3Error
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_telemetry(args)
    try:
        return args.func(args)
    except (P3Error, OSError, ValueError, KeyError) as exc:
        print("p3: error: %s" % exc, file=sys.stderr)
        if getattr(args, "json", False):
            from .io.serialize import error_to_json
            try:
                print(json.dumps(error_to_json(exc), indent=2,
                                 sort_keys=True))
            except OSError:
                pass  # stdout gone (broken pipe); stderr has the message
        return 2
    finally:
        _finish_telemetry()


if __name__ == "__main__":
    sys.exit(main())
