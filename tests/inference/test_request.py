"""Tests for the unified InferenceRequest and the deprecation shims.

The request object is the one typed parameter set all seven backends
accept; the legacy keyword spellings must keep working — but loudly —
for one deprecation cycle.
"""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.registry import (
    BackendReading,
    get_backend,
    override_backend,
)
from repro.inference.request import DEFAULT_SAMPLES, InferenceRequest


class TestInferenceRequest:
    def test_defaults(self):
        request = InferenceRequest()
        assert request.samples == DEFAULT_SAMPLES
        assert request.seed is None
        assert request.workers == 1
        assert request.depth is None
        assert request.deadline is None
        assert request.budget is None

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceRequest(samples=0)
        with pytest.raises(ValueError):
            InferenceRequest(workers=0)
        with pytest.raises(ValueError):
            InferenceRequest(depth=-1)

    def test_immutable(self):
        request = InferenceRequest()
        with pytest.raises(AttributeError):
            request.samples = 5

    def test_replace(self):
        base = InferenceRequest(samples=100, seed=3)
        derived = base.replace(samples=200)
        assert derived.samples == 200
        assert derived.seed == 3
        assert base.samples == 100  # the original is untouched

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            InferenceRequest().replace(smaples=5)

    def test_coerce(self):
        request = InferenceRequest(samples=7)
        assert InferenceRequest.coerce(request) is request
        assert InferenceRequest.coerce(None) == InferenceRequest()
        assert InferenceRequest.coerce({"samples": 7}) == \
            InferenceRequest(samples=7)
        with pytest.raises(TypeError):
            InferenceRequest.coerce(12.5)

    def test_equality_and_hash(self):
        assert InferenceRequest(samples=5, seed=1) == \
            InferenceRequest(samples=5, seed=1)
        assert InferenceRequest(samples=5) != InferenceRequest(samples=6)
        assert hash(InferenceRequest(samples=5, seed=1)) == \
            hash(InferenceRequest(samples=5, seed=1))

    def test_to_dict_omits_unset_optionals(self):
        assert InferenceRequest(samples=5).to_dict() == {
            "samples": 5, "seed": None, "workers": 1}
        document = InferenceRequest(
            samples=5, depth=3, deadline=1.5).to_dict()
        assert document["depth"] == 3
        assert document["deadline"] == 1.5


class TestDeprecationShims:
    def setup_method(self):
        self.poly = make_polynomial(("a", "b"), ("c",))
        self.probs = random_probabilities(self.poly, seed=0)

    def test_run_with_request_is_warning_free(self):
        backend = get_backend("mc")
        reading = backend.run(self.poly, self.probs,
                              InferenceRequest(samples=500, seed=1))
        assert 0.0 <= reading.value <= 1.0

    def test_legacy_samples_seed_keywords_warn_but_work(self):
        backend = get_backend("mc")
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = backend.run(self.poly, self.probs,
                                 samples=500, seed=1)
        modern = backend.run(self.poly, self.probs,
                             InferenceRequest(samples=500, seed=1))
        assert legacy.value == modern.value

    def test_legacy_positional_samples_warns(self):
        backend = get_backend("mc")
        with pytest.warns(DeprecationWarning):
            reading = backend.run(self.poly, self.probs, 500, seed=1)
        assert 0.0 <= reading.value <= 1.0

    def test_legacy_keyword_overrides_merge_into_request(self):
        backend = get_backend("mc")
        base = InferenceRequest(samples=9999, seed=7)
        with pytest.warns(DeprecationWarning):
            merged = backend.run(self.poly, self.probs, base, samples=500)
        reference = backend.run(self.poly, self.probs,
                                InferenceRequest(samples=500, seed=7))
        assert merged.value == reference.value

    def test_legacy_four_argument_backend_fn_adapted_with_warning(self):
        def old_style(polynomial, probabilities, samples, seed):
            return BackendReading("mc", 0.25, stderr=0.01, exact=False)

        with pytest.warns(DeprecationWarning, match="legacy"):
            with override_backend("mc", old_style) as backend:
                reading = backend.run(self.poly, self.probs,
                                      InferenceRequest(samples=123, seed=9))
        assert reading.value == 0.25

    def test_legacy_fn_receives_unpacked_request_fields(self):
        seen = {}

        def old_style(polynomial, probabilities, samples, seed):
            seen["samples"], seen["seed"] = samples, seed
            return BackendReading("mc", 0.5, stderr=0.01, exact=False)

        with pytest.warns(DeprecationWarning):
            with override_backend("mc", old_style) as backend:
                backend.run(self.poly, self.probs,
                            InferenceRequest(samples=123, seed=9))
        assert seen == {"samples": 123, "seed": 9}

    def test_new_style_override_is_warning_free(self):
        import warnings

        def new_style(polynomial, probabilities, request):
            return BackendReading("mc", 0.5, stderr=0.01, exact=False)

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with override_backend("mc", new_style) as backend:
                reading = backend.run(self.poly, self.probs,
                                      InferenceRequest(samples=10))
        assert reading.value == 0.5
