"""Planner integration tests: query-directed grounding through P3.

The headline contract is indistinguishability — a system configured with
``grounding="query"`` must answer every facade and executor query with
the same bytes as full evaluation, while only grounding what the asked
queries actually demand.
"""

import json

import pytest

from repro import P3, P3Config
from repro.data import ACQUAINTANCE, paper_fragment
from repro.datalog.ast import Fact, Program, Rule
from repro.datalog.parser import parse_program
from repro.datalog.terms import atom as make_atom
from repro.exec.specs import QuerySpec
from repro.ground import AUTO_FACT_THRESHOLD, GroundingPlanner

TRUST_SOURCE = """
query(trustPath(1,6)).
%s
""" % "\n".join(line for line in
                str(paper_fragment().to_program()).splitlines())


def fragment_pair():
    """(query-directed, full) systems over the Table 5 fragment."""
    program = paper_fragment().to_program()
    directed = P3(program, P3Config(grounding="query"))
    directed.evaluate()
    full = P3(paper_fragment().to_program())
    full.evaluate()
    return directed, full


class TestSupports:
    def test_full_mode_never_plans(self):
        program = paper_fragment().to_program()
        assert not GroundingPlanner.supports(program, P3Config())
        assert not GroundingPlanner.supports(
            program, P3Config(grounding="full"))

    def test_query_mode_plans(self):
        program = paper_fragment().to_program()
        assert GroundingPlanner.supports(
            program, P3Config(grounding="query"))

    def test_no_rules_never_plans(self):
        program = parse_program("t1 0.9: trust(1,2).")
        assert not GroundingPlanner.supports(
            program, P3Config(grounding="query"))

    def test_negation_never_plans(self):
        program = parse_program("""
            p(1). q(1).
            r1 1.0: a(X) :- p(X), not q(X).
        """)
        assert not GroundingPlanner.supports(
            program, P3Config(grounding="query"))

    def test_auto_uses_fact_threshold(self):
        program = paper_fragment().to_program()
        assert len(program.facts) < AUTO_FACT_THRESHOLD
        assert not GroundingPlanner.supports(
            program, P3Config(grounding="auto"))
        extra = [Fact(make_atom("trust", 1000 + index, 2000 + index),
                      probability=0.5, label="x%d" % index)
                 for index in range(AUTO_FACT_THRESHOLD)]
        big = Program(list(program.rules) + list(program.facts) + extra)
        assert GroundingPlanner.supports(big, P3Config(grounding="auto"))


class TestFacadeParity:
    def test_planner_created_and_lazy(self):
        directed, _ = fragment_pair()
        planner = directed.grounding_planner
        assert planner is not None
        assert planner.stats["goals"] == 0  # nothing asked yet

    def test_probability_parity(self):
        directed, full = fragment_pair()
        key = "mutualTrustPath(1,6)"
        assert directed.probability_of(key) == full.probability_of(key)
        assert directed.grounding_planner.stats["goals"] == 1

    def test_polynomial_byte_identical(self):
        directed, full = fragment_pair()
        key = "mutualTrustPath(1,6)"
        assert directed.polynomial_of(key) == full.polynomial_of(key)
        assert str(directed.polynomial_of(key)) == \
            str(full.polynomial_of(key))

    def test_probability_map_parity(self):
        directed, full = fragment_pair()
        assert directed.probabilities == full.probabilities

    def test_holds_parity(self):
        directed, full = fragment_pair()
        assert directed.holds("mutualTrustPath", 1, 6) == \
            full.holds("mutualTrustPath", 1, 6)
        assert directed.holds("mutualTrustPath", 6, 1) == \
            full.holds("mutualTrustPath", 6, 1)

    def test_unknown_key_parity(self):
        from repro.core.errors import UnknownTupleError
        directed, _ = fragment_pair()
        with pytest.raises(UnknownTupleError):
            directed.probability_of("trustPath(99,100)")

    def test_registered_queries_parity(self):
        directed = P3.from_source(TRUST_SOURCE,
                                  config=P3Config(grounding="query"))
        directed.evaluate()
        full = P3.from_source(TRUST_SOURCE)
        full.evaluate()
        assert directed.answer_queries() == full.answer_queries()

    def test_top_derivations_parity(self):
        directed, full = fragment_pair()
        key = "mutualTrustPath(1,6)"
        assert directed.top_derivations(key, k=3) == \
            full.top_derivations(key, k=3)

    def test_coverage_subsumption_no_regrounding(self):
        directed, _ = fragment_pair()
        directed.probability_of("mutualTrustPath(1,6)")
        stats = dict(directed.grounding_planner.stats)
        # trustPath(1,6) was demanded while deriving the mutual path, so
        # asking for it must not ground a second goal.
        directed.probability_of("trustPath(1,6)")
        assert directed.grounding_planner.stats["goals"] == stats["goals"]


class TestExecutorEnvelopeParity:
    KEYS = ("mutualTrustPath(1,6)", "trustPath(1,6)", "trustPath(2,5)")

    @staticmethod
    def envelope(p3):
        specs = [QuerySpec.probability(key)
                 for key in TestExecutorEnvelopeParity.KEYS]
        batch = p3.executor().run(specs, parallel=False)
        results = {outcome.spec.key: outcome.value for outcome in batch}
        document = {"version": 1, "kind": "query_batch",
                    "results": {key: results[key] for key in sorted(results)}}
        return json.dumps(document, indent=2, sort_keys=True)

    def test_query_batch_json_byte_identical(self):
        directed, full = fragment_pair()
        assert self.envelope(directed) == self.envelope(full)


class TestFallback:
    @staticmethod
    def reserved_program():
        # The parser refuses m_-prefixed relations, but a programmatically
        # built Program can smuggle one in; magic_transform raises, and
        # the planner must fall back to full evaluation.
        from repro.datalog.terms import Atom, Variable
        rule = Rule(Atom("p", (Variable("X"),)),
                    (Atom("m_aux", (Variable("X"),)),),
                    label="r1", probability=0.9)
        fact = Fact(make_atom("m_aux", 1), probability=0.8, label="t1")
        return Program([rule, fact])

    def test_reserved_relation_triggers_fallback(self):
        program = self.reserved_program()
        directed = P3(program, P3Config(grounding="query"))
        directed.evaluate()
        planner = directed.grounding_planner
        assert planner is not None and not planner.fallback_active
        probability = directed.probability_of("p(1)")
        assert planner.fallback_active
        assert planner.stats["fallbacks"] == 1
        full = P3(self.reserved_program())
        full.evaluate()
        assert probability == full.probability_of("p(1)")
        assert directed.polynomial_of("p(1)") == full.polynomial_of("p(1)")

    def test_fallback_is_sticky(self):
        directed = P3(self.reserved_program(), P3Config(grounding="query"))
        directed.evaluate()
        directed.probability_of("p(1)")
        directed.probability_of("p(1)")
        assert directed.grounding_planner.stats["fallbacks"] == 1


class TestLifecycle:
    def test_add_facts_resets_planner(self):
        directed = P3(paper_fragment().to_program(),
                      P3Config(grounding="query"))
        directed.evaluate()
        directed.probability_of("trustPath(1,2)")
        first = directed.grounding_planner
        directed.add_facts("t99 0.9: trust(6,1).")
        directed.evaluate()
        second = directed.grounding_planner
        assert second is not first
        # The new edge closes a cycle; the re-grounded system must see it.
        full = P3.from_source(
            str(paper_fragment().to_program()) + "\nt99 0.9: trust(6,1).")
        full.evaluate()
        key = "trustPath(6,2)"
        assert directed.probability_of(key) == full.probability_of(key)

    def test_attach_store_incompatible(self, tmp_path):
        from repro.store import ProvenanceStore
        directed = P3(paper_fragment().to_program(),
                      P3Config(grounding="query"))
        directed.evaluate()
        with ProvenanceStore(str(tmp_path / "prov.db")) as store:
            with pytest.raises(ValueError):
                directed.attach_store(store)

    def test_acquaintance_parity_end_to_end(self):
        directed = P3.from_source(ACQUAINTANCE,
                                  config=P3Config(grounding="query"))
        directed.evaluate()
        full = P3.from_source(ACQUAINTANCE)
        full.evaluate()
        key = 'know("Ben","Elena")'
        assert directed.probability_of(key) == full.probability_of(key)
        assert directed.polynomial_of(key) == full.polynomial_of(key)
