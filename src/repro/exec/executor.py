"""The batch query executor: shared caches + parallel fan-out.

:class:`QueryExecutor` answers batches of :class:`~repro.exec.specs.QuerySpec`
over one evaluated :class:`~repro.core.system.P3` instance.  Three
mechanisms make a batch cheaper than the equivalent loop of facade calls:

1. **Shared bounded caches.**  A polynomial LRU keyed on
   ``(tuple key, hop_limit)`` sits over extraction, and a result LRU keyed
   on the spec's canonical identity — for plain probabilities that is
   ``(tuple key, hop_limit, method, samples, seed)`` — sits over
   inference.  Repeated queries, and different query kinds over the same
   tuple, reuse each other's work.

2. **Parallel fan-out.**  Independent specs run concurrently on a thread
   pool.  The numpy-vectorized backends release the GIL inside BLAS, so
   Monte-Carlo heavy batches scale with cores; exact inference still
   benefits whenever the batch mixes cache hits with misses.

3. **Deterministic per-query seeding.**  Stochastic backends derive a
   per-spec seed from the configured seed and the spec identity, so batch
   results are reproducible regardless of worker scheduling.

Two safety mechanisms keep long-lived executors correct and responsive:

- **Epoch-based invalidation.**  Every cache entry is tagged with the
  system epoch (:attr:`repro.core.system.P3.epoch`) it was computed
  under.  A live update (``P3.add_facts``) bumps the epoch, so stale
  polynomials and probabilities are treated as misses and evicted on next
  access — the executor can never serve results from before a mutation.
  :meth:`QueryExecutor.stats` reports the eviction count as
  ``invalidations``.

- **Per-query deadlines.**  A spec's ``timeout`` parameter (default:
  ``config.query_timeout``) bounds one query's wall-clock; exceeding it
  produces a :class:`~repro.core.errors.QueryTimeoutError` outcome while
  the rest of the batch completes.  If the worker pool is unusable (e.g.
  shut down during interpreter teardown) the batch degrades to sequential
  in-thread execution instead of failing.

Results come back as a :class:`BatchResult` of :class:`QueryOutcome`
entries in input order; :meth:`QueryExecutor.stats` reports per-stage
timings, query counters, and cache hit rates.
"""

from __future__ import annotations

import contextlib
import contextvars
import queue
import threading
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import telemetry
from ..core.errors import (
    BudgetExceededError,
    PoolHangError,
    QueryTimeoutError,
    UnknownTupleError,
)
from ..inference import probability as compute_probability
from ..inference.registry import is_deterministic
from ..inference.request import InferenceRequest
from ..provenance.extraction import extract_polynomial
from ..provenance.polynomial import Polynomial
from ..resilience.budgets import activate_budget, active_meter
from .cache import LRUCache
from .specs import QuerySpec
from .stats import ExecutorStats


class QueryOutcome:
    """Result of one spec: the answer, or an error, plus timing.

    ``resilience`` (a :class:`~repro.resilience.ladder.ResilienceRecord`,
    or None) is present when a fallback ladder answered — or failed to
    answer — this spec; it names the rung that answered, the attempts
    made, and any accuracy downgrade.

    ``partial`` marks a sound degraded answer: a resource budget blew
    mid-extraction, and ``value`` is the probability of the partial
    polynomial the budget error carried — an under-approximation of the
    true answer, not the exact one.  Serialized as ``"partial": true`` so
    service clients can distinguish it from a full answer.
    """

    __slots__ = ("spec", "value", "error", "exception", "seconds", "cached",
                 "resilience", "partial")

    def __init__(self, spec: QuerySpec, value: Any = None,
                 error: Optional[str] = None,
                 exception: Optional[BaseException] = None,
                 seconds: float = 0.0,
                 cached: bool = False,
                 resilience: Optional[Any] = None,
                 partial: bool = False) -> None:
        self.spec = spec
        self.value = value
        self.error = error
        self.exception = exception
        self.seconds = seconds
        self.cached = cached
        self.resilience = resilience
        self.partial = partial

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        document: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "seconds": self.seconds,
            "cached": self.cached,
        }
        if self.error is not None:
            document["error"] = self.error
        else:
            value = self.value
            document["value"] = (value.to_dict()
                                 if hasattr(value, "to_dict") else value)
        if self.partial:
            document["partial"] = True
        if self.resilience is not None:
            document["resilience"] = self.resilience.to_dict()
        return document

    def __repr__(self) -> str:
        if self.error is not None:
            return "QueryOutcome(%r, error=%r)" % (self.spec, self.error)
        return "QueryOutcome(%r, %r)" % (self.spec, self.value)


class BatchResult:
    """Outcomes of one batch, in input order."""

    def __init__(self, outcomes: Sequence[QueryOutcome],
                 seconds: float) -> None:
        self.outcomes = tuple(outcomes)
        self.seconds = seconds

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[QueryOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> QueryOutcome:
        return self.outcomes[index]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def values(self) -> List[Any]:
        """The answers in input order (None where a query errored)."""
        return [outcome.value for outcome in self.outcomes]

    def errors(self) -> List[Tuple[QuerySpec, str]]:
        return [(outcome.spec, outcome.error)
                for outcome in self.outcomes if outcome.error is not None]

    def to_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def __repr__(self) -> str:
        failed = sum(1 for outcome in self.outcomes if not outcome.ok)
        return "BatchResult(%d outcomes, %d failed, %.3fs)" % (
            len(self.outcomes), failed, self.seconds)


class _SequentialProgress:
    """Completion log shared by a sequential pool task and its supervisor.

    The task posts each finished spec; the supervisor compares counts at
    hang-window edges, so a wedged spec is detected even though the task
    future as a whole is still running.  Outcomes posted by a task whose
    pool was abandoned land in *that* log object and are ignored — the
    resubmitted tail gets a fresh log.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._done: List[Tuple[int, "QueryOutcome"]] = []

    def post(self, index: int, outcome: "QueryOutcome") -> None:
        with self._lock:
            self._done.append((index, outcome))

    def count(self) -> int:
        with self._lock:
            return len(self._done)

    def drain(self) -> List[Tuple[int, "QueryOutcome"]]:
        with self._lock:
            done, self._done = self._done, []
            return done


class _DeadlineTask:
    """One unit of deadlined work plus its abandonment bookkeeping."""

    __slots__ = ("target", "abandoned", "finished")

    def __init__(self, target: Any) -> None:
        self.target = target
        self.abandoned = False
        self.finished = False


class _DeadlineRunner(threading.Thread):
    """A reusable daemon thread executing deadlined tasks in sequence."""

    def __init__(self, pool: "_DeadlineRunnerPool") -> None:
        super().__init__(name="p3-deadline", daemon=True)
        self._pool = pool
        self._tasks: "queue.SimpleQueue[Optional[_DeadlineTask]]" = (
            queue.SimpleQueue())
        self.start()

    def submit(self, task: _DeadlineTask) -> None:
        self._tasks.put(task)

    def stop(self) -> None:
        self._tasks.put(None)

    def run(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            task.target()
            if not self._pool._recycle(self, task):
                return


class _DeadlineRunnerPool:
    """A small pool of reusable deadline-runner threads.

    The per-query deadline used to be enforced by spawning one fresh
    daemon thread per deadlined query; under a long-lived service with
    sustained timeouts those abandoned threads accumulate without bound.
    This pool caps *retention* rather than concurrency: a finished runner
    rejoins the idle stack (up to ``max_idle``) and is reused by the next
    deadlined query, while a runner still wedged past its caller's
    timeout is simply not reused until its task completes — so a burst of
    timeouts still gets fresh threads (no head-of-line blocking behind a
    wedged runner), but a steady state of fast queries recycles the same
    few threads.  ``stats()`` counts spawns, reuses, and abandonments
    (total and currently live) for ``QueryExecutor.stats()['pool']``.
    """

    def __init__(self, max_idle: int = 4) -> None:
        self.max_idle = max_idle
        self._lock = threading.Lock()
        self._idle: List[_DeadlineRunner] = []
        self._spawned = 0
        self._reused = 0
        self._abandoned_total = 0
        self._abandoned_live = 0

    def run(self, target: Any) -> Tuple[_DeadlineRunner, _DeadlineTask]:
        """Dispatch ``target`` on an idle runner (or a fresh one)."""
        with self._lock:
            runner = self._idle.pop() if self._idle else None
            if runner is not None:
                self._reused += 1
            else:
                self._spawned += 1
        if runner is None:
            runner = _DeadlineRunner(self)
        task = _DeadlineTask(target)
        runner.submit(task)
        return runner, task

    def abandon(self, task: _DeadlineTask) -> None:
        """The caller timed out waiting: write the runner off (for now).

        A task that finished just as the caller gave up is not counted —
        its runner already recycled itself and nothing leaked.
        """
        with self._lock:
            if task.finished or task.abandoned:
                return
            task.abandoned = True
            self._abandoned_total += 1
            self._abandoned_live += 1
            live = self._abandoned_live
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_deadline_threads_abandoned_total",
                help="Deadline runners abandoned past their timeout").inc()
        self._note_live(live)

    def _recycle(self, runner: _DeadlineRunner,
                 task: _DeadlineTask) -> bool:
        """Runner finished ``task``; True to keep the thread alive."""
        recovered = False
        with self._lock:
            task.finished = True
            if task.abandoned:
                # The wedged task eventually completed: the runner is
                # healthy again and may rejoin the idle stack.
                self._abandoned_live -= 1
                recovered = True
                live = self._abandoned_live
            if len(self._idle) < self.max_idle:
                self._idle.append(runner)
                keep = True
            else:
                keep = False
        if recovered:
            self._note_live(live)
        return keep

    @staticmethod
    def _note_live(live: int) -> None:
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.gauge(
                "p3_deadline_threads_abandoned_live",
                "Deadline runner threads currently wedged past their "
                "caller's timeout").labels().set(float(live))

    def shutdown(self) -> None:
        """Stop the idle runners (wedged ones exit when they finish)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for runner in idle:
            runner.stop()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spawned": self._spawned,
                "reused": self._reused,
                "abandoned": self._abandoned_total,
                "abandoned_live": self._abandoned_live,
                "idle": len(self._idle),
            }


class QueryExecutor:
    """Answer batches of provenance queries over one evaluated system.

    Parameters
    ----------
    system:
        A :class:`~repro.core.system.P3` instance; evaluated on demand if
        it is not already.
    max_workers:
        Thread-pool width for batch fan-out (default from
        ``system.config.executor_workers``, falling back to 4).  ``1``
        disables threading entirely.
    polynomial_cache_size / result_cache_size:
        LRU bounds (default from the system config); ``None`` = unbounded.
    stats:
        Share an existing :class:`ExecutorStats` (the CLI passes one that
        already holds parse/evaluate timings).
    """

    def __init__(self, system: "Any",  # P3; untyped to avoid import cycle
                 max_workers: Optional[int] = None,
                 polynomial_cache_size: Optional[int] = None,
                 result_cache_size: Optional[int] = None,
                 stats: Optional[ExecutorStats] = None) -> None:
        config = system.config
        if max_workers is None:
            max_workers = getattr(config, "executor_workers", None) or 4
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if polynomial_cache_size is None:
            polynomial_cache_size = getattr(
                config, "polynomial_cache_size", 2048)
        if result_cache_size is None:
            result_cache_size = getattr(config, "result_cache_size", 8192)
        self.system = system
        self.max_workers = max_workers
        # Kernel shard-worker hint carried on every InferenceRequest this
        # executor builds; defaults to the batch fan-out width so the
        # "parallel" backend is actually multi-worker out of the box.
        self.inference_workers = getattr(
            config, "inference_workers", None) or max_workers
        self._stats = stats or ExecutorStats()
        self._polynomials = LRUCache(polynomial_cache_size)
        self._results = LRUCache(result_cache_size)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._deadline_runners = _DeadlineRunnerPool()
        # Process isolation: where backend calls execute.  "auto" means
        # subprocess workers wherever the platform supports hard kill
        # (POSIX), threads elsewhere.  The worker pool itself is spawned
        # lazily — a worker costs an interpreter boot — and only when a
        # process-isolated call actually happens.
        isolation = getattr(config, "isolation", None) or "thread"
        if isolation == "auto":
            from ..resilience.isolation import process_isolation_supported
            isolation = ("process" if process_isolation_supported()
                         else "thread")
        self.isolation = isolation
        self._process_pool: Optional[Any] = None
        self._process_pool_lock = threading.Lock()
        # (runtime, {(cache, outcome): BoundSeries}) — rebuilt whenever
        # telemetry.configure() installs a new runtime object.
        self._metric_cache: Tuple[Any, Dict[Any, Any]] = (None, {})
        # Resilience wiring: one breaker board and one ladder shared by
        # every query this executor answers, so failure history crosses
        # specs within (and across) batches.
        self._resilience = getattr(config, "resilience", None)
        if self._resilience is not None:
            self._breakers = self._resilience.build_board()
            # The ladder gets the process dispatcher regardless of the
            # configured default: rungs may opt into process isolation
            # individually (FallbackRung(isolation="process")).
            self._ladder = self._resilience.build_ladder(
                self._breakers, dispatch=self._dispatch_process,
                default_isolation=self.isolation)
        else:
            self._breakers = None
            self._ladder = None
        # Per-thread scratch for the in-flight query's absolute deadline
        # and resilience record (worker threads each see their own).
        self._tl = threading.local()
        if not system.evaluated:
            with self._stats.time_stage("evaluate"):
                system.evaluate()

    # -- lifecycle ---------------------------------------------------------------

    def _acquire_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="p3-exec")
            return self._pool

    def close(self) -> None:
        """Shut the worker pools down (the caches stay usable)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        self._deadline_runners.shutdown()
        with self._process_pool_lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.close()

    # -- process isolation --------------------------------------------------------

    def _acquire_process_pool(self) -> "Any":
        with self._process_pool_lock:
            if self._process_pool is None:
                from ..resilience.isolation import ProcessWorkerPool
                config = self.system.config
                self._process_pool = ProcessWorkerPool(
                    workers=getattr(config, "isolation_workers", None) or 2,
                    memory_limit_bytes=getattr(
                        config, "worker_memory_bytes", None))
            return self._process_pool

    @property
    def process_pool(self) -> "Optional[Any]":
        """The isolation worker pool, if one has been spawned."""
        return self._process_pool

    def _dispatch_process(self, method: str, polynomial: Any,
                          probabilities: Any, request: "InferenceRequest",
                          timeout: Optional[float] = None) -> Any:
        """Run one backend call on a subprocess worker.

        Serves both the ladder's process rungs and the direct (no-ladder)
        probability path.  The effective timeout is the tightest of the
        explicit bound, the in-flight query's thread-local deadline, and
        ``request.deadline`` — so a wedged worker is SIGKILLed no later
        than the query would have timed out, and the deadline runner that
        waits on it is released instead of abandoned.
        """
        deadline = getattr(self._tl, "deadline", None)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            timeout = (remaining if timeout is None
                       else min(timeout, remaining))
        return self._acquire_process_pool().submit(
            method, polynomial, probabilities, request, timeout=timeout)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- configuration resolution --------------------------------------------------

    def _resolve_hop(self, hop_limit: Optional[int]) -> Optional[int]:
        if hop_limit is not None:
            return hop_limit
        return self.system.config.hop_limit

    def _resolve_method(self, kind: str, method: Optional[str]) -> str:
        config = self.system.config
        if method is not None:
            return method
        if kind == "influence":
            return config.influence_method
        if kind == "derive":
            return getattr(config, "derivation_method", None) or "naive"
        return config.probability_method

    def _resolve_seed(self, seed: Optional[int]) -> Optional[int]:
        """Config fallback for seeds.

        An explicit ``seed=None`` and an absent seed mean the same thing
        ("use the configured seed"), so every execution path must resolve
        through here — resolving differently per path made explicit-None
        specs silently non-reproducible.
        """
        if seed is None:
            return self.system.config.seed
        return seed

    def _resolve_samples(self, samples: Optional[int]) -> int:
        if samples is None:
            return self.system.config.samples
        return samples

    def _resolve_timeout(self, spec: QuerySpec) -> Optional[float]:
        timeout = spec.params.get("timeout")
        if timeout is None:
            return getattr(self.system.config, "query_timeout", None)
        return timeout

    def _current_epoch(self) -> int:
        return getattr(self.system, "epoch", 0)

    # -- cached building blocks -----------------------------------------------------

    def _cache_counter(self, rt: Any, name: str, outcome: str) -> Any:
        """A bound ``p3_cache_requests_total`` series handle, cached.

        Looked-up-by-name metrics cost a registry lock plus label-set
        validation per event; on the result-cache hot path (two lookups
        per query) that was a measurable slice of the tracing overhead.
        Handles are keyed on the runtime object's identity so a
        ``telemetry.configure()`` swap naturally invalidates them.
        """
        cached_rt, handles = self._metric_cache
        if cached_rt is not rt:
            handles = {}
            self._metric_cache = (rt, handles)
        handle = handles.get((name, outcome))
        if handle is None:
            handle = rt.metrics.counter(
                "p3_cache_requests_total",
                help="Executor cache lookups, by cache and outcome",
                labelnames=("cache", "outcome")).labels(
                    cache=name, outcome=outcome)
            handles[(name, outcome)] = handle
        return handle

    def _cache_get(self, cache: LRUCache, name: str, key: Any,
                   epoch: int) -> Any:
        """Cache lookup that also feeds the telemetry hit/miss counters.

        Every executor cache access goes through here, so the
        ``p3_cache_requests_total`` metric and the LRU's own ``stats()``
        counters (what ``--stats`` prints) move in lockstep.
        """
        value = cache.get(key, epoch=epoch)
        rt = telemetry.runtime()
        if rt.enabled:
            self._cache_counter(
                rt, name, "hit" if value is not None else "miss").inc()
        return value

    def _provenance_graph(self, key: str):
        """The system graph, grounded for ``key`` when a planner is active.

        Under ``config.grounding='query'|'auto'`` the system grounds the
        goal on demand (at most once per pattern) before extraction;
        systems without the hook — and fully-evaluated ones — return
        their graph unchanged.
        """
        ensure = getattr(self.system, "provenance_for", None)
        if ensure is not None:
            return ensure(key)
        return self.system.graph

    def polynomial(self, key: str,
                   hop_limit: Optional[int] = None) -> Polynomial:
        """Extract (through the shared LRU) the provenance polynomial."""
        limit = self._resolve_hop(hop_limit)
        epoch = self._current_epoch()
        cache_key = (key, limit)
        cached = self._cache_get(
            self._polynomials, "polynomial", cache_key, epoch)
        if cached is not None:
            return cached
        graph = self._provenance_graph(key)
        if key not in graph:
            raise UnknownTupleError(key)
        with self._stats.time_stage("extract"):
            polynomial = extract_polynomial(
                graph, key, hop_limit=limit,
                max_monomials=self.system.config.max_monomials)
        self._polynomials.put(cache_key, polynomial, epoch=epoch)
        return polynomial

    def prime_polynomial(self, key: str, hop_limit: Optional[int],
                         polynomial: Polynomial) -> None:
        """Seed the polynomial LRU with an externally computed polynomial.

        Used by warm-start restores (:mod:`repro.store`): polynomials
        persisted alongside a snapshot are loaded straight into the
        cache, tagged with the *current* system epoch, so the first
        queries after a restore skip extraction entirely.  The hop limit
        resolves through the config exactly like :meth:`polynomial`, so
        a primed entry and the equivalent live extraction share one key.
        """
        limit = self._resolve_hop(hop_limit)
        self._polynomials.put(
            (key, limit), polynomial, epoch=self._current_epoch())

    def probability(self, key: str,
                    method: Optional[str] = None,
                    hop_limit: Optional[int] = None,
                    samples: Optional[int] = None,
                    seed: Optional[int] = None) -> float:
        """Cached success probability P[key].

        The cache key is ``(key, hop_limit, method, samples, seed)`` with
        the sampling fields collapsed for deterministic methods, so an
        exact query repeated with different budgets still hits.
        """
        self._stats.record_query("probability")
        method = self._resolve_method("probability", method)
        limit = self._resolve_hop(hop_limit)
        samples = self._resolve_samples(samples)
        seed = self._resolve_seed(seed)
        epoch = self._current_epoch()
        # Deterministic backends (per the inference registry) ignore the
        # sample budget and seed, so their cache identity collapses those
        # fields: an exact query repeated with different budgets still hits.
        if is_deterministic(method):
            cache_key = (key, limit, method, None, None)
        else:
            cache_key = (key, limit, method, samples, seed)
        cached = self._cache_get(
            self._results, "probability", cache_key, epoch)
        if cached is not None:
            return cached
        with self._budget_scope():
            polynomial = self.polynomial(key, hop_limit=limit)
            # Workers and the thread-local deadline ride on the request so
            # the sampling kernel actually shards (InferenceRequest.workers
            # defaults to 1) and can truncate draws instead of relying
            # solely on the deadline thread being abandoned.
            request = InferenceRequest(
                samples=samples, seed=_mix_seed(seed, key),
                workers=self.inference_workers,
                deadline=getattr(self._tl, "deadline", None))
            if self._ladder is not None:
                with self._stats.time_stage("infer"):
                    reading, record = self._ladder.run(
                        polynomial, self.system.probabilities,
                        request=request, requested=method,
                        deadline=getattr(self._tl, "deadline", None))
                self._tl.record = record
                value = reading.value
            elif self.isolation == "process":
                with self._stats.time_stage("infer"):
                    reading = self._dispatch_process(
                        method, polynomial, self.system.probabilities,
                        request)
                value = reading.value
            else:
                with self._stats.time_stage("infer"):
                    value = compute_probability(
                        polynomial, self.system.probabilities, method=method,
                        request=request)
        self._results.put(cache_key, value, epoch=epoch)
        return value

    def _budget_scope(self):
        """Activate the configured resource budget, unless one already is.

        The no-double-activation guard matters because ``probability()``
        is reached both directly and through ``_execute_cached`` (which
        activates for every query kind); re-activating would hand the
        inner scope a fresh meter and zero the visit counters mid-query.
        """
        rc = self._resilience
        if rc is None or rc.budget is None or active_meter() is not None:
            return contextlib.nullcontext()
        return activate_budget(rc.budget)

    # -- batch execution -------------------------------------------------------------

    def run(self, specs: Sequence[object],
            parallel: bool = True) -> BatchResult:
        """Answer a batch of specs (QuerySpec / dict / bare key strings).

        Duplicate specs are answered once; outcomes come back in input
        order.  Errors are captured per-outcome (``outcome.error``), never
        raised out of the batch.
        """
        started = time.perf_counter()
        coerced = [QuerySpec.coerce(spec) for spec in specs]
        distinct: "Dict[Any, QuerySpec]" = {}
        for spec in coerced:
            distinct.setdefault(spec.cache_identity(), spec)
        self._stats.record_batch(
            deduplicated=len(coerced) - len(distinct))

        unique = list(distinct.values())
        rt = telemetry.runtime()
        hang_seconds = getattr(self._resilience, "pool_hang_seconds", None)
        with rt.tracer.span("batch", size=len(coerced),
                            distinct=len(unique)):
            if parallel and self.max_workers > 1 and len(unique) > 1:
                if hang_seconds is not None:
                    computed = self._run_supervised(unique, rt, hang_seconds)
                else:
                    computed = self._run_measured(unique, rt)
            else:
                computed = [self._run_one(spec) for spec in unique]
        by_identity = {
            spec.cache_identity(): outcome
            for spec, outcome in zip(unique, computed)
        }
        outcomes = [by_identity[spec.cache_identity()] for spec in coerced]
        return BatchResult(outcomes, time.perf_counter() - started)

    #: Per-query cost below which thread-pool fan-out loses outright: a
    #: pool task costs O(100µs) of dispatch plus a contextvars copy, so
    #: sub-millisecond queries (cache hits, small polynomials on the
    #: vectorized kernel) run faster inline than fanned out.
    POOL_COST_THRESHOLD_SECONDS = 0.002

    def _run_measured(self, unique: Sequence[QuerySpec],
                      rt: "Any") -> List["QueryOutcome"]:
        """Measured-cost pool sizing: probe one spec inline, then decide.

        The first spec runs on the calling thread and is timed, with its
        infer-stage share taken from :class:`ExecutorStats` deltas.  A
        cheap probe keeps the whole batch sequential — a warm batch is
        all cache hits, and a cold batch of sub-millisecond queries pays
        more for per-task dispatch than it recovers from concurrency.
        An expensive probe fans the remainder out across the pool.

        The probe is a real query (its outcome is the batch's first
        result), so the measurement costs nothing extra; it is also the
        pessimistic one — the first cold query pays the cache misses —
        which biases the decision *toward* fan-out, never away from it.
        """
        infer_before = self._stats.stage_seconds("infer")
        started = time.perf_counter()
        first = self._run_one(unique[0])
        probe_seconds = time.perf_counter() - started
        rest = list(unique[1:])
        if probe_seconds < self.POOL_COST_THRESHOLD_SECONDS:
            self._stats.record_pool_event(
                "skip_fanout",
                reason="probe cost %.6fs under %.4fs threshold"
                       % (probe_seconds, self.POOL_COST_THRESHOLD_SECONDS))
            return [first] + [self._run_one(spec) for spec in rest]
        infer_delta = self._stats.stage_seconds("infer") - infer_before
        self._stats.record_pool_event(
            "fanout",
            reason="probe cost %.4fs (infer %.0f%%), %d specs to pool"
                   % (probe_seconds,
                      100.0 * infer_delta / probe_seconds, len(rest)))
        try:
            pool = self._acquire_pool()
            if rt.enabled:
                # Each worker task runs inside a copy of this thread's
                # context, so the batch span above is the parent of every
                # per-query span regardless of which pool thread picks
                # the spec up.  One copy per task: a single Context
                # cannot be entered concurrently.
                contexts = [contextvars.copy_context() for _ in rest]
                computed = list(pool.map(
                    self._run_one_in_context, contexts, rest))
            else:
                computed = list(pool.map(self._run_one, rest))
        except RuntimeError:
            # Pool unusable (shut down mid-flight, interpreter teardown,
            # thread limits): degrade to sequential execution rather than
            # losing the batch.  _run_one is idempotent through the
            # caches, so recomputing any specs the pool already answered
            # is cheap.
            self._stats.record_pool_event(
                "degrade_sequential",
                reason="worker pool unusable (RuntimeError)")
            computed = [self._run_one(spec) for spec in rest]
        return [first] + computed

    def _run_one_in_context(self, context: "contextvars.Context",
                            spec: QuerySpec) -> "QueryOutcome":
        return context.run(self._run_one, spec)

    def _submit_one(self, pool: ThreadPoolExecutor, spec: QuerySpec,
                    rt: "Any") -> "Any":
        if rt.enabled:
            context = contextvars.copy_context()
            return pool.submit(self._run_one_in_context, context, spec)
        return pool.submit(self._run_one, spec)

    def _abandon_pool(self) -> None:
        """Drop the current pool without waiting on its (wedged) workers."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _run_supervised(self, unique: Sequence[QuerySpec], rt: "Any",
                        hang_seconds: float) -> List["QueryOutcome"]:
        """Measured-cost fan-out with hung-pool detection.

        The measured-cost probe from :meth:`_run_measured` applies here
        too — without it, enabling ``pool_hang_seconds`` silently
        reintroduced the cold-batch fan-out regression — but the probe
        itself must stay supervised: the *first* spec may be the wedged
        one, and running it inline would hang the caller's thread with no
        supervisor above it.  The probe therefore runs as a single-spec
        supervised fan-out and is timed end to end:

        - an expensive (or hung) probe keeps the full concurrent fan-out
          for the remainder (:meth:`_supervise_fanout`);
        - a cheap probe routes the remainder through *one* supervised
          pool task that executes specs sequentially, with per-spec
          completions as the progress heartbeat
          (:meth:`_supervise_sequential`) — per-task dispatch would
          dominate sub-millisecond queries, but hang protection must not
          lapse just because the batch is cheap.

        Both routes share one rebuild quota (``pool_max_rebuilds``); past
        it, still-pending specs become
        :class:`~repro.core.errors.PoolHangError` outcomes rather than
        degrading to sequential — whatever wedged the workers would wedge
        the caller's thread too.
        """
        # Mutable cell: the rebuild quota is shared across the probe and
        # whichever remainder route runs.
        budget = [getattr(self._resilience, "pool_max_rebuilds", 1)]
        started = time.perf_counter()
        head = self._supervise_fanout([unique[0]], rt, hang_seconds, budget)
        probe_seconds = time.perf_counter() - started
        rest = list(unique[1:])
        if not rest:
            return head
        probe_hung = isinstance(head[0].exception, PoolHangError)
        if probe_hung or probe_seconds >= self.POOL_COST_THRESHOLD_SECONDS:
            self._stats.record_pool_event(
                "fanout",
                reason="probe cost %.4fs%s, %d specs to pool"
                       % (probe_seconds, " (hung)" if probe_hung else "",
                          len(rest)))
            tail = self._supervise_fanout(rest, rt, hang_seconds, budget)
        else:
            self._stats.record_pool_event(
                "skip_fanout",
                reason="probe cost %.6fs under %.4fs threshold; "
                       "supervised sequential"
                       % (probe_seconds, self.POOL_COST_THRESHOLD_SECONDS))
            tail = self._supervise_sequential(rest, rt, hang_seconds, budget)
        return head + tail

    def _note_hang(self, pending: List[int], specs: Sequence[QuerySpec],
                   results: List[Optional["QueryOutcome"]],
                   hang_seconds: float, budget: List[int]) -> bool:
        """Bookkeeping after an abandoned pool: rebuild, or give up.

        Returns True when the (shared) rebuild quota allows another
        attempt; False after writing :class:`PoolHangError` outcomes for
        every still-pending spec.
        """
        budget[0] -= 1
        if budget[0] >= 0:
            self._stats.record_pool_event(
                "rebuild",
                reason="no worker progress for %.3fs" % hang_seconds)
            return True
        self._stats.record_pool_event(
            "hang_abandon",
            reason="pool hung again after %d rebuild(s)"
                   % getattr(self._resilience, "pool_max_rebuilds", 1))
        for index in pending:
            spec = specs[index]
            failure = PoolHangError(spec.key, hang_seconds)
            self._stats.record_error()
            results[index] = QueryOutcome(
                spec, error="%s: %s" % (type(failure).__name__, failure),
                exception=failure)
        return False

    def _supervise_fanout(self, specs: Sequence[QuerySpec], rt: "Any",
                          hang_seconds: float,
                          budget: List[int]) -> List["QueryOutcome"]:
        """Concurrent fan-out with hung-pool detection and rebuilds.

        Progress is defined as *any* future completing within
        ``hang_seconds``; a window with no progress declares the pool
        hung.  The hung pool is abandoned (its threads cannot be killed,
        but they only ever write idempotently into the shared caches) and
        replaced while the shared rebuild quota lasts.
        """
        results: List[Optional[QueryOutcome]] = [None] * len(specs)
        pending = list(range(len(specs)))
        while pending:
            try:
                pool = self._acquire_pool()
                futures = {
                    self._submit_one(pool, specs[index], rt): index
                    for index in pending
                }
            except RuntimeError:
                # Broken pool (not hung): sequential execution is safe.
                self._stats.record_pool_event(
                    "degrade_sequential",
                    reason="worker pool unusable (RuntimeError)")
                for index in pending:
                    results[index] = self._run_one(specs[index])
                return results
            while futures:
                done, _ = wait(set(futures), timeout=hang_seconds,
                               return_when=FIRST_COMPLETED)
                if not done:
                    break  # no progress inside the window: hung
                for future in done:
                    results[futures.pop(future)] = future.result()
            pending = sorted(futures.values())
            if not pending:
                break
            self._abandon_pool()
            if not self._note_hang(pending, specs, results, hang_seconds,
                                   budget):
                break
        return results  # type: ignore[return-value]

    def _run_sequence(self, indices: List[int],
                      specs: Sequence[QuerySpec],
                      progress: "_SequentialProgress") -> None:
        """Pool-task body for the supervised sequential route."""
        for index in indices:
            progress.post(index, self._run_one(specs[index]))

    def _supervise_sequential(self, specs: Sequence[QuerySpec], rt: "Any",
                              hang_seconds: float,
                              budget: List[int]) -> List["QueryOutcome"]:
        """Run ``specs`` in order inside a single supervised pool task.

        One pool task executes the specs sequentially (one dispatch for
        the whole tail instead of one per spec) and posts each completion
        to a progress log.  The supervisor waits on the task future in
        ``hang_seconds`` windows; a window in which no new completion was
        posted declares the pool hung, abandons it, and resubmits the
        unfinished tail under the shared rebuild quota.
        """
        results: List[Optional[QueryOutcome]] = [None] * len(specs)
        pending = list(range(len(specs)))
        while pending:
            progress = _SequentialProgress()
            try:
                pool = self._acquire_pool()
                if rt.enabled:
                    context = contextvars.copy_context()
                    future = pool.submit(
                        context.run, self._run_sequence, list(pending),
                        specs, progress)
                else:
                    future = pool.submit(
                        self._run_sequence, list(pending), specs, progress)
            except RuntimeError:
                self._stats.record_pool_event(
                    "degrade_sequential",
                    reason="worker pool unusable (RuntimeError)")
                for index in pending:
                    results[index] = self._run_one(specs[index])
                return results
            while True:
                seen = progress.count()
                finished, _ = wait({future}, timeout=hang_seconds)
                if finished:
                    break
                if progress.count() == seen:
                    break  # no completion inside the window: hung
            for index, outcome in progress.drain():
                results[index] = outcome
            pending = [index for index in pending if results[index] is None]
            if not pending:
                break
            self._abandon_pool()
            if not self._note_hang(pending, specs, results, hang_seconds,
                                   budget):
                break
        return results  # type: ignore[return-value]

    def execute(self, spec: object) -> Any:
        """Answer a single spec, raising on error.

        Non-probability results are cached under the spec's canonical
        identity; probability specs cache inside :meth:`probability` on
        the normalised ``(key, hop, method, samples, seed)`` key.  The
        spec's deadline (or ``config.query_timeout``) applies: exceeding
        it raises :class:`~repro.core.errors.QueryTimeoutError`.
        """
        coerced = QuerySpec.coerce(spec)
        timeout = self._resolve_timeout(coerced)
        if timeout is not None:
            return self._execute_with_deadline(coerced, timeout)[0]
        return self._execute_cached(coerced)[0]

    def _execute_cached(self, spec: QuerySpec) -> Tuple[Any, bool]:
        """(answer, was it a result-cache hit)."""
        identity = spec.cache_identity()
        epoch = self._current_epoch()
        if spec.kind != "probability":
            # Probability specs count inside probability() itself.
            self._stats.record_query(spec.kind)
            cached = self._cache_get(
                self._results, "probability", identity, epoch)
            if cached is not None:
                return cached, True
        with self._stats.time_stage("query"), self._budget_scope():
            value = self._execute(spec)
        if spec.kind != "probability":
            self._results.put(identity, value, epoch=epoch)
        return value, False

    def _run_one(self, spec: QuerySpec) -> QueryOutcome:
        started = time.perf_counter()
        self._tl.record = None
        with telemetry.runtime().tracer.span(
                "query", kind=spec.kind, key=spec.key) as span:
            try:
                timeout = self._resolve_timeout(spec)
                if timeout is not None:
                    value, cached = self._execute_with_deadline(
                        spec, timeout)
                else:
                    value, cached = self._execute_cached(spec)
            except Exception as exc:  # noqa: BLE001 — reported per-outcome
                record = getattr(exc, "record", None) \
                    or getattr(self._tl, "record", None)
                # A blown budget that carries sound partial progress is
                # degraded, not failed: answer with the probability of
                # the partial polynomial and an explicit marker.
                partial_value = self._partial_probability(spec, exc)
                if partial_value is not None:
                    span.set_attribute("partial", True)
                    return QueryOutcome(
                        spec, value=partial_value, partial=True,
                        seconds=time.perf_counter() - started,
                        resilience=record)
                self._stats.record_error()
                span.set_attribute(
                    "error", "%s: %s" % (type(exc).__name__, exc))
                # A LadderExhaustedError carries the record of everything
                # that was tried; otherwise use whatever the ladder
                # stashed before the failure.
                return QueryOutcome(spec, error="%s: %s" % (
                    type(exc).__name__, exc), exception=exc,
                    seconds=time.perf_counter() - started,
                    resilience=record)
            span.set_attribute("cached", cached)
        return QueryOutcome(spec, value=value, cached=cached,
                            seconds=time.perf_counter() - started,
                            resilience=getattr(self._tl, "record", None))

    def _partial_probability(self, spec: QuerySpec,
                             exc: BaseException) -> Optional[float]:
        """The sound degraded answer for a blown budget, if one exists.

        Extraction attaches the last consistent intermediate polynomial
        to :class:`BudgetExceededError` — a monotone under-approximation
        of the true provenance, so its probability is a lower bound on
        the true answer.  Only probability specs degrade this way (other
        query kinds need the full polynomial's structure); any failure
        while scoring the partial falls back to the plain error outcome.
        """
        if spec.kind != "probability":
            return None
        if not isinstance(exc, BudgetExceededError):
            return None
        partial = getattr(exc, "partial", None)
        if not isinstance(partial, Polynomial):
            return None
        try:
            params = spec.params
            method = self._resolve_method(
                "probability", params.get("method"))
            seed = self._resolve_seed(params.get("seed"))
            request = InferenceRequest(
                samples=self._resolve_samples(params.get("samples")),
                seed=_mix_seed(seed, spec.key),
                workers=self.inference_workers,
                deadline=getattr(self._tl, "deadline", None))
            # No budget scope on purpose: the partial polynomial is the
            # bounded artifact the budget produced; metering its scoring
            # with the already-blown budget would fail tautologically.
            return compute_probability(
                partial, self.system.probabilities, method=method,
                request=request)
        except Exception:  # noqa: BLE001 — degrade to the error outcome
            return None

    def _execute_with_deadline(self, spec: QuerySpec,
                               timeout: float) -> Tuple[Any, bool]:
        """Run one spec, raising :class:`QueryTimeoutError` past ``timeout``.

        The work runs on a deadline-runner thread (reused across queries
        through :class:`_DeadlineRunnerPool`) so the deadline is enforced
        even on the sequential path (``max_workers=1``) and never occupies
        a second pool slot.  On timeout the runner is abandoned — Python
        cannot interrupt it — but it can only finish by writing into the
        shared caches, which stays correct; abandoned runners are counted
        in ``stats()['pool']['deadline_runners']`` and rejoin the pool if
        their task eventually completes.
        """
        box: Dict[str, Any] = {}
        done = threading.Event()
        deadline = time.monotonic() + timeout

        def work() -> None:
            # Runner threads are reused, so reset the thread-local scratch
            # every task: publish the absolute deadline (the fallback
            # ladder skips rungs that no longer fit, the kernel truncates
            # draws) and clear any stale resilience record before carrying
            # the fresh one back across the thread boundary via the box.
            self._tl.deadline = deadline
            self._tl.record = None
            try:
                box["result"] = self._execute_cached(spec)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc
            finally:
                box["record"] = getattr(self._tl, "record", None)
                self._tl.deadline = None
                done.set()

        target = work
        if telemetry.runtime().enabled:
            # Propagate the current span into the deadline thread so the
            # query's sub-spans keep their parent.
            context = contextvars.copy_context()
            target = lambda: context.run(work)  # noqa: E731
        _, task = self._deadline_runners.run(target)
        if not done.wait(timeout):
            self._deadline_runners.abandon(task)
            raise QueryTimeoutError(spec.key, timeout)
        self._tl.record = box.get("record")
        if "error" in box:
            raise box["error"]
        return box["result"]

    # -- per-kind execution ------------------------------------------------------------

    def _execute(self, spec: QuerySpec) -> Any:
        params = spec.params
        hop_limit = params.get("hop_limit")
        if spec.kind == "probability":
            return self.probability(
                spec.key, method=params.get("method"),
                hop_limit=hop_limit, samples=params.get("samples"),
                seed=params.get("seed"))
        if spec.kind == "conditional":
            return self.system.conditional_probability_of(
                spec.key, evidence=params.get("evidence"),
                hop_limit=hop_limit)
        if spec.kind == "explain":
            return self._explain(spec)
        if spec.kind == "derive":
            return self._derive(spec)
        if spec.kind == "influence":
            return self._influence(spec)
        if spec.kind == "modify":
            return self._modify(spec)
        raise ValueError("Unknown query kind %r" % spec.kind)

    def _explain(self, spec: QuerySpec) -> Any:
        from ..queries.explanation import Explanation
        params = spec.params
        limit = self._resolve_hop(params.get("hop_limit"))
        method = self._resolve_method("probability", params.get("method"))
        polynomial = self.polynomial(spec.key, hop_limit=limit)
        value = self.probability(
            spec.key, method=method, hop_limit=limit,
            samples=params.get("samples"), seed=params.get("seed"))
        subgraph = self.system.graph.reachable_subgraph(
            spec.key, hop_limit=limit)
        return Explanation(spec.key, polynomial, subgraph, value,
                           method, limit)

    def _derive(self, spec: QuerySpec) -> Any:
        from ..queries.derivation import derivation_query
        params = spec.params
        polynomial = self.polynomial(
            spec.key, hop_limit=params.get("hop_limit"))
        return derivation_query(
            polynomial, self.system.probabilities, params["epsilon"],
            method=self._resolve_method("derive", params.get("method")))

    def _influence(self, spec: QuerySpec) -> Any:
        from ..queries.influence import influence_query
        params = spec.params
        polynomial = self.polynomial(
            spec.key, hop_limit=params.get("hop_limit"))
        report = influence_query(
            polynomial, self.system.probabilities,
            method=self._resolve_method("influence", params.get("method")),
            samples=self._resolve_samples(params.get("samples")),
            seed=_mix_seed(self._resolve_seed(params.get("seed")), spec.key))
        kind_filter = params.get("kind_filter")
        if kind_filter is not None:
            report = report.filter(lambda lit: lit.kind == kind_filter)
        relation = params.get("relation")
        if relation is not None:
            prefix = relation + "("
            report = report.filter(
                lambda lit: lit.is_tuple and lit.key.startswith(prefix))
        return report

    def _modify(self, spec: QuerySpec) -> Any:
        from ..queries.modification import modification_query
        params = spec.params
        polynomial = self.polynomial(
            spec.key, hop_limit=params.get("hop_limit"))
        if params.get("only_tuples") and params.get("only_rules"):
            # QuerySpec validates this too; re-check here so hand-built
            # specs cannot smuggle the contradiction through.
            raise ValueError(
                "only_tuples and only_rules are mutually exclusive: "
                "together they leave nothing modifiable")
        predicate = None
        if params.get("only_tuples"):
            predicate = lambda lit: lit.is_tuple  # noqa: E731
        if params.get("only_rules"):
            predicate = lambda lit: lit.is_rule  # noqa: E731
        return modification_query(
            polynomial, self.system.probabilities, params["target"],
            strategy=params.get("strategy", "greedy"),
            modifiable=predicate,
            seed=_mix_seed(self._resolve_seed(params.get("seed")), spec.key),
            max_steps=params.get("max_steps"))

    # -- observability -----------------------------------------------------------------

    @property
    def stats_object(self) -> ExecutorStats:
        return self._stats

    @property
    def breaker_board(self) -> Optional[Any]:
        """The shared circuit-breaker board (None without resilience)."""
        return self._breakers

    @property
    def fallback_ladder(self) -> Optional[Any]:
        """The configured fallback ladder (None without resilience)."""
        return self._ladder

    @property
    def polynomial_cache(self) -> LRUCache:
        return self._polynomials

    @property
    def result_cache(self) -> LRUCache:
        return self._results

    def stats(self) -> dict:
        """Counters, per-stage timings, and cache hit rates as a dict."""
        document = self._stats.as_dict(
            polynomial_cache=self._polynomials,
            probability_cache=self._results)
        runners = self._deadline_runners.stats()
        if runners["spawned"]:
            pool = document.setdefault(
                "pool", {"events": {}, "reasons": {}})
            pool["deadline_runners"] = runners
        process_pool = self._process_pool
        if process_pool is not None:
            pool = document.setdefault(
                "pool", {"events": {}, "reasons": {}})
            pool["isolation_workers"] = process_pool.stats()
        return document

    def deadline_runner_stats(self) -> Dict[str, int]:
        """Deadline-runner counters (always present, unlike ``stats()``).

        The service health endpoint reads ``abandoned_live`` from here to
        flip readiness to degraded when wedged threads accumulate.
        """
        return self._deadline_runners.stats()

    def clear_caches(self) -> None:
        self._polynomials.clear()
        self._results.clear()

    def __repr__(self) -> str:
        return "QueryExecutor(workers=%d, %r, %r)" % (
            self.max_workers, self._polynomials, self._results)


def _mix_seed(seed: Optional[int], key: str) -> Optional[int]:
    """Derive a per-query seed: deterministic, but distinct across keys.

    Without mixing, every query in a seeded batch would consume the same
    sample sequence, correlating their Monte-Carlo errors; with it, batch
    results are reproducible regardless of worker scheduling yet
    independent across queries.
    """
    if seed is None:
        return None
    return (seed ^ zlib.crc32(key.encode("utf-8"))) & 0x7FFFFFFF
