"""The four provenance query types of Table 1."""

from .result import QueryResult, RESULT_TYPES, register_result
from .conditional import (
    InconsistentEvidenceError,
    conditional_probability,
    evidence_impact,
    probability_with_negations,
)
from .derivation import (
    SufficientProvenance,
    derivation_query,
    find_match,
    match_probability,
)
from .explanation import Explanation, explanation_query
from .influence import (
    InfluenceReport,
    InfluenceScore,
    exact_influence,
    influence_query,
    joint_influence,
    mc_influence,
    most_synergistic_pairs,
    parallel_influence,
    top_k_influence,
)
from .topk import SearchBudgetExceeded, best_derivation, top_k_derivations
from .whynot import (
    WhyNotCandidate,
    WhyNotReport,
    why_not,
)
from .whatif import (
    WhatIfReport,
    WhatIfTarget,
    delete_from_polynomial,
    lost_tuples,
    surviving_tuples,
    what_if_deletion,
)
from .modification import (
    ModificationError,
    ModificationPlan,
    ModificationStep,
    greedy_strategy,
    modification_query,
    random_strategy,
)

__all__ = [
    "Explanation",
    "InconsistentEvidenceError",
    "QueryResult",
    "RESULT_TYPES",
    "register_result",
    "InfluenceReport",
    "InfluenceScore",
    "ModificationError",
    "ModificationPlan",
    "ModificationStep",
    "SearchBudgetExceeded",
    "SufficientProvenance",
    "WhatIfReport",
    "WhatIfTarget",
    "WhyNotCandidate",
    "WhyNotReport",
    "derivation_query",
    "exact_influence",
    "explanation_query",
    "find_match",
    "greedy_strategy",
    "influence_query",
    "joint_influence",
    "most_synergistic_pairs",
    "match_probability",
    "mc_influence",
    "modification_query",
    "parallel_influence",
    "random_strategy",
    "best_derivation",
    "conditional_probability",
    "delete_from_polynomial",
    "evidence_impact",
    "lost_tuples",
    "probability_with_negations",
    "surviving_tuples",
    "top_k_derivations",
    "top_k_influence",
    "what_if_deletion",
    "why_not",
]
