"""Anytime bounded approximation by iterative deepening.

ProbLog's classic anytime inference (De Raedt, Kimmig & Toivonen, IJCAI
2007 — the paper's [24]) brackets the success probability between two
bounds that tighten as proofs get longer:

- **lower bound**: the probability of the DNF over derivations found so
  far (deeper derivations can only add probability);
- **upper bound**: the probability when every cut-off subgoal is assumed
  true (deeper search can only refute such optimism).

Our hop-limited extraction provides exactly these two polynomials
(:func:`repro.provenance.extraction.extract_bounds`), so the anytime loop
is a simple iterative deepening until the gap closes below ε or the
depth cap is reached.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.errors import InferenceConfigurationError
from ..provenance.extraction import extract_bounds
from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import Polynomial, ProbabilityMap
from .exact import exact_probability

Evaluator = Callable[[Polynomial, ProbabilityMap], float]


class BoundedResult:
    """Outcome of the anytime loop: final bounds plus the trajectory.

    Satisfies the :class:`repro.inference.estimate.Estimate` protocol:
    ``value`` is the interval midpoint, ``stderr`` is None (the bounds
    are certified, not sampled), ``exact`` is True (deterministic in the
    inputs), and ``interval()`` returns the certified ``(lower, upper)``
    bracket rather than a statistical CI.
    """

    #: Deterministic in (graph, probabilities): Estimate-protocol flag.
    exact = True
    #: Certified bounds carry no sampling error.
    stderr: Optional[float] = None

    def __init__(self, lower: float, upper: float, hop_limit: int,
                 converged: bool,
                 history: List[Tuple[int, float, float]]) -> None:
        # Two exact evaluations of a nearly-closed gap can invert the
        # bounds by a few ulps; repair so ``gap`` is never negative.
        if upper < lower:
            upper = lower
        self.lower = lower
        self.upper = upper
        self.hop_limit = hop_limit
        self.converged = converged
        #: (hop limit, lower, upper) per deepening step.
        self.history = history

    @property
    def gap(self) -> float:
        return self.upper - self.lower

    @property
    def estimate(self) -> float:
        """Midpoint of the final interval."""
        return (self.lower + self.upper) / 2.0

    @property
    def value(self) -> float:
        """Estimate-protocol point value: the interval midpoint."""
        return self.estimate

    def interval(self, z: float = 1.96) -> Tuple[float, float]:
        """The certified bounds (``z`` is ignored: nothing is sampled)."""
        return (self.lower, self.upper)

    def __repr__(self) -> str:
        return "BoundedResult([%.6f, %.6f] at hop %d%s)" % (
            self.lower, self.upper, self.hop_limit,
            ", converged" if self.converged else "",
        )


def bounded_probability(graph: ProvenanceGraph, root: str,
                        probabilities: ProbabilityMap,
                        epsilon: float = 0.01,
                        initial_hop_limit: int = 1,
                        max_hop_limit: int = 24,
                        max_monomials: Optional[int] = None,
                        evaluator: Optional[Evaluator] = None
                        ) -> BoundedResult:
    """Iteratively deepen until ``upper − lower ≤ epsilon``.

    Guarantees (given an exact ``evaluator``): every reported interval
    contains the true hop-unbounded success probability P[λ⁰], the lower
    bounds are non-decreasing, and the upper bounds non-increasing.
    """
    if epsilon < 0:
        raise InferenceConfigurationError("epsilon must be non-negative")
    if initial_hop_limit <= 0:
        raise InferenceConfigurationError("initial_hop_limit must be positive")
    if evaluator is None:
        evaluator = exact_probability

    history: List[Tuple[int, float, float]] = []
    best_lower = 0.0
    best_upper = 1.0
    hop_limit = initial_hop_limit
    converged = False

    while True:
        lower_poly, upper_poly = extract_bounds(
            graph, root, hop_limit, max_monomials=max_monomials)
        lower = evaluator(lower_poly, probabilities)
        upper = (1.0 if upper_poly.is_one
                 else evaluator(upper_poly, probabilities))
        # Monotone envelopes guard against evaluator noise.
        best_lower = max(best_lower, lower)
        best_upper = min(best_upper, upper)
        if best_upper < best_lower:
            # Floating error in the two exact evaluations inverted a
            # nearly-closed gap; clamp so the gap is never negative and
            # the convergence check below cannot oscillate.
            best_upper = best_lower
        history.append((hop_limit, best_lower, best_upper))

        if best_upper - best_lower <= epsilon:
            converged = True
            break
        if lower_poly == upper_poly:
            # No frontier was cut: the bounds can never move again.
            converged = best_upper - best_lower <= epsilon
            break
        if hop_limit >= max_hop_limit:
            break
        hop_limit = min(max_hop_limit, hop_limit * 2)

    return BoundedResult(best_lower, best_upper, hop_limit, converged,
                         history)
