"""Process-isolated inference workers: the execution rung threads cannot be.

Everything else in the resilience layer works around one Python fact:
a thread cannot be killed.  The deadline runners *abandon* wedged
threads, the pool supervisor *abandons* hung pools — the wedged
computation keeps burning CPU and holding memory until it finishes or
the process dies, and one segfault inside the NumPy kernel takes every
tenant down with it.  This module supplies the missing primitive: a
small pool of **spawn-based subprocess workers** speaking a pickle-framed
request/response protocol over pipes, giving three guarantees threads
cannot:

- **Hard cancellation.**  A worker past its deadline is SIGKILLed and
  replaced; the CPU and RSS it held are reclaimed by the kernel, not
  leaked into an abandoned-thread count.
- **Memory caps.**  Each worker applies ``resource.setrlimit(RLIMIT_AS)``
  at startup, so a polynomial that would have OOMed the service instead
  produces a typed :class:`~repro.core.errors.WorkerMemoryError`.
- **Crash containment.**  A worker that segfaults, gets OOM-killed, or
  is SIGKILLed from outside yields a typed
  :class:`~repro.core.errors.WorkerCrashError` outcome and a respawned
  worker — never a dead service.

The executor routes backend calls here when
``P3Config(isolation="process")`` (or ``"auto"``) is set, and the
fallback ladder per-rung via ``FallbackRung(isolation="process")``.
Workers are spawned lazily (a spawn costs an interpreter boot plus the
NumPy import) and reused across requests, so steady-state overhead is
one pickle round-trip per inference call.

Fault injection for the chaos harness rides the same wire protocol: a
payload may carry a ``fault`` directive (``"kill9"``, ``"oom"``,
``"wedge-native"``) that the worker executes *instead of* the backend,
exercising the real crash/OOM/kill recovery paths end to end.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..core.errors import (
    TransientInferenceError,
    WorkerCrashError,
    WorkerMemoryError,
    WorkerTimeoutError,
)

__all__ = [
    "ProcessWorkerPool",
    "WORKER_FAULTS",
    "process_isolation_supported",
]

#: Fault directives a worker understands (chaos harness only; production
#: payloads never set one).
WORKER_FAULTS: Tuple[str, ...] = ("kill9", "oom", "wedge-native")

#: Default number of resident workers.  Two is deliberate: one absorbs a
#: wedge/kill while the other keeps answering, and each spawn costs an
#: interpreter boot plus the NumPy import (~1s), so large pools are paid
#: for up front.
DEFAULT_WORKERS = 2

#: How long a checkout waits for a busy pool before giving up.
_CHECKOUT_TIMEOUT = 60.0


def process_isolation_supported() -> bool:
    """Can this platform run the process-isolation rung?

    Spawn-based ``multiprocessing`` exists everywhere, but hard
    cancellation (SIGKILL) and memory caps (``resource``) are POSIX; the
    ``"auto"`` isolation mode falls back to threads elsewhere.
    """
    return os.name == "posix"


# ---------------------------------------------------------------------------
# Worker side (runs in the spawned child process)
# ---------------------------------------------------------------------------

def _apply_memory_cap(limit_bytes: Optional[int]) -> None:
    if not limit_bytes:
        return
    try:
        import resource
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit_bytes = min(limit_bytes, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, hard))
    except (ImportError, ValueError, OSError):
        pass  # unsupported platform: cap is advisory there


def _run_fault(fault: str, memory_capped: bool) -> None:
    """Execute a chaos fault directive inside the worker."""
    if fault == "kill9":
        # Self-inflicted SIGKILL: from the parent's side this is
        # indistinguishable from an external `kill -9` or the kernel's
        # OOM killer — the pipe just goes dead.
        os.kill(os.getpid(), 9)
    if fault == "wedge-native":
        # A busy loop no signal handler or deadline check will ever
        # interrupt — the stand-in for a wedged native kernel.  Only
        # SIGKILL ends it.
        while True:
            sum(range(1024))
    if fault == "oom":
        if not memory_capped:
            # Without an RLIMIT_AS cap a real allocation loop would eat
            # the host; synthesize the MemoryError the cap would raise.
            raise MemoryError("injected oom (no RLIMIT_AS cap configured)")
        hog: List[bytearray] = []
        while True:
            hog.append(bytearray(16 * 1024 * 1024))
    raise ValueError("Unknown worker fault %r" % fault)


def _serve_one(payload: Dict[str, Any], memory_capped: bool) -> Tuple[str, Any]:
    """(status, reply-payload) for one request; never raises."""
    try:
        fault = payload.get("fault")
        if fault is not None:
            _run_fault(fault, memory_capped)
        from ..inference.registry import get_backend
        from ..inference.request import InferenceRequest
        backend = get_backend(payload["method"])
        request = InferenceRequest(**payload["request"])
        reading = backend.run(
            payload["polynomial"], payload["probabilities"], request)
        return ("ok", reading)
    except MemoryError as exc:
        return ("memory", str(exc))
    except BaseException as exc:  # noqa: BLE001 — shipped back typed
        try:
            pickle.dumps(exc)
            return ("error", exc)
        except Exception:  # unpicklable exception: ship the description
            return ("error", "%s: %s" % (type(exc).__name__, exc))


def _worker_rss_bytes() -> int:
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        return int(usage.ru_maxrss) * scale
    except (ImportError, AttributeError, OSError):
        return 0


def _worker_main(conn: Any, memory_limit_bytes: Optional[int]) -> None:
    """Entry point of a spawned worker: serve requests until EOF/None.

    The memory cap is applied *after* interpreter boot (the NumPy import
    alone needs ~100MB of address space), so ``memory_limit_bytes``
    bounds the per-request growth on top of the baseline image.
    """
    import signal
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns Ctrl-C
    except (ValueError, OSError):
        pass
    # Import the registry (and NumPy underneath) before the cap lands.
    from ..inference import registry as _registry  # noqa: F401
    _apply_memory_cap(memory_limit_bytes)
    memory_capped = bool(memory_limit_bytes)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        request_id, payload = message
        status, reply = _serve_one(payload, memory_capped)
        try:
            conn.send({"id": request_id, "status": status, "payload": reply,
                       "rss": _worker_rss_bytes()})
        except (OSError, ValueError, pickle.PicklingError):
            return  # parent is gone or reply unshippable; die quietly


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class _Worker:
    """One live subprocess plus its parent-side pipe end."""

    __slots__ = ("process", "conn", "requests")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.requests = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessWorkerPool:
    """A fixed-size pool of spawn-based inference workers.

    Parameters
    ----------
    workers:
        Resident worker count.  Callers block (bounded) when all are
        busy, so this also caps concurrent isolated inference.
    memory_limit_bytes:
        Per-worker ``RLIMIT_AS`` cap applied after interpreter boot
        (None = uncapped).  A worker that hits it answers the in-flight
        request with a typed :class:`WorkerMemoryError`.
    spawn_timeout:
        How long to wait for a fresh worker's process to start.

    Thread-safe: executor worker threads submit concurrently; each
    request occupies one worker for its duration.  Workers are spawned
    lazily and respawned after any death (timeout kill, crash, chaos
    fault), so the pool converges back to ``workers`` live processes.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 memory_limit_bytes: Optional[int] = None,
                 spawn_timeout: float = 120.0) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if memory_limit_bytes is not None and memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive or None")
        import multiprocessing
        self.workers = workers
        self.memory_limit_bytes = memory_limit_bytes
        self.spawn_timeout = spawn_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._cond = threading.Condition()
        self._idle: List[_Worker] = []
        self._live = 0
        self._closed = False
        self._ids = itertools.count(1)
        # Counters (under _cond's lock).
        self._spawned = 0
        self._respawned = 0
        self._killed = 0
        self._crashed = 0
        self._memory_trips = 0
        self._requests = 0
        self._deaths = 0
        self._max_rss = 0

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.memory_limit_bytes),
            name="p3-isolated-worker", daemon=True)
        process.start()
        child_conn.close()
        with self._cond:
            self._spawned += 1
            if self._respawned < self._deaths:
                self._respawned += 1
                self._count("p3_isolation_respawns_total",
                            "Isolated inference workers respawned after "
                            "a death")
        return _Worker(process, parent_conn)

    def _destroy(self, worker: _Worker, how: str) -> None:
        """Tear one worker down and record why (``killed``/``crashed``)."""
        try:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5.0)
        except (OSError, ValueError, AttributeError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        with self._cond:
            self._deaths += 1
            if how == "killed":
                self._killed += 1
                self._count("p3_isolation_kills_total",
                            "Isolated workers SIGKILLed past a deadline")
            else:
                self._crashed += 1
                self._count("p3_isolation_crashes_total",
                            "Isolated workers that died mid-request")

    def _checkout(self, timeout: Optional[float]) -> _Worker:
        wait_budget = min(_CHECKOUT_TIMEOUT, timeout or _CHECKOUT_TIMEOUT)
        deadline = time.monotonic() + wait_budget
        spawn_needed = False
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("ProcessWorkerPool is closed")
                while self._idle:
                    worker = self._idle.pop()
                    if worker.alive():
                        return worker
                    # Died while idle (external kill): replace lazily.
                    self._live -= 1
                    self._reap_idle_death(worker)
                if self._live < self.workers:
                    self._live += 1
                    spawn_needed = True
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerTimeoutError("(pool)", wait_budget)
                self._cond.wait(timeout=remaining)
        try:
            return self._spawn()
        except BaseException:
            with self._cond:
                self._live -= 1
                self._cond.notify()
            raise

    def _reap_idle_death(self, worker: _Worker) -> None:
        # Called under the lock: only bookkeeping, no joins.
        self._deaths += 1
        self._crashed += 1
        try:
            worker.conn.close()
        except OSError:
            pass

    def _checkin(self, worker: _Worker, healthy: bool) -> None:
        with self._cond:
            if healthy and not self._closed and worker.alive():
                self._idle.append(worker)
            else:
                self._live -= 1
            self._cond.notify()
        if not healthy:
            # _destroy already ran (or the worker is dead) — nothing to
            # do; destruction happens at the failure site so the exit
            # code is collected before the error is raised.
            pass
        elif self._closed:
            self._shutdown_worker(worker)

    # -- the request/response exchange -------------------------------------

    def submit(self, method: str, polynomial: Any, probabilities: Any,
               request: Any = None, timeout: Optional[float] = None,
               fault: Optional[str] = None) -> Any:
        """Run ``method`` on an isolated worker; returns a BackendReading.

        ``timeout`` (and/or ``request.deadline``) bounds the exchange:
        past it the worker is SIGKILLed and :class:`WorkerTimeoutError`
        raised.  A worker death raises :class:`WorkerCrashError`; a blown
        memory cap raises :class:`WorkerMemoryError`.  All three are
        absorbed by the fallback ladder.
        """
        from ..inference.request import InferenceRequest
        request = InferenceRequest.coerce(request)
        effective = timeout
        if request.deadline is not None:
            remaining = request.deadline - time.monotonic()
            effective = (remaining if effective is None
                         else min(effective, remaining))
        if effective is not None and effective <= 0:
            raise WorkerTimeoutError(method, max(effective, 0.0))
        if fault is not None and fault not in WORKER_FAULTS:
            raise ValueError("Unknown worker fault %r" % fault)
        payload = {
            "method": method,
            "polynomial": polynomial,
            "probabilities": dict(probabilities),
            "request": self._wire_request(request),
            "fault": fault,
        }
        worker = self._checkout(effective)
        healthy = False
        try:
            reply = self._exchange(worker, payload, effective, method)
            healthy = True
        finally:
            self._checkin(worker, healthy)
        return self._interpret(reply, method)

    def _wire_request(self, request: Any) -> Dict[str, Any]:
        fields = {name: getattr(request, name)
                  for name in request.__slots__}
        budget = fields.get("budget")
        if budget is not None:
            try:
                pickle.dumps(budget)
            except Exception:
                fields["budget"] = None  # meter ambience stays parent-side
        return fields

    def _exchange(self, worker: _Worker, payload: Dict[str, Any],
                  timeout: Optional[float], method: str) -> Dict[str, Any]:
        request_id = next(self._ids)
        with self._cond:
            self._requests += 1
        worker.requests += 1
        try:
            worker.conn.send((request_id, payload))
        except (OSError, ValueError, BrokenPipeError) as exc:
            exitcode = self._collect_exit(worker)
            self._destroy(worker, "crashed")
            raise WorkerCrashError(method, exitcode,
                                   detail="send failed: %s" % exc)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._destroy(worker, "killed")
                    raise WorkerTimeoutError(method, timeout)
            try:
                ready = worker.conn.poll(remaining)
            except (OSError, EOFError):
                exitcode = self._collect_exit(worker)
                self._destroy(worker, "crashed")
                raise WorkerCrashError(method, exitcode)
            if not ready:
                self._destroy(worker, "killed")
                raise WorkerTimeoutError(method, timeout or 0.0)
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                exitcode = self._collect_exit(worker)
                self._destroy(worker, "crashed")
                raise WorkerCrashError(method, exitcode)
            except Exception as exc:  # unpicklable/corrupt frame
                self._destroy(worker, "crashed")
                raise WorkerCrashError(method, None,
                                       detail="bad frame: %s" % exc)
            if isinstance(reply, dict) and reply.get("id") == request_id:
                self._note_rss(reply.get("rss") or 0)
                return reply
            # A frame for a request this pool no longer remembers (can
            # only happen after a protocol bug): drop the worker rather
            # than trust its stream.
            self._destroy(worker, "crashed")
            raise WorkerCrashError(method, None, detail="protocol desync")

    def _collect_exit(self, worker: _Worker) -> Optional[int]:
        try:
            worker.process.join(timeout=2.0)
            return worker.process.exitcode
        except (OSError, ValueError, AssertionError):
            return None

    def _interpret(self, reply: Dict[str, Any], method: str) -> Any:
        status = reply.get("status")
        payload = reply.get("payload")
        if status == "ok":
            return payload
        if status == "memory":
            with self._cond:
                self._memory_trips += 1
            self._count("p3_isolation_memory_trips_total",
                        "Worker requests that hit the RLIMIT_AS cap")
            raise WorkerMemoryError(method, self.memory_limit_bytes,
                                    detail=str(payload))
        if isinstance(payload, BaseException):
            raise payload
        raise TransientInferenceError(
            "Isolated worker failed: %s" % (payload,))

    def _note_rss(self, rss: int) -> None:
        with self._cond:
            if rss > self._max_rss:
                self._max_rss = rss
        rt = telemetry.runtime()
        if rt.enabled and rss:
            rt.metrics.gauge(
                "p3_isolation_worker_rss_bytes",
                "Peak RSS reported by isolated inference workers"
            ).labels().set(float(self._max_rss))

    @staticmethod
    def _count(name: str, help_text: str) -> None:
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(name, help=help_text).inc()

    # -- shutdown and introspection -----------------------------------------

    def _shutdown_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.send(None)
        except (OSError, ValueError):
            pass
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def close(self) -> None:
        """Stop all idle workers; busy ones die when their request ends."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._live -= len(idle)
            self._cond.notify_all()
        for worker in idle:
            self._shutdown_worker(worker)

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def live_workers(self) -> int:
        with self._cond:
            return self._live

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "workers": self.workers,
                "live": self._live,
                "idle": len(self._idle),
                "spawned": self._spawned,
                "respawned": self._respawned,
                "killed": self._killed,
                "crashed": self._crashed,
                "memory_trips": self._memory_trips,
                "requests": self._requests,
                "max_rss_bytes": self._max_rss,
            }

    def __repr__(self) -> str:
        return "ProcessWorkerPool(%d workers, %d live)" % (
            self.workers, self.live_workers())
