"""Extension bench — incremental insertion vs from-scratch re-evaluation.

Base data changes in live systems; re-running the whole program per
insertion wastes the provenance already captured.  This ablation inserts
trust edges one at a time into an evaluated sample and compares the
incremental delta evaluation against full re-evaluation, verifying the
models stay identical.
"""

import time

from repro.datalog.ast import Fact
from repro.datalog.engine import Engine
from repro.datalog.incremental import IncrementalSession
from repro.datalog.terms import atom as make_atom

from reporting import record_table
from workloads import bfs_sample

INSERTIONS = 5


def test_ablation_incremental_insertion(benchmark):
    sample = bfs_sample(40, seed=1)
    nodes = sorted(sample.nodes)
    # Fresh edges between existing nodes (not already present).
    new_edges = []
    for src in nodes:
        for dst in reversed(nodes):
            if src != dst and (src, dst) not in sample.edges:
                new_edges.append((src, dst))
                break
        if len(new_edges) >= INSERTIONS:
            break

    session = IncrementalSession(sample.to_program(), capture_tables=False)
    base_atoms = session.database.count()

    rows = []
    accumulated_source = str(sample.to_program())
    for index, (src, dst) in enumerate(new_edges):
        fact = Fact(make_atom("trust", src, dst), 0.6, "new%d" % index)
        accumulated_source += "\nnew%d 0.6: trust(%d,%d)." % (index, src, dst)

        start = time.perf_counter()
        delta = session.add_fact(fact)
        incremental_time = time.perf_counter() - start

        start = time.perf_counter()
        from repro.datalog.parser import parse_program
        full = Engine(parse_program(accumulated_source),
                      capture_tables=False).run()
        scratch_time = time.perf_counter() - start

        # Identical models.
        assert ({str(a) for a in session.database.atoms()}
                == {str(a) for a in full.database.atoms()})
        rows.append(["trust(%d,%d)" % (src, dst), delta.firing_count,
                     incremental_time, scratch_time,
                     scratch_time / max(incremental_time, 1e-9)])

    record_table(
        "ablation_incremental",
        "Extension: incremental insertion vs from-scratch re-evaluation "
        "(40-node sample, %d tuples initially)" % base_atoms,
        ["inserted edge", "delta firings", "incremental (s)",
         "scratch (s)", "speedup"],
        rows,
    )

    speedups = [row[4] for row in rows]
    assert sum(speedups) / len(speedups) > 2

    def run_one():
        fresh = IncrementalSession(sample.to_program(),
                                   capture_tables=False)
        src, dst = new_edges[0]
        fresh.add_fact(Fact(make_atom("trust", src, dst), 0.6, "bench"))

    benchmark.pedantic(run_one, rounds=2, iterations=1)
