"""Serialization of programs, graphs, and polynomials."""

from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    graph_from_json,
    graph_to_json,
    literal_from_json,
    literal_to_json,
    load_session,
    polynomial_from_json,
    polynomial_to_json,
    program_from_json,
    program_to_json,
    save_session,
    session_from_json,
    session_to_json,
)

__all__ = [
    "FORMAT_VERSION",
    "SerializationError",
    "graph_from_json",
    "graph_to_json",
    "literal_from_json",
    "literal_to_json",
    "load_session",
    "polynomial_from_json",
    "polynomial_to_json",
    "program_from_json",
    "program_to_json",
    "save_session",
    "session_from_json",
    "session_to_json",
]
