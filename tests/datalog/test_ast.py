"""Unit tests for facts, rules, and programs."""

import pytest

from repro.datalog.ast import ClauseError, Fact, Program, Rule
from repro.datalog.builtins import Comparison
from repro.datalog.terms import Atom, Variable, atom


X = Variable("X")
Y = Variable("Y")
Z = Variable("Z")


def rule(head, body, constraints=(), probability=1.0, label=None):
    return Rule(head, body, constraints, probability, label)


class TestFact:
    def test_defaults(self):
        fact = Fact(atom("p", 1))
        assert fact.probability == 1.0
        assert fact.label is None

    def test_probabilistic(self):
        assert Fact(atom("p", 1), 0.3).is_probabilistic
        assert not Fact(atom("p", 1), 1.0).is_probabilistic

    def test_rejects_nonground(self):
        with pytest.raises(ClauseError):
            Fact(Atom("p", (X,)))

    def test_rejects_bad_probability(self):
        with pytest.raises(ClauseError):
            Fact(atom("p", 1), 1.5)
        with pytest.raises(ClauseError):
            Fact(atom("p", 1), -0.1)

    def test_str(self):
        fact = Fact(atom("live", "Steve", "DC"), 0.5, "t1")
        assert str(fact) == 't1 0.5: live("Steve","DC").'

    def test_equality(self):
        assert Fact(atom("p", 1), 0.5, "t1") == Fact(atom("p", 1), 0.5, "t1")
        assert Fact(atom("p", 1), 0.5) != Fact(atom("p", 1), 0.6)


class TestRule:
    def test_simple(self):
        r = rule(Atom("q", (X,)), [Atom("p", (X,))])
        assert r.head.relation == "q"
        assert len(r.body) == 1

    def test_rejects_empty_body(self):
        with pytest.raises(ClauseError):
            rule(Atom("q", (X,)), [])

    def test_rejects_unsafe_head(self):
        with pytest.raises(ClauseError) as excinfo:
            rule(Atom("q", (X, Y)), [Atom("p", (X,))])
        assert "Unsafe" in str(excinfo.value)

    def test_rejects_unsafe_guard(self):
        with pytest.raises(ClauseError):
            rule(Atom("q", (X,)), [Atom("p", (X,))],
                 [Comparison("!=", X, Y)])

    def test_guard_with_constant_is_safe(self):
        r = rule(Atom("q", (X,)), [Atom("p", (X,))],
                 [Comparison("<", X, atom("c", 3).args[0])])
        assert len(r.constraints) == 1

    def test_rejects_bad_probability(self):
        with pytest.raises(ClauseError):
            rule(Atom("q", (X,)), [Atom("p", (X,))], probability=2.0)

    def test_is_recursive(self):
        recursive = rule(Atom("p", (X,)), [Atom("p", (X,))])
        assert recursive.is_recursive
        flat = rule(Atom("q", (X,)), [Atom("p", (X,))])
        assert not flat.is_recursive

    def test_variables(self):
        r = rule(Atom("q", (X,)), [Atom("p", (X, Y))],
                 [Comparison("!=", X, Y)])
        assert r.variables() == {X, Y}

    def test_str(self):
        r = rule(Atom("q", (X,)), [Atom("p", (X, Y))],
                 [Comparison("!=", X, Y)], 0.8, "r1")
        assert str(r) == "r1 0.8: q(X) :- p(X,Y), X!=Y."


class TestProgram:
    def test_collects_facts_and_rules(self):
        program = Program([
            Fact(atom("p", 1)),
            rule(Atom("q", (X,)), [Atom("p", (X,))]),
        ])
        assert len(program.facts) == 1
        assert len(program.rules) == 1
        assert len(program) == 2

    def test_auto_labels(self):
        program = Program()
        program.add(Fact(atom("p", 1)))
        program.add(Fact(atom("p", 2)))
        program.add(rule(Atom("q", (X,)), [Atom("p", (X,))]))
        assert [fact.label for fact in program.facts] == ["t1", "t2"]
        assert program.rules[0].label == "r1"

    def test_auto_label_skips_taken(self):
        program = Program()
        program.add(Fact(atom("p", 1), label="t1"))
        program.add(Fact(atom("p", 2)))
        assert program.facts[1].label == "t2"

    def test_rejects_duplicate_labels(self):
        program = Program()
        program.add(Fact(atom("p", 1), label="t1"))
        with pytest.raises(ClauseError):
            program.add(Fact(atom("p", 2), label="t1"))

    def test_rejects_non_clause(self):
        with pytest.raises(TypeError):
            Program().add("nope")

    def test_lookup_by_label(self):
        program = Program()
        program.add(Fact(atom("p", 1), label="t9"))
        program.add(rule(Atom("q", (X,)), [Atom("p", (X,))], label="r9"))
        assert program.fact_by_label("t9").atom == atom("p", 1)
        assert program.rule_by_label("r9").head.relation == "q"
        with pytest.raises(KeyError):
            program.rule_by_label("missing")
        with pytest.raises(KeyError):
            program.fact_by_label("missing")

    def test_relations_partition(self):
        program = Program([
            Fact(atom("p", 1)),
            rule(Atom("q", (X,)), [Atom("p", (X,))]),
        ])
        assert program.relations() == {"p", "q"}
        assert program.idb_relations() == {"q"}
        assert program.edb_relations() == {"p"}

    def test_idb_relation_with_facts_not_edb(self):
        # know/2 has both base facts and rules (the Acquaintance shape).
        program = Program([
            Fact(atom("know", "a", "b")),
            rule(Atom("know", (X, Y)), [Atom("met", (X, Y))]),
        ])
        assert program.idb_relations() == {"know"}
        assert "know" not in program.edb_relations()

    def test_dependency_pairs(self):
        program = Program([
            rule(Atom("q", (X,)), [Atom("p", (X,)), Atom("s", (X,))]),
        ])
        assert set(program.dependency_pairs()) == {("q", "p"), ("q", "s")}

    def test_probabilities(self):
        program = Program([
            Fact(atom("p", 1), 0.3, "t1"),
            rule(Atom("q", (X,)), [Atom("p", (X,))], probability=0.8,
                 label="r1"),
        ])
        assert program.probabilities() == {"t1": 0.3, "r1": 0.8}

    def test_round_trip_str(self):
        from repro.datalog.parser import parse_program
        program = Program([
            Fact(atom("live", "Steve", "DC"), 0.5, "t1"),
            rule(Atom("q", (X,)), [Atom("live", (X, Y))], probability=0.8,
                 label="r1"),
        ])
        reparsed = parse_program(str(program))
        assert str(reparsed) == str(program)
