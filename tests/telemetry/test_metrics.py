"""Metrics registry unit tests: counters, gauges, histograms, exporters."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("hits")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self, registry):
        counter = registry.counter("requests", labelnames=("outcome",))
        counter.inc(outcome="hit")
        counter.inc(outcome="hit")
        counter.inc(outcome="miss")
        assert counter.value(outcome="hit") == 2.0
        assert counter.value(outcome="miss") == 1.0
        assert counter.series_count() == 2

    def test_rejects_negative_increment(self, registry):
        counter = registry.counter("hits")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1.0)

    def test_rejects_wrong_label_set(self, registry):
        counter = registry.counter("requests", labelnames=("outcome",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc()
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(outcome="hit", extra="nope")


class TestGauge:
    def test_set_and_inc(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(4.0)
        assert gauge.value() == 4.0
        gauge.inc(-1.5)
        assert gauge.value() == 2.5


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self, registry):
        histogram = registry.histogram(
            "latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        counts = {b["le"]: b["count"] for b in snapshot["buckets"]}
        assert counts == {0.01: 1, 0.1: 3, 1.0: 3, "+Inf": 4}
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(5.105)

    def test_observation_on_bucket_bound_counts_in_that_bucket(
            self, registry):
        histogram = registry.histogram("latency", buckets=(0.01, 0.1))
        histogram.observe(0.01)
        counts = {b["le"]: b["count"]
                  for b in histogram.snapshot()["buckets"]}
        assert counts[0.01] == 1

    def test_snapshot_of_unobserved_series_is_none(self, registry):
        histogram = registry.histogram("latency", labelnames=("backend",))
        assert histogram.snapshot(backend="exact") is None

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(0.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(float("inf"),))

    def test_default_buckets_span_latency_range(self, registry):
        histogram = registry.histogram("latency")
        assert histogram.buckets == LATENCY_BUCKETS_SECONDS
        assert histogram.buckets[0] == 0.0001
        assert histogram.buckets[-1] == 10.0


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("hits", labelnames=("cache",))
        second = registry.counter("hits", labelnames=("cache",))
        assert first is second

    def test_kind_mismatch_raises(self, registry):
        registry.counter("hits")
        with pytest.raises(ValueError, match="already registered as"):
            registry.gauge("hits")

    def test_label_mismatch_raises(self, registry):
        registry.counter("hits", labelnames=("cache",))
        with pytest.raises(ValueError, match="already registered with"):
            registry.counter("hits", labelnames=("outcome",))

    def test_get_and_names(self, registry):
        counter = registry.counter("b_metric")
        registry.gauge("a_metric")
        assert registry.get("b_metric") is counter
        assert registry.get("missing") is None
        assert registry.names() == ["a_metric", "b_metric"]

    def test_to_json_is_sorted_and_complete(self, registry):
        registry.counter("z_counter").inc()
        registry.histogram("a_hist", buckets=(1.0,)).observe(0.5)
        documents = registry.to_json()
        assert [d["name"] for d in documents] == ["a_hist", "z_counter"]
        assert documents[0]["type"] == "histogram"
        assert documents[1]["series"] == [{"labels": {}, "value": 1.0}]


class TestPrometheusExport:
    def test_counter_lines(self, registry):
        counter = registry.counter(
            "p3_queries_total", help="Executor queries.",
            labelnames=("kind",))
        counter.inc(3, kind="explain")
        text = registry.to_prometheus()
        assert "# HELP p3_queries_total Executor queries.\n" in text
        assert "# TYPE p3_queries_total counter\n" in text
        assert 'p3_queries_total{kind="explain"} 3\n' in text

    def test_histogram_lines_are_cumulative(self, registry):
        histogram = registry.histogram(
            "p3_infer_seconds", labelnames=("backend",),
            buckets=(0.01, 0.1))
        histogram.observe(0.005, backend="exact")
        histogram.observe(0.05, backend="exact")
        text = registry.to_prometheus()
        assert "# TYPE p3_infer_seconds histogram\n" in text
        assert ('p3_infer_seconds_bucket{backend="exact",le="0.01"} 1\n'
                in text)
        assert ('p3_infer_seconds_bucket{backend="exact",le="0.1"} 2\n'
                in text)
        assert ('p3_infer_seconds_bucket{backend="exact",le="+Inf"} 2\n'
                in text)
        assert 'p3_infer_seconds_sum{backend="exact"} 0.055' in text
        assert 'p3_infer_seconds_count{backend="exact"} 2\n' in text

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("odd", labelnames=("key",))
        counter.inc(key='say "hi"\nback\\slash')
        text = registry.to_prometheus()
        assert r'key="say \"hi\"\nback\\slash"' in text

    def test_integer_like_values_render_without_decimal(self, registry):
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(0.25)
        text = registry.to_prometheus()
        assert "\nc 2\n" in text or text.startswith("# TYPE c counter\nc 2\n")
        assert "g 0.25" in text

    def test_empty_registry_exports_empty_text(self, registry):
        assert registry.to_prometheus() == ""

    def test_export_is_deterministic(self, registry):
        registry.counter("b").inc()
        registry.counter("a", labelnames=("x",)).inc(x="2")
        registry.counter("a", labelnames=("x",)).inc(x="1")
        assert registry.to_prometheus() == registry.to_prometheus()
        lines = registry.to_prometheus().splitlines()
        assert lines.index('a{x="1"} 1') < lines.index('a{x="2"} 1')


def test_metric_classes_importable_directly():
    assert Counter.kind == "counter"
    assert Gauge.kind == "gauge"
    assert Histogram.kind == "histogram"
