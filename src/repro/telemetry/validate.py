"""Structural validation of exported traces.

Used by the test suite and by CI's telemetry smoke step::

    PYTHONPATH=src python -m repro.telemetry.validate trace.jsonl

Checks, per trace id: exactly one root span, every ``parent_id``
resolves to a span of the same trace, no parent cycles, and every
child's ``[start, end]`` interval lies inside its parent's (the
monotonic nanosecond clock is shared across threads, so containment is
exact).  Exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Sequence

REQUIRED_FIELDS = ("trace_id", "span_id", "parent_id", "name",
                   "start_ns", "duration_ns")


def validate_span_dicts(spans: Sequence[dict]) -> List[str]:
    """Every structural problem in a list of exported span dicts."""
    problems: List[str] = []
    by_trace: Dict[str, Dict[str, dict]] = {}
    for index, span in enumerate(spans):
        missing = [field for field in REQUIRED_FIELDS if field not in span]
        if missing:
            problems.append(
                "span #%d is missing fields: %s"
                % (index, ", ".join(missing)))
            continue
        trace = by_trace.setdefault(span["trace_id"], {})
        if span["span_id"] in trace:
            problems.append("duplicate span id %r in trace %r"
                            % (span["span_id"], span["trace_id"]))
            continue
        trace[span["span_id"]] = span

    for trace_id, trace in sorted(by_trace.items()):
        roots = [span for span in trace.values()
                 if span["parent_id"] is None]
        if len(roots) != 1:
            problems.append(
                "trace %r has %d root spans (expected exactly 1)"
                % (trace_id, len(roots)))
        for span in trace.values():
            parent_id = span["parent_id"]
            if parent_id is None:
                continue
            parent = trace.get(parent_id)
            if parent is None:
                problems.append(
                    "span %r (%s) names missing parent %r in trace %r"
                    % (span["span_id"], span["name"], parent_id, trace_id))
                continue
            start, end = span["start_ns"], span["start_ns"] + span["duration_ns"]
            pstart = parent["start_ns"]
            pend = pstart + parent["duration_ns"]
            if start < pstart or end > pend:
                problems.append(
                    "span %r (%s) [%d, %d] escapes parent %r (%s) [%d, %d]"
                    % (span["span_id"], span["name"], start, end,
                       parent_id, parent["name"], pstart, pend))
        # Walking each span to a root both bounds depth and catches cycles.
        for span in trace.values():
            seen = set()
            cursor = span
            while cursor["parent_id"] is not None:
                if cursor["span_id"] in seen:
                    problems.append("parent cycle at span %r in trace %r"
                                    % (span["span_id"], trace_id))
                    break
                seen.add(cursor["span_id"])
                cursor = trace.get(cursor["parent_id"])
                if cursor is None:
                    break
    return problems


def load_jsonl(path: str) -> List[dict]:
    """Parse a ``--trace-out`` JSONL file; raises ValueError on bad lines."""
    spans: List[dict] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    "%s:%d: not valid JSON: %s" % (path, number, exc))
            if not isinstance(document, dict):
                raise ValueError(
                    "%s:%d: expected a JSON object" % (path, number))
            spans.append(document)
    return spans


def main(argv: Sequence[str] = ()) -> int:
    argv = list(argv) or sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.validate TRACE_JSONL",
              file=sys.stderr)
        return 2
    try:
        spans = load_jsonl(argv[0])
    except (OSError, ValueError) as exc:
        print("trace validation: %s" % exc, file=sys.stderr)
        return 1
    if not spans:
        print("trace validation: %s holds no spans" % argv[0],
              file=sys.stderr)
        return 1
    problems = validate_span_dicts(spans)
    if problems:
        for problem in problems:
            print("trace validation: %s" % problem, file=sys.stderr)
        return 1
    traces = len({span.get("trace_id") for span in spans})
    print("trace validation: %d spans across %d trace(s), all nested "
          "correctly" % (len(spans), traces))
    return 0


if __name__ == "__main__":
    sys.exit(main())
