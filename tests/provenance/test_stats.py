"""Unit tests for provenance statistics."""

import pytest

from tests.conftest import make_polynomial

from repro.provenance.polynomial import Polynomial
from repro.provenance.stats import (
    graph_stats,
    monomial_probability_histogram,
    polynomial_stats,
    summarize,
)


class TestPolynomialStats:
    def test_counts(self):
        poly = make_polynomial(("r1", "a", "b"), ("r2", "c"))
        stats = polynomial_stats(poly)
        assert stats.monomials == 2
        assert stats.literals == 5
        assert stats.rule_literals == 2
        assert stats.tuple_literals == 3

    def test_width_distribution(self):
        poly = make_polynomial(("a",), ("b", "c", "d"))
        stats = polynomial_stats(poly)
        assert stats.min_width == 1
        assert stats.max_width == 3
        assert stats.mean_width == pytest.approx(2.0)

    def test_empty(self):
        stats = polynomial_stats(Polynomial.zero())
        assert stats.monomials == 0
        assert stats.mean_width == 0.0


class TestHistogram:
    def test_counts_cover_all_monomials(self):
        poly = make_polynomial(("a",), ("b",), ("a", "b"))
        probs = {lit: 0.5 for lit in poly.literals()}
        buckets = monomial_probability_histogram(poly, probs, bins=4)
        assert sum(count for _, _, count in buckets) == len(poly)

    def test_log_scale_for_wide_range(self):
        poly = make_polynomial(("a",), ("b", "c", "d", "e"))
        probs = {}
        for lit in poly.literals():
            probs[lit] = 0.9 if lit.key == "a" else 0.05
        buckets = monomial_probability_histogram(poly, probs, bins=5)
        assert buckets[0][0] < buckets[-1][1]

    def test_empty_polynomial(self):
        assert monomial_probability_histogram(Polynomial.zero(), {}) == []

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            monomial_probability_histogram(Polynomial.zero(), {}, bins=0)


class TestGraphStats:
    def test_acquaintance_counts(self, acquaintance):
        stats = graph_stats(acquaintance.graph)
        assert stats.base_tuples == 6
        assert stats.rules == 3
        assert stats.tuples == stats.base_tuples + 3  # 3 purely derived
        assert stats.executions == 6
        assert stats.max_derivations_per_tuple >= 2

    def test_summary_text(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        text = summarize(acquaintance.graph, poly,
                         acquaintance.probabilities)
        assert "Provenance graph" in text
        assert "Polynomial: 2 monomials" in text
        assert "monomial probabilities" in text

    def test_summary_without_polynomial(self, acquaintance):
        text = summarize(acquaintance.graph)
        assert "Polynomial" not in text
