"""Unit tests for the executor's bounded LRU cache."""

import threading

import pytest

from repro.exec.cache import LRUCache


class TestBasics:
    def test_get_put(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_len_contains_keys(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2
        assert "a" in cache
        assert "c" not in cache
        assert sorted(cache.keys()) == ["a", "b"]

    def test_put_refreshes_existing(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUCache(maxsize=-3)

    def test_unbounded(self):
        cache = LRUCache(maxsize=None)
        for index in range(5000):
            cache.put(index, index)
        assert len(cache) == 5000
        assert cache.evictions == 0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_promotes(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")     # "b" becomes LRU
        cache.put("c", 3)  # evicts "b"
        assert "a" in cache
        assert "b" not in cache

    def test_contains_does_not_promote(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # membership only — "a" stays LRU
        cache.put("c", 3)
        assert "a" not in cache


class TestCounters:
    def test_hits_misses(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_before_lookups(self):
        assert LRUCache().hit_rate == 0.0

    def test_stats_dict(self):
        cache = LRUCache(maxsize=8)
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats == {
            "size": 1, "maxsize": 8, "hits": 1, "misses": 0,
            "evictions": 0, "invalidations": 0, "hit_rate": 1.0,
        }

    def test_reset_counters_keeps_entries(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        cache.reset_counters()
        assert cache.counters() == (0, 0, 0)
        assert cache.get("a") == 1

    def test_clear_keeps_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestGetOrCompute:
    def test_computes_once(self):
        cache = LRUCache(maxsize=4)
        calls = []

        def factory():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", factory) == 42
        assert cache.get_or_compute("k", factory) == 42
        assert len(calls) == 1

    def test_threaded_consistency(self):
        cache = LRUCache(maxsize=128)
        errors = []

        def worker(offset):
            try:
                for index in range(200):
                    cache.put((offset, index), index)
                    assert cache.get_or_compute(
                        (offset, index), lambda: -1) == index
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
