"""Gradient-based parameter learning (the paper's Sec.-8 direction)."""

from .gradient import (
    FitResult,
    TrainingExample,
    fit_probabilities,
    gradient,
    squared_loss,
)

__all__ = [
    "FitResult",
    "TrainingExample",
    "fit_probabilities",
    "gradient",
    "squared_loss",
]
