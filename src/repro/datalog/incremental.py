"""Incremental provenance maintenance: insert facts without re-evaluating.

Section 3.2's premise is that provenance is maintained *alongside*
evaluation; in a live system the base data keeps changing.  Deletion is
already served by provenance itself (:mod:`repro.queries.whatif` — no
re-evaluation needed).  This module adds the insertion side: an
:class:`IncrementalSession` keeps the engine's semi-naive state (database,
tuple generations, firing set) alive between updates, so newly inserted
facts are treated as just another delta — every new rule firing is
enumerated exactly once, and the provenance graph grows in place.

The result is guaranteed identical to evaluating the extended program from
scratch (model, firing set, and polynomials — property-tested in
``tests/datalog/test_incremental.py``).  The :class:`repro.core.system.P3`
facade keeps one session alive after ``evaluate()`` (for negation-free
programs) and exposes insertion through ``P3.add_facts``, growing the
provenance graph and probability map in place.

Limitations: insertion only (monotone growth; deletions would require
DRed-style retraction of derived state), and no stratified negation (an
insertion into a lower stratum can invalidate negation-dependent tuples,
which is a retraction in disguise).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import telemetry
from .ast import ClauseError, Fact, Program
from .database import Database
from .engine import EvaluationError, EvaluationResult, ProvenanceRecorder
from .rewrite import CompiledRule, compile_program
from .terms import Atom


class IncrementalSession:
    """A resumable evaluation: full run first, then per-insertion deltas."""

    def __init__(self, program: Program,
                 recorder: Optional[ProvenanceRecorder] = None,
                 capture_tables: bool = True,
                 max_rounds: Optional[int] = None,
                 max_tuples: Optional[int] = None) -> None:
        if any(rule.negations for rule in program.rules):
            raise ClauseError(
                "IncrementalSession does not support negation: an insertion "
                "could retract negation-dependent tuples")
        self.program = program
        self.recorder = recorder
        self.capture_tables = capture_tables
        self.max_rounds = max_rounds
        self.max_tuples = max_tuples
        self._compiled: List[CompiledRule] = compile_program(program)

        self._database = Database()
        if capture_tables:
            from .rewrite import PROV_RELATION, RULE_RELATION
            self._database.mark_unindexed(PROV_RELATION)
            self._database.mark_unindexed(RULE_RELATION)
        self._generation: Dict[Atom, int] = {}
        self._seen_firings: Set[Tuple[str, Atom, Tuple[Atom, ...]]] = set()
        self._round = 0
        self._firing_count = 0
        self._insertions = 0

        # Initial full evaluation, summarised exactly like an Engine.run()
        # so the session can stand in for the engine in the P3 facade.
        start = time.perf_counter()
        for fact in program.facts:
            self._seed_fact(fact, generation=0)
        base_count = self._database.count()
        self._fixpoint(naive_base=0)
        derived = (self._database.count() - base_count
                   - self._capture_row_count())
        self.initial_result = EvaluationResult(
            self._database, self._round, self._firing_count,
            time.perf_counter() - start, max(0, derived))

    # -- public API ----------------------------------------------------------

    @property
    def database(self) -> Database:
        return self._database

    @property
    def firing_count(self) -> int:
        return self._firing_count

    @property
    def rounds(self) -> int:
        return self._round

    @property
    def insertions(self) -> int:
        """How many insertion batches have been applied."""
        return self._insertions

    def add_fact(self, fact: Fact) -> EvaluationResult:
        """Insert one fact; returns statistics for the delta evaluation."""
        return self.add_facts([fact])

    def add_facts(self, facts: Iterable[Fact]) -> EvaluationResult:
        """Insert a batch of facts and propagate their consequences.

        New facts join the current frontier generation; semi-naive rounds
        then run until fixpoint.  Duplicate facts are ignored (a duplicate
        of an existing tuple adds no derivations).

        With telemetry enabled the delta propagation is one
        ``update.delta`` span carrying inserted/round/firing counts.
        """
        rt = telemetry.runtime()
        if not rt.enabled:
            return self._add_facts(facts)
        with rt.tracer.span("update.delta") as span:
            delta = self._add_facts(facts)
            span.set_attributes(rounds=delta.rounds,
                                firings=delta.firing_count,
                                derived=delta.derived_count)
        return delta

    def _add_facts(self, facts: Iterable[Fact]) -> EvaluationResult:
        start = time.perf_counter()
        before_tuples = self._database.count()
        before_capture = self._capture_row_count()
        before_firings = self._firing_count
        start_round = self._round

        inserted = 0
        for fact in facts:
            if not isinstance(fact, Fact):
                raise TypeError("add_facts expects Fact instances")
            if self._label_taken(fact):
                raise ClauseError(
                    "Duplicate clause label: %r" % fact.label)
            if fact.atom in self._database:
                continue
            self.program.add(fact)
            self._seed_fact(fact, generation=self._round)
            inserted += 1

        if inserted:
            self._insertions += 1
            # The new facts sit at generation == self._round (strictly
            # above every existing tuple); run deltas with them as the
            # frontier.
            self._fixpoint(naive_base=None)

        elapsed = time.perf_counter() - start
        derived = (self._database.count() - before_tuples - inserted
                   - (self._capture_row_count() - before_capture))
        return EvaluationResult(
            self._database, self._round - start_round,
            self._firing_count - before_firings, elapsed, max(0, derived))

    # -- internals ---------------------------------------------------------------

    def _capture_row_count(self) -> int:
        if not self.capture_tables:
            return 0
        from .rewrite import PROV_RELATION, RULE_RELATION
        return (self._database.count(PROV_RELATION)
                + self._database.count(RULE_RELATION))

    def _label_taken(self, fact: Fact) -> bool:
        if fact.label is None:
            return False
        try:
            self.program.fact_by_label(fact.label)
            return True
        except KeyError:
            return False

    def _seed_fact(self, fact: Fact, generation: int) -> None:
        if self._database.add(fact.atom):
            self._generation[fact.atom] = generation
            if self.recorder is not None:
                self.recorder.record_fact(fact)

    def _fixpoint(self, naive_base: Optional[int]) -> None:
        """Run semi-naive rounds until no new tuples appear.

        ``naive_base`` non-None runs an initial naive pass over all tuples
        with generation ≤ naive_base (the cold start); None means the
        frontier is exactly the tuples stamped with the current round
        (warm continuation after an insertion).
        """
        naive_pass = naive_base is not None
        while True:
            self._round += 1
            if self.max_rounds is not None and self._round > self.max_rounds:
                raise EvaluationError(
                    "Exceeded max_rounds=%d" % self.max_rounds)
            new_atoms: List[Atom] = []
            for compiled in self._compiled:
                for head, body in self._fire(compiled, naive_pass,
                                             naive_base):
                    key = (compiled.label, head, body)
                    if key in self._seen_firings:
                        continue
                    self._seen_firings.add(key)
                    self._firing_count += 1
                    self._capture(compiled, head, body)
                    if self._database.add(head):
                        self._generation[head] = self._round
                        new_atoms.append(head)
                        if (self.max_tuples is not None
                                and self._database.count() > self.max_tuples):
                            raise EvaluationError(
                                "Exceeded max_tuples=%d" % self.max_tuples)
            naive_pass = False
            if not new_atoms:
                break

    def _fire(self, compiled: CompiledRule, naive_pass: bool,
              naive_base: Optional[int]):
        body_len = len(compiled.body)
        if naive_pass:
            assert naive_base is not None
            yield from self._join(compiled,
                                  [(0, naive_base)] * body_len)
            return
        delta = self._round - 1
        for pivot in range(body_len):
            spec: List[Tuple[int, int]] = []
            for position in range(body_len):
                if position < pivot:
                    spec.append((0, delta - 1))
                elif position == pivot:
                    spec.append((delta, delta))
                else:
                    spec.append((0, delta))
            yield from self._join(compiled, spec)

    def _join(self, compiled: CompiledRule, spec):
        rule = compiled.rule
        schedule = compiled.guard_schedule
        database = self._database
        generation = self._generation

        def descend(position: int, subst, matched: Tuple[Atom, ...]):
            if position == len(rule.body):
                yield rule.head.substitute(subst), matched
                return
            pattern = rule.body[position]
            relation = database.relation(pattern.relation)
            lo, hi = spec[position]
            for atom, extended in relation.match_atoms(pattern, subst):
                gen = generation.get(atom, 0)
                if gen < lo or gen > hi:
                    continue
                if all(guard.evaluate(extended)
                       for guard in schedule[position]):
                    yield from descend(position + 1, extended,
                                       matched + (atom,))

        yield from descend(0, {}, ())

    def _capture(self, compiled: CompiledRule, head: Atom,
                 body: Tuple[Atom, ...]) -> None:
        if self.recorder is not None:
            self.recorder.record_firing(compiled.rule, head, body)
        if self.capture_tables:
            for capture in compiled.capture_atoms(head, body):
                self._database.add(capture)

    def __repr__(self) -> str:
        return ("IncrementalSession(<%d tuples, %d firings, %d insertions>)"
                % (self._database.count(), self._firing_count,
                   self._insertions))
