"""Quickstart: the paper's Acquaintance running example (Figure 2).

Walks through all four provenance query types on the program that computes
which pairs of people may know each other:

1. evaluate the ProbLog program and inspect derived tuples,
2. Explanation Query — how is know("Ben","Elena") derived? (Section 4.1)
3. Derivation Query — which derivation matters most? (Section 4.2)
4. Influence Query — which literal matters most? (Section 4.3, Table 2)
5. Modification Query — how do we raise the probability to 0.5? (Section 4.4)

Run with::

    python examples/quickstart.py
"""

from repro import P3
from repro.data import ACQUAINTANCE


def main() -> None:
    print("=" * 72)
    print("The Acquaintance program (paper Figure 2)")
    print("=" * 72)
    print(ACQUAINTANCE.strip())

    p3 = P3.from_source(ACQUAINTANCE)
    result = p3.evaluate()
    print("\nEvaluated to fixpoint in %d rounds (%d rule firings)."
          % (result.rounds, result.firing_count))

    print("\nDerived know/2 tuples and their success probabilities:")
    for atom in sorted(map(str, p3.derived_atoms("know"))):
        print("  %-28s P = %.5f" % (atom, p3.probability_of(atom)))

    # ---- Explanation Query (Query 1) ------------------------------------
    print("\n" + "=" * 72)
    print('Query 1 (Explanation): derivations of know("Ben","Elena")')
    print("=" * 72)
    explanation = p3.explain("know", "Ben", "Elena")
    print(explanation.to_text())

    # ---- Derivation Query (Query 2) --------------------------------------
    print("\n" + "=" * 72)
    print("Query 2 (Derivation): most important derivations, varying epsilon")
    print("=" * 72)
    for epsilon in (0.001, 0.01, 0.05):
        sufficient = p3.sufficient_provenance(
            "know", "Ben", "Elena", epsilon=epsilon)
        print("  eps=%.3f: %d of %d derivations kept (P %.5f -> %.5f)"
              % (epsilon, len(sufficient.sufficient),
                 len(sufficient.original),
                 sufficient.full_probability,
                 sufficient.sufficient_probability))
    sufficient = p3.sufficient_provenance("know", "Ben", "Elena", epsilon=0.05)
    print("  kept: %s" % sufficient.sufficient)
    print("  (living in the same city trumps sharing a hobby, as in the paper)")

    # ---- Influence Query (Query 3, Table 2) --------------------------------
    print("\n" + "=" * 72)
    print("Query 3 (Influence): most influential literals  [paper Table 2]")
    print("=" * 72)
    report = p3.influence("know", "Ben", "Elena")
    for score in report.top(3):
        print("  %-24s influence = %.4f" % (score.literal, score.influence))
    print("  (paper's ranking: r3 > r1 > t6 — reproduced; see EXPERIMENTS.md"
          " for the\n   exact-vs-paper value discussion)")

    # ---- Modification Query (Query 4) ----------------------------------------
    print("\n" + "=" * 72)
    print("Query 4 (Modification): raise P[know(Ben,Elena)] to 0.5")
    print("=" * 72)
    plan = p3.modify("know", "Ben", "Elena", target=0.5)
    print(plan.to_text())
    print("\nApplying the plan and re-checking:")
    updated = plan.updated_probabilities(p3.probabilities)
    from repro.inference import exact_probability
    polynomial = p3.polynomial_of("know", "Ben", "Elena")
    print("  new P = %.5f" % exact_probability(polynomial, updated))


if __name__ == "__main__":
    main()
