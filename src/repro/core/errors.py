"""Exception hierarchy for the P3 system facade.

Lower layers raise their own specific exceptions (``ParseError``,
``EvaluationError``, ``ExtractionError``, ...); the facade wraps user-level
mistakes in :class:`P3Error` subclasses so applications can catch one base
type.
"""

from __future__ import annotations


class P3Error(Exception):
    """Base class for errors raised by the P3 facade."""


class NotEvaluatedError(P3Error):
    """A query was issued before :meth:`P3.evaluate` ran."""


class UnknownTupleError(P3Error, KeyError):
    """The queried tuple is not derivable (absent from the provenance graph)."""

    def __init__(self, tuple_key: str) -> None:
        super().__init__(
            "Tuple %r was not derived by the program; "
            "check the relation name and argument constants" % tuple_key)
        self.tuple_key = tuple_key


class UnknownLiteralError(P3Error, KeyError):
    """A literal was referenced that does not occur in the provenance."""

    def __init__(self, key: str) -> None:
        super().__init__("Literal %r does not appear in the provenance" % key)
        self.key = key


class QueryTimeoutError(P3Error, TimeoutError):
    """A query exceeded its per-query deadline.

    Raised inside the batch executor when a spec's ``timeout`` (or the
    config's ``query_timeout``) elapses; in a batch it is captured as that
    outcome's error instead of propagating.
    """

    def __init__(self, key: str, timeout: float) -> None:
        super().__init__(
            "Query %r exceeded its deadline of %.3fs" % (key, timeout))
        self.key = key
        self.timeout = timeout
