"""Benchmark-suite conftest: print recorded paper-style tables."""

from __future__ import annotations

from reporting import recorded_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every recorded paper-style table after the timing output."""
    tables = recorded_tables()
    if not tables:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper-style experiment tables")
    for text in tables:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
