"""Batched query execution over an evaluated P3 system.

The paper's four query types each re-extract provenance polynomials and
re-run inference per call; a production deployment answers *many* queries
over one evaluated program, so the work must be shared.  This subsystem
provides:

- :class:`~repro.exec.cache.LRUCache` — a bounded, thread-safe LRU with
  hit/miss/eviction counters, layered over both polynomial extraction and
  probability results;
- :class:`~repro.exec.specs.QuerySpec` — a declarative description of one
  query (kind + tuple key + parameters) with a canonical cache identity;
- :class:`~repro.exec.stats.ExecutorStats` — per-stage wall-clock timings
  (parse/evaluate/extract/infer) and counters, exposed as a plain dict;
- :class:`~repro.exec.executor.QueryExecutor` — the batch front door:
  deduplicates specs, fans independent queries out across a worker pool,
  and shares the caches between them.

Typical use::

    from repro import P3
    from repro.exec import QueryExecutor, QuerySpec

    p3 = P3.from_file("trust.pl")
    p3.evaluate()
    executor = QueryExecutor(p3, max_workers=4)
    batch = executor.run([
        QuerySpec.probability('trustPath(1,9)'),
        QuerySpec.influence('trustPath(1,9)', top_k=5),
        QuerySpec.explain('trustPath(1,9)'),
    ])
    for outcome in batch:
        print(outcome.spec.key, outcome.value)
    print(executor.stats())
"""

from ..core.errors import QueryTimeoutError
from .cache import LRUCache
from .executor import BatchResult, QueryExecutor, QueryOutcome
from .specs import QuerySpec
from .stats import ExecutorStats

__all__ = [
    "BatchResult",
    "ExecutorStats",
    "LRUCache",
    "QueryExecutor",
    "QueryOutcome",
    "QuerySpec",
    "QueryTimeoutError",
]
