"""The common protocol implemented by every query answer.

Every query result class — :class:`~repro.queries.explanation.Explanation`,
:class:`~repro.queries.derivation.SufficientProvenance`,
:class:`~repro.queries.influence.InfluenceReport`,
:class:`~repro.queries.modification.ModificationPlan`,
:class:`~repro.queries.whatif.WhatIfReport`, and
:class:`~repro.queries.whynot.WhyNotReport` — mixes in
:class:`QueryResult` and provides:

- ``query_type`` — a stable string tag ("explanation", "derivation",
  "influence", "modification", "what_if", "why_not");
- ``to_dict()`` — a JSON-ready payload of plain values;
- ``to_json()`` — the payload serialised with stable key order;
- ``summary()`` — a one-line human-readable digest;
- ``from_dict(payload)`` — the inverse of ``to_dict``, reconstructing a
  result object of the same class.

:mod:`repro.io.serialize` wraps the payload in a versioned envelope
(:func:`repro.io.serialize.query_result_to_json`) so every query answer
round-trips through one uniform JSON format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Type


class QueryResult:
    """Mixin giving query answers a uniform serialisation surface."""

    #: Stable tag identifying the query type in serialised form.
    query_type: str = ""

    #: Optional :class:`repro.resilience.ladder.ResilienceRecord` describing
    #: how this answer was obtained (fallbacks, retries, downgrades).  A
    #: class-level default so existing ``__slots__``-free result classes
    #: and ``from_dict`` round trips need no changes; set per-instance by
    #: :meth:`attach_resilience` when the executor answered through a
    #: fallback ladder.
    resilience = None

    def attach_resilience(self, record) -> "QueryResult":
        """Attach the resilience record that produced this answer.

        Returns ``self`` so the executor can attach-and-return in one
        expression.  The record rides along into
        :func:`repro.io.serialize.query_result_to_json` but is *not* part
        of ``to_dict`` — payloads stay byte-identical to pre-resilience
        output.
        """
        self.resilience = record
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload of plain dicts/lists/strings/numbers."""
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryResult":
        """Rebuild a result object from a :meth:`to_dict` payload."""
        raise NotImplementedError

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` payload as stable (sorted-key) JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """One-line human-readable digest of the result."""
        raise NotImplementedError


#: query_type tag → result class, populated by :func:`register_result`.
RESULT_TYPES: Dict[str, Type[QueryResult]] = {}


def register_result(cls: Type[QueryResult]) -> Type[QueryResult]:
    """Class decorator recording a result class under its query_type tag."""
    if not cls.query_type:
        raise ValueError("%s must set a query_type tag" % cls.__name__)
    RESULT_TYPES[cls.query_type] = cls
    return cls
