"""Monte-Carlo estimation of DNF success probability.

The paper estimates P[λ] by Monte-Carlo sampling (Section 3.3): draw a
truth assignment of the literals from their independent Bernoulli
distributions, evaluate the DNF, and average.

:func:`monte_carlo_probability` (the ``mc`` backend) now runs on the
bitset-packed NumPy kernel (:mod:`repro.inference.kernel`) — the whole
sample matrix is drawn per literal at once and evaluated against packed
monomial masks.  The original one-pure-Python-evaluation-per-sample loop
is preserved as :func:`sequential_probability`: it is the reference
implementation the kernel's statistical-equivalence tests compare
against, and the honest "sequential" baseline of Table 8.

Estimates carry a standard error and a normal-approximation confidence
interval so tests can assert statistically rather than with magic
tolerances, and satisfy the :class:`repro.inference.estimate.Estimate`
protocol (``value`` / ``stderr`` / ``exact`` / ``interval()``).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import InferenceConfigurationError
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap


class MonteCarloEstimate:
    """A Monte-Carlo probability estimate with its sampling error.

    Each trial is a Bernoulli success indicator scaled by ``scale``
    (``scale`` is 1 for plain sampling; the Karp–Luby estimator scales by
    the union weight Σⱼ P[mⱼ]), so ``value == scale · hits / samples`` and
    the standard error is ``scale · √(p̂(1−p̂)/n)`` with ``p̂`` the raw
    success rate.  Scaled estimators can report values above 1; use
    :attr:`value_clamped` where a probability in [0, 1] is required.
    """

    __slots__ = ("value", "samples", "hits", "scale")

    #: Sampling estimates are never deterministic in their inputs
    #: (Estimate-protocol flag).
    exact = False

    def __init__(self, value: float, samples: int, hits: int,
                 scale: float = 1.0) -> None:
        self.value = value
        self.samples = samples
        self.hits = hits
        self.scale = scale

    @property
    def success_rate(self) -> float:
        """Raw Bernoulli success rate ``hits / samples``."""
        if self.samples == 0:
            return 0.0
        return self.hits / self.samples

    @property
    def value_clamped(self) -> float:
        """The estimate clamped into [0, 1].

        Clamping destroys unbiasedness (the mean of clamped estimates is
        not the true probability), so :attr:`value` stays unclamped and
        call sites that need a well-formed probability opt in here.
        """
        return min(1.0, max(0.0, self.value))

    @property
    def standard_error(self) -> float:
        if self.samples == 0:
            return float("inf")
        rate = self.success_rate
        variance = rate * (1.0 - rate)
        return abs(self.scale) * math.sqrt(variance / self.samples)

    @property
    def stderr(self) -> float:
        """Estimate-protocol alias for :attr:`standard_error`."""
        return self.standard_error

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        spread = z * self.standard_error
        return (max(0.0, self.value - spread), min(1.0, self.value + spread))

    def interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Estimate-protocol alias for :meth:`confidence_interval`."""
        return self.confidence_interval(z)

    def __repr__(self) -> str:
        return "MonteCarloEstimate(%.6f ± %.6f, n=%d)" % (
            self.value, self.standard_error, self.samples,
        )


def sample_assignment(literals: Sequence[Literal],
                      probabilities: ProbabilityMap,
                      rng: random.Random) -> Dict[Literal, bool]:
    """Draw one independent Bernoulli assignment of the given literals."""
    return {
        literal: rng.random() < probabilities[literal]
        for literal in literals
    }


def sequential_probability(polynomial: Polynomial,
                           probabilities: ProbabilityMap,
                           samples: int = 10000,
                           seed: Optional[int] = None,
                           rng: Optional[random.Random] = None
                           ) -> MonteCarloEstimate:
    """The pure-Python per-sample reference estimator.

    One truth assignment and one DNF evaluation per sample — the paper's
    sequential baseline, kept as the ground-truth implementation the
    vectorized kernel is statistically checked against.  Use
    :func:`monte_carlo_probability` for real workloads.
    """
    if samples <= 0:
        raise InferenceConfigurationError("samples must be positive")
    if polynomial.is_zero:
        return MonteCarloEstimate(0.0, samples, 0)
    if polynomial.is_one:
        return MonteCarloEstimate(1.0, samples, samples)
    if rng is None:
        rng = random.Random(seed)
    literals = sorted(polynomial.literals())
    # Pre-sort monomials smallest-first: short monomials satisfy (and
    # short-circuit the OR) most often.
    monomials = sorted(polynomial.monomials, key=len)
    hits = 0
    for _ in range(samples):
        assignment = sample_assignment(literals, probabilities, rng)
        if any(m.evaluate(assignment) for m in monomials):
            hits += 1
    value = hits / samples
    return MonteCarloEstimate(value, samples, hits)


def monte_carlo_probability(polynomial: Polynomial,
                            probabilities: ProbabilityMap,
                            samples: int = 10000,
                            seed: Optional[int] = None,
                            rng: Optional[random.Random] = None
                            ) -> MonteCarloEstimate:
    """Estimate P[λ] with ``samples`` independent truth assignments.

    Pass either ``seed`` (convenience) or an existing ``rng`` (for a
    reproducible stream across related estimates).  Runs on the
    bitset-packed kernel; a supplied ``random.Random`` seeds the kernel's
    NumPy generator deterministically from its stream.
    """
    from .kernel import kernel_probability  # lazy: kernel imports us

    if rng is not None:
        np_rng = np.random.default_rng(rng.getrandbits(128))
        return kernel_probability(polynomial, probabilities,
                                  samples=samples, rng=np_rng)
    return kernel_probability(polynomial, probabilities, samples=samples,
                              seed=seed)


def conditioned_probability(polynomial: Polynomial,
                            probabilities: ProbabilityMap,
                            fixed: Dict[Literal, bool],
                            samples: int = 10000,
                            seed: Optional[int] = None,
                            rng: Optional[random.Random] = None
                            ) -> MonteCarloEstimate:
    """Estimate P[λ | fixed literals] by sampling only the free literals."""
    conditioned = polynomial
    for literal, value in fixed.items():
        conditioned = conditioned.restrict(literal, value)
    return monte_carlo_probability(
        conditioned, probabilities, samples=samples, seed=seed, rng=rng)


#: z for the Wilson-centre variance floor used by adaptive sampling (95%).
_WILSON_Z = 1.96


def adaptive_probability(polynomial: Polynomial,
                         probabilities: ProbabilityMap,
                         target_standard_error: float = 0.005,
                         batch: int = 2000,
                         max_samples: int = 500000,
                         seed: Optional[int] = None) -> MonteCarloEstimate:
    """Sample in batches until the standard error falls below the target.

    A pragmatic extension over the paper: callers specify accuracy rather
    than a sample budget.

    The stopping rule floors the empirical variance at the Wilson-centre
    value ``p̃(1-p̃)`` with ``p̃ = (hits + z²/2)/(n + z²)``.  The naive
    plug-in variance ``p̂(1-p̂)`` is zero whenever a run has seen no hits,
    which would stop sampling immediately with a false-confident 0.0 even
    when the true probability is small but nonzero (the rule-of-three
    regime); the floor keeps the estimated error honest — after ``n``
    hitless samples the plausible probability is still ≈ ``z²/n``, so
    sampling continues until that too is resolved below the target.  At
    least two batches are always drawn.
    """
    if target_standard_error <= 0:
        raise InferenceConfigurationError("target_standard_error must be positive")
    if polynomial.is_zero or polynomial.is_one:
        # Degenerate DNF: the answer is exact, no adaptive loop needed.
        return monte_carlo_probability(
            polynomial, probabilities, samples=batch, seed=seed)
    rng = random.Random(seed)
    total = 0
    hits = 0
    while total < max_samples:
        estimate = monte_carlo_probability(
            polynomial, probabilities, samples=batch, rng=rng)
        total += estimate.samples
        hits += estimate.hits
        if total < 2 * batch:
            continue  # one batch is never evidence of convergence
        value = hits / total
        centre = ((hits + 0.5 * _WILSON_Z ** 2)
                  / (total + _WILSON_Z ** 2))
        variance = max(value * (1.0 - value), centre * (1.0 - centre))
        if math.sqrt(variance / total) <= target_standard_error:
            break
    return MonteCarloEstimate(hits / total, total, hits)
