"""Extension bench — gradient-based weight recovery (Sec. 8 direction).

Plants hidden rule weights in the Acquaintance program, generates
observations, and times how quickly projected gradient descent recovers
them from the provenance polynomials (see ``examples/weight_learning.py``
for the narrated version).
"""

import pytest

from repro import P3
from repro.data import ACQUAINTANCE
from repro.learning import TrainingExample, fit_probabilities
from repro.provenance import rule_literal

from reporting import record_table

PLANTED = {"r1": 0.65, "r2": 0.55, "r3": 0.35}
EXTRA = 't7 1.0: like("Mary","Veggies").\n'


def _observations():
    source = ACQUAINTANCE + EXTRA
    source = source.replace("r1 0.8:", "r1 %s:" % PLANTED["r1"])
    source = source.replace("r2 0.4:", "r2 %s:" % PLANTED["r2"])
    source = source.replace("r3 0.2:", "r3 %s:" % PLANTED["r3"])
    hidden = P3.from_source(source)
    hidden.evaluate()
    return {
        str(atom): hidden.probability_of(str(atom))
        for atom in hidden.derived_atoms("know")
    }


def test_learning_weight_recovery(benchmark):
    observations = _observations()
    model = P3.from_source(ACQUAINTANCE + EXTRA)
    model.evaluate()
    examples = [
        TrainingExample(model.polynomial_of(key), target)
        for key, target in sorted(observations.items())
    ]
    modifiable = [rule_literal(label) for label in sorted(PLANTED)]

    result = benchmark.pedantic(
        fit_probabilities, args=(examples, model.probabilities, modifiable),
        kwargs={"learning_rate": 0.8, "max_iterations": 500},
        rounds=3, iterations=1)

    rows = []
    for label in sorted(PLANTED):
        fitted = result.probabilities[rule_literal(label)]
        rows.append([label, PLANTED[label], fitted,
                     abs(fitted - PLANTED[label])])
        assert fitted == pytest.approx(PLANTED[label], abs=0.01)
    rows.append(["(loss)", result.initial_loss, result.final_loss,
                 result.iterations])

    record_table(
        "learning_recovery",
        "Extension: gradient recovery of planted rule weights "
        "(%d observations, %d iterations)"
        % (len(examples), result.iterations),
        ["rule", "hidden truth", "fitted", "abs error / iters"],
        rows,
    )
