"""Unit tests for the synthetic trust-network substrate."""

import pytest

from repro.data.bitcoin_otc import (
    TrustEdge,
    TrustNetwork,
    generate_network,
    paper_fragment,
    rescale_weight,
)


class TestRescaling:
    def test_boundaries(self):
        assert rescale_weight(-10) == 0.0
        assert rescale_weight(10) == 1.0
        assert rescale_weight(0) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rescale_weight(11)
        with pytest.raises(ValueError):
            rescale_weight(-11)

    def test_edge_probability_derived_from_weight(self):
        edge = TrustEdge(1, 2, 4)
        assert edge.probability == pytest.approx(0.7)


class TestNetworkStructure:
    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            TrustNetwork([TrustEdge(1, 1, 5)])

    def test_duplicate_edges_ignored(self):
        network = TrustNetwork([TrustEdge(1, 2, 5), TrustEdge(1, 2, -3)])
        assert network.edge_count == 1
        assert network.edges[(1, 2)].weight == 5

    def test_adjacency(self):
        network = TrustNetwork([TrustEdge(1, 2, 5), TrustEdge(1, 3, 5)])
        assert network.out_degree(1) == 2
        assert network.out_degree(2) == 0

    def test_positive_fraction(self):
        network = TrustNetwork([TrustEdge(1, 2, 5), TrustEdge(2, 3, -5)])
        assert network.positive_fraction() == 0.5


class TestGenerator:
    def test_target_counts(self):
        network = generate_network(nodes=200, edges=800, seed=1)
        assert network.edge_count == 800
        assert network.node_count <= 200

    def test_seeded_determinism(self):
        first = generate_network(nodes=100, edges=300, seed=9)
        second = generate_network(nodes=100, edges=300, seed=9)
        assert set(first.edges) == set(second.edges)

    def test_different_seeds_differ(self):
        first = generate_network(nodes=100, edges=300, seed=1)
        second = generate_network(nodes=100, edges=300, seed=2)
        assert set(first.edges) != set(second.edges)

    def test_positive_fraction_near_target(self):
        network = generate_network(nodes=300, edges=2000, seed=3,
                                    positive_fraction=0.89)
        assert network.positive_fraction() == pytest.approx(0.89, abs=0.03)

    def test_heavy_tailed_degrees(self):
        network = generate_network(nodes=400, edges=2400, seed=4)
        degrees = sorted(
            (network.out_degree(node) for node in network.nodes),
            reverse=True)
        # Preferential attachment: the top node far exceeds the median.
        median = degrees[len(degrees) // 2]
        assert degrees[0] >= 4 * max(1, median)

    def test_reciprocity_produces_mutual_edges(self):
        network = generate_network(nodes=200, edges=1000, seed=5,
                                    reciprocity=0.5)
        mutual = sum(1 for (src, dst) in network.edges
                     if (dst, src) in network.edges)
        assert mutual > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_network(nodes=1, edges=1)
        with pytest.raises(ValueError):
            generate_network(nodes=3, edges=100)


class TestSampling:
    @pytest.fixture(scope="class")
    def network(self):
        return generate_network(nodes=500, edges=2500, seed=7)

    def test_bfs_sample_respects_budget(self, network):
        sample = network.bfs_sample(50, seed=1)
        assert sample.node_count <= 50

    def test_bfs_sample_connected_edges_only(self, network):
        sample = network.bfs_sample(50, seed=1)
        for (src, dst) in sample.edges:
            assert src in sample.nodes
            assert dst in sample.nodes

    def test_bfs_sample_deterministic(self, network):
        first = network.bfs_sample(50, seed=3)
        second = network.bfs_sample(50, seed=3)
        assert set(first.edges) == set(second.edges)

    def test_bfs_sample_rejects_bad_budget(self, network):
        with pytest.raises(ValueError):
            network.bfs_sample(0)

    def test_nodes_edges_sample(self, network):
        sample = network.sample_nodes_edges(150, 150, seed=2)
        assert sample.edge_count <= 150

    def test_empty_network_sample(self):
        assert TrustNetwork().bfs_sample(10).edge_count == 0


class TestProgramConversion:
    def test_facts_have_rescaled_probabilities(self):
        network = TrustNetwork([TrustEdge(1, 2, 10)])
        [fact] = network.to_facts()
        assert str(fact.atom) == "trust(1,2)"
        assert fact.probability == 1.0

    def test_to_program_includes_figure7_rules(self):
        network = TrustNetwork([TrustEdge(1, 2, 5)])
        program = network.to_program()
        assert len(program.rules) == 3
        assert program.rule_by_label("r3").head.relation == "mutualTrustPath"

    def test_program_evaluates(self):
        network = TrustNetwork([
            TrustEdge(1, 2, 8), TrustEdge(2, 1, 8),
        ])
        from repro import P3
        p3 = P3(network.to_program())
        p3.evaluate()
        assert p3.holds("mutualTrustPath", 1, 2)


class TestPaperFragment:
    def test_table5_probabilities(self):
        network = paper_fragment()
        expected = {
            (1, 2): 0.9, (2, 1): 0.9, (1, 13): 0.65,
            (13, 2): 0.6, (2, 6): 0.75, (6, 2): 0.7,
        }
        assert {key: edge.probability
                for key, edge in network.edges.items()} == expected

    def test_reproduces_paper_probability(self):
        from repro import P3
        p3 = P3(paper_fragment().to_program())
        p3.evaluate()
        # Paper: 0.3524 (sampled); exact: 0.354942.
        assert p3.probability_of("mutualTrustPath", 1, 6) == pytest.approx(
            0.354942, abs=1e-6)
