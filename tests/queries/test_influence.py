"""Unit tests for the Influence Query."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.provenance.polynomial import rule_literal, tuple_literal
from repro.queries.influence import (
    exact_influence,
    influence_query,
    mc_influence,
    parallel_influence,
    top_k_influence,
)


class TestDefinition:
    """Definition 4.1 on small formulas."""

    def test_counterfactual_literal_has_full_influence(self):
        poly = make_polynomial(("a",))
        a = tuple_literal("a")
        assert exact_influence(poly, {a: 0.5}, a) == pytest.approx(1.0)

    def test_literal_in_one_of_two_branches(self):
        poly = make_polynomial(("a",), ("b",))
        a, b = tuple_literal("a"), tuple_literal("b")
        # Inf_a = 1 - P[b] (a decides unless b already true).
        assert exact_influence(poly, {a: 0.5, b: 0.3}, a) == pytest.approx(0.7)

    def test_absent_literal_zero_influence(self):
        poly = make_polynomial(("a",))
        a, b = tuple_literal("a"), tuple_literal("b")
        assert exact_influence(poly, {a: 0.5, b: 0.5}, b) == 0.0

    def test_influence_independent_of_own_probability(self):
        poly = make_polynomial(("a", "b"))
        a, b = tuple_literal("a"), tuple_literal("b")
        low = exact_influence(poly, {a: 0.1, b: 0.7}, a)
        high = exact_influence(poly, {a: 0.9, b: 0.7}, a)
        assert low == pytest.approx(high)

    def test_monotone_dnf_influence_nonnegative(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=6)
        for literal in poly.literals():
            assert exact_influence(poly, probs, literal) >= 0.0


class TestTable2:
    """The paper's Table 2 on the Acquaintance example (exact values)."""

    def test_ranking(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        report = influence_query(poly, acquaintance.probabilities)
        ranking = [str(lit) for lit in report.ranking()]
        assert ranking[0] == "r3"
        assert ranking[1] == "r1"
        assert ranking[2] == 'know("Ben","Steve")'

    def test_exact_values(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        report = influence_query(poly, acquaintance.probabilities)
        # Paper reports 0.896/0.2/0.1792 using the non-inclusion-exclusion
        # sum; the exact values are below (DESIGN.md §4).
        assert report.score_of(rule_literal("r3")) == pytest.approx(0.8192)
        assert report.score_of(rule_literal("r1")) == pytest.approx(0.1808)
        assert report.score_of(
            tuple_literal('know("Ben","Steve")')) == pytest.approx(0.16384)


class TestTrustQuery2B:
    """Query 2B: most influential trust tuples (paper values 0.51/0.48)."""

    def test_most_influential(self, trust_fragment):
        poly = trust_fragment.polynomial_of("mutualTrustPath", 1, 6)
        report = influence_query(poly, trust_fragment.probabilities)
        tuples_only = report.filter(lambda lit: lit.is_tuple)
        first, second = tuples_only.top(2)
        assert str(first.literal) == "trust(6,2)"
        assert first.influence == pytest.approx(0.51, abs=0.01)
        assert str(second.literal) == "trust(2,6)"
        assert second.influence == pytest.approx(0.48, abs=0.01)

    def test_footnote3_ordering(self, trust_fragment):
        # trust(6,2) beats trust(2,1) because P[trust(2,1)]=0.9 nearly
        # guarantees the 6->1 path once trust(6,2) holds.
        poly = trust_fragment.polynomial_of("mutualTrustPath", 1, 6)
        report = influence_query(poly, trust_fragment.probabilities)
        assert report.score_of(tuple_literal("trust(6,2)")) > report.score_of(
            tuple_literal("trust(2,1)"))


class TestMethods:
    def test_mc_matches_exact(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {lit: 0.5 for lit in poly.literals()}
        a = tuple_literal("a")
        truth = exact_influence(poly, probs, a)
        estimate = mc_influence(poly, probs, a, samples=40000, seed=1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_parallel_matches_exact(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {lit: 0.5 for lit in poly.literals()}
        a = tuple_literal("a")
        truth = exact_influence(poly, probs, a)
        estimate = parallel_influence(poly, probs, a, samples=40000, seed=1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_query_method_dispatch(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {lit: 0.5 for lit in poly.literals()}
        for method in ("exact", "mc", "parallel"):
            report = influence_query(poly, probs, method=method,
                                     samples=20000, seed=2)
            assert len(report) == 3
            assert report.method == method

    def test_unknown_method(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            influence_query(poly, {tuple_literal("a"): 0.5}, method="nope")

    def test_mc_rejects_nonpositive_samples(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            mc_influence(poly, {tuple_literal("a"): 0.5},
                         tuple_literal("a"), samples=0)


class TestReport:
    def test_top_k(self):
        poly = make_polynomial(("a",), ("b", "c"))
        probs = {lit: 0.5 for lit in poly.literals()}
        top = top_k_influence(poly, probs, k=2)
        assert len(top) == 2
        assert top[0].influence >= top[1].influence

    def test_filter(self):
        poly = make_polynomial(("r1", "a"), ("b",))
        probs = {lit: 0.5 for lit in poly.literals()}
        report = influence_query(poly, probs)
        rules_only = report.filter(lambda lit: lit.is_rule)
        assert all(score.literal.is_rule for score in rules_only)

    def test_score_of_missing_literal(self):
        poly = make_polynomial(("a",))
        report = influence_query(poly, {tuple_literal("a"): 0.5})
        with pytest.raises(KeyError):
            report.score_of(tuple_literal("zz"))

    def test_explicit_literal_subset(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = {lit: 0.5 for lit in poly.literals()}
        subset = [tuple_literal("a")]
        report = influence_query(poly, probs, literals=subset)
        assert len(report) == 1

    def test_empty_report(self):
        from repro.queries.influence import InfluenceReport
        report = InfluenceReport([], "exact")
        assert report.most_influential is None
        assert len(report) == 0
