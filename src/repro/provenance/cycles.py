"""Cycle analysis for provenance graphs (Section 3.3 support).

The provenance graph of a recursive program may contain cycles: a derived
tuple that is also an input to one of its own derivations.  This module
locates those cycles (strongly connected components of the tuple-dependency
projection) and provides the empirical counterpart of the paper's
cycle-elimination theorem: :func:`verify_cycle_elimination` checks
P[λ⁰] = P[λ¹] = ... = P[λᵏ] on a concrete graph.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from .extraction import extract_polynomial, extract_unrolled
from .graph import ProvenanceGraph
from .polynomial import Polynomial, ProbabilityMap


def tuple_dependency_edges(graph: ProvenanceGraph) -> Dict[str, Set[str]]:
    """Project the bipartite graph onto tuples: head → set of input tuples."""
    edges: Dict[str, Set[str]] = {}
    for execution in graph.executions():
        edges.setdefault(execution.head, set()).update(execution.body)
    return edges


def strongly_connected_components(
        edges: Dict[str, Set[str]]) -> List[FrozenSet[str]]:
    """Tarjan's algorithm (iterative) over the tuple-dependency projection.

    Returns only non-trivial components: size ≥ 2, or a single tuple with a
    self-loop — i.e. the tuples actually involved in cycles.
    """
    index_counter = [0]
    indexes: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[FrozenSet[str]] = []

    vertices = set(edges)
    for targets in edges.values():
        vertices.update(targets)

    for start in sorted(vertices):
        if start in indexes:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            vertex, child_index = work[-1]
            if child_index == 0:
                indexes[vertex] = index_counter[0]
                lowlinks[vertex] = index_counter[0]
                index_counter[0] += 1
                stack.append(vertex)
                on_stack.add(vertex)
            recursed = False
            successors = sorted(edges.get(vertex, ()))
            for offset in range(child_index, len(successors)):
                successor = successors[offset]
                if successor not in indexes:
                    work[-1] = (vertex, offset + 1)
                    work.append((successor, 0))
                    recursed = True
                    break
                if successor in on_stack:
                    lowlinks[vertex] = min(lowlinks[vertex], indexes[successor])
            if recursed:
                continue
            work.pop()
            if lowlinks[vertex] == indexes[vertex]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                if len(component) > 1 or vertex in edges.get(vertex, ()):
                    components.append(frozenset(component))
            if work:
                parent, _ = work[-1]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[vertex])
    return components


def cyclic_tuples(graph: ProvenanceGraph) -> FrozenSet[str]:
    """All tuples that participate in at least one provenance cycle."""
    components = strongly_connected_components(tuple_dependency_edges(graph))
    result: Set[str] = set()
    for component in components:
        result.update(component)
    return frozenset(result)


def has_cycles(graph: ProvenanceGraph) -> bool:
    return bool(cyclic_tuples(graph))


def verify_cycle_elimination(
        graph: ProvenanceGraph, root: str,
        probability_fn: Callable[[Polynomial, ProbabilityMap], float],
        probabilities: ProbabilityMap,
        max_rounds: int = 2,
        hop_limit: int = 12,
        tolerance: float = 1e-9) -> List[float]:
    """Empirically check P[λ⁰] = P[λ¹] = ... = P[λᵏ] (the Sec.-3.3 theorem).

    Returns the list [P[λ⁰], ..., P[λᵏ]]; raises ``AssertionError`` when two
    values differ by more than ``tolerance``.  ``probability_fn`` should be
    an *exact* method (e.g. :func:`repro.inference.exact.exact_probability`).
    """
    values: List[float] = []
    baseline = probability_fn(
        extract_polynomial(graph, root, hop_limit=hop_limit), probabilities)
    values.append(baseline)
    for rounds in range(1, max_rounds + 1):
        unrolled = extract_unrolled(graph, root, rounds, hop_limit=hop_limit)
        value = probability_fn(unrolled, probabilities)
        values.append(value)
        if abs(value - baseline) > tolerance:
            raise AssertionError(
                "Cycle elimination violated at rounds=%d: %.12f vs %.12f"
                % (rounds, value, baseline)
            )
    return values
