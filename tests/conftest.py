"""Shared fixtures and helpers for the P3 test suite."""

from __future__ import annotations

import random

import pytest

from repro import P3, P3Config
from repro.data import acquaintance_program, paper_fragment
from repro.provenance.polynomial import (
    Monomial,
    Polynomial,
    rule_literal,
    tuple_literal,
)


@pytest.fixture(scope="session")
def acquaintance() -> P3:
    """The Figure 2 running example, evaluated once per session."""
    p3 = P3(acquaintance_program())
    p3.evaluate()
    return p3


@pytest.fixture(scope="session")
def trust_fragment() -> P3:
    """The 6-node Table 5 trust fragment, evaluated once per session."""
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    return p3


def make_polynomial(*groups):
    """Build a polynomial from tuples of literal-name strings.

    Names starting with ``r`` followed by digits become rule literals;
    everything else becomes a tuple literal:

    >>> poly = make_polynomial(("r1", "a", "b"), ("r2", "c"))
    """
    monomials = []
    for group in groups:
        literals = []
        for name in group:
            if name.startswith("r") and name[1:].isdigit():
                literals.append(rule_literal(name))
            else:
                literals.append(tuple_literal(name))
        monomials.append(Monomial(literals))
    return Polynomial(monomials)


def uniform_probabilities(polynomial: Polynomial, value: float = 0.5):
    """Probability map assigning ``value`` to every literal."""
    return {literal: value for literal in polynomial.literals()}


def random_probabilities(polynomial: Polynomial, seed: int = 0):
    """Seeded random probability map over the polynomial's literals."""
    rng = random.Random(seed)
    return {
        literal: round(rng.uniform(0.05, 0.95), 3)
        for literal in sorted(polynomial.literals())
    }
