"""What-if deletion analysis over the provenance graph.

A natural debugging companion to the Modification Query: instead of
*re-weighting* literals, delete them outright — "what happens to the
derived tuples if this trust edge (or this rule) is removed?"  Two
complementary mechanisms:

- **Derivability propagation** (:func:`surviving_tuples`): a DRed-style
  least-fixpoint over the provenance graph computes which tuples remain
  derivable at all once a set of base tuples and/or rules is deleted — no
  probability computation needed, so it scales to the whole database.
- **Probability deltas** (:func:`what_if_deletion`): for chosen target
  tuples, condition the provenance polynomial on the deleted literals
  being false (Shannon restriction) and report old/new probabilities.

Both operate purely on captured provenance — the program is *not*
re-evaluated, which is the point of keeping provenance around.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from ..inference.exact import exact_probability
from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap
from .result import QueryResult, register_result


class WhatIfTarget:
    """Per-target outcome of a deletion scenario."""

    __slots__ = ("tuple_key", "old_probability", "new_probability",
                 "derivable")

    def __init__(self, tuple_key: str, old_probability: float,
                 new_probability: float, derivable: bool) -> None:
        self.tuple_key = tuple_key
        self.old_probability = old_probability
        self.new_probability = new_probability
        self.derivable = derivable

    @property
    def delta(self) -> float:
        return self.new_probability - self.old_probability

    def __repr__(self) -> str:
        return "WhatIfTarget(%s: %.4f -> %.4f%s)" % (
            self.tuple_key, self.old_probability, self.new_probability,
            "" if self.derivable else ", underivable",
        )


@register_result
class WhatIfReport(QueryResult):
    """Outcome of a deletion scenario across all requested targets."""

    query_type = "what_if"

    def __init__(self, deleted: Sequence[Literal],
                 targets: Sequence[WhatIfTarget],
                 lost_tuples: Sequence[str]) -> None:
        self.deleted = tuple(deleted)
        self.targets = tuple(targets)
        self.lost_tuples = tuple(lost_tuples)

    def target(self, tuple_key: str) -> WhatIfTarget:
        for entry in self.targets:
            if entry.tuple_key == tuple_key:
                return entry
        raise KeyError("No what-if entry for %r" % tuple_key)

    def to_text(self) -> str:
        lines = ["What-if: delete %s"
                 % ", ".join(str(lit) for lit in self.deleted)]
        lines.append("  tuples losing all derivations: %d"
                     % len(self.lost_tuples))
        for entry in self.targets:
            mark = "" if entry.derivable else "   [UNDERIVABLE]"
            lines.append("  %-40s %.4f -> %.4f  (%+.4f)%s"
                         % (entry.tuple_key, entry.old_probability,
                            entry.new_probability, entry.delta, mark))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "deleted": [{"kind": literal.kind, "key": literal.key}
                        for literal in self.deleted],
            "targets": [
                {"tuple": entry.tuple_key,
                 "old_probability": entry.old_probability,
                 "new_probability": entry.new_probability,
                 "derivable": entry.derivable}
                for entry in self.targets
            ],
            "lost_tuples": list(self.lost_tuples),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WhatIfReport":
        deleted = [Literal(entry["kind"], entry["key"])
                   for entry in payload["deleted"]]
        targets = [
            WhatIfTarget(entry["tuple"], entry["old_probability"],
                         entry["new_probability"], entry["derivable"])
            for entry in payload["targets"]
        ]
        return cls(deleted, targets, payload["lost_tuples"])

    def summary(self) -> str:
        return "delete %d literal(s): %d target(s) affected, %d lost" % (
            len(self.deleted), len(self.targets), len(self.lost_tuples))

    def __repr__(self) -> str:
        return "WhatIfReport(<%d deleted, %d targets, %d lost>)" % (
            len(self.deleted), len(self.targets), len(self.lost_tuples),
        )


def surviving_tuples(graph: ProvenanceGraph,
                     deleted: Iterable[Literal]) -> Set[str]:
    """Tuples still derivable after deleting base tuples and/or rules.

    Least fixpoint over the provenance graph: a base tuple survives unless
    deleted; a derived tuple survives when some execution of a non-deleted
    rule has an all-surviving body.
    """
    deleted_tuples = {lit.key for lit in deleted if lit.is_tuple}
    deleted_rules = {lit.key for lit in deleted if lit.is_rule}

    surviving: Set[str] = {
        key for key in graph.tuple_keys()
        if graph.is_base(key) and key not in deleted_tuples
    }
    changed = True
    while changed:
        changed = False
        for execution in graph.executions():
            if execution.rule_label in deleted_rules:
                continue
            if execution.head in surviving:
                continue
            if all(body_key in surviving for body_key in execution.body):
                surviving.add(execution.head)
                changed = True
    return surviving


def lost_tuples(graph: ProvenanceGraph,
                deleted: Iterable[Literal]) -> List[str]:
    """Tuples that become underivable under the deletion, sorted."""
    deleted = list(deleted)
    surviving = surviving_tuples(graph, deleted)
    result = []
    deleted_tuple_keys = {lit.key for lit in deleted if lit.is_tuple}
    for key in graph.tuple_keys():
        if key in surviving:
            continue
        if key in deleted_tuple_keys:
            result.append(key)
            continue
        if graph.is_derived(key) or graph.is_base(key):
            result.append(key)
    return sorted(result)


def delete_from_polynomial(polynomial: Polynomial,
                           deleted: Iterable[Literal]) -> Polynomial:
    """Condition the polynomial on every deleted literal being false."""
    result = polynomial
    for literal in deleted:
        result = result.restrict(literal, False)
    return result


def what_if_deletion(graph: ProvenanceGraph,
                     probabilities: ProbabilityMap,
                     deleted: Sequence[Literal],
                     target_polynomials: Dict[str, Polynomial],
                     evaluator=None) -> WhatIfReport:
    """Full deletion scenario: probability deltas plus lost tuples.

    ``target_polynomials`` maps tuple keys to their (already extracted)
    provenance polynomials; ``evaluator`` defaults to exact inference.
    """
    if evaluator is None:
        evaluator = exact_probability
    targets: List[WhatIfTarget] = []
    for tuple_key in sorted(target_polynomials):
        polynomial = target_polynomials[tuple_key]
        old_probability = evaluator(polynomial, probabilities)
        conditioned = delete_from_polynomial(polynomial, deleted)
        new_probability = (0.0 if conditioned.is_zero
                           else evaluator(conditioned, probabilities))
        targets.append(WhatIfTarget(
            tuple_key, old_probability, new_probability,
            derivable=not conditioned.is_zero))
    return WhatIfReport(deleted, targets, lost_tuples(graph, deleted))
