"""The grounding planner: lazy, query-directed evaluation for P3.

Under ``P3Config(grounding='query')`` (or ``'auto'`` on large programs)
:meth:`P3.evaluate` no longer runs the program to fixpoint.  Instead it
bootstraps a :class:`GroundingPlanner`: base facts and rule labels are
registered immediately (so ``probabilities`` and ``holds`` on base tuples
behave exactly as after full evaluation), and derived provenance is
grounded on demand, one goal at a time, through
:func:`repro.ground.relevance.ground_goal`.

Coverage contract
-----------------
Magic-set grounding of a goal produces *complete* derivations for every
derived tuple it touches (the demand predicate of a tuple triggers all of
its rules, recursively).  The planner therefore marks every derived key
of a grounded subgraph — and the goal pattern itself — as *covered*: a
covered key's presence, absence, and execution set in the merged graph
are final, so extraction over the merged graph is byte-identical to
full-evaluation extraction.  Keys are grounded at most once; patterns
already subsumed by an earlier goal are answered from coverage alone.

Fallback ladder
---------------
Goals the magic fragment cannot handle (negation never reaches here —
``supports`` rejects it — but e.g. programmatic reserved names can) drop
to the ``'full'`` rung: one ordinary fixpoint evaluation, merged into the
same graph and database in place, after which the planner answers
everything from the full model.  Budget trips
(:class:`~repro.datalog.engine.EvaluationError` from
``max_rounds``/``max_tuples``) are *not* a fallback trigger: full
evaluation would only hit the same rail harder, so they propagate.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from .. import telemetry
from ..core.config import P3Config
from ..datalog.ast import ClauseError, Program
from ..datalog.database import Database
from ..datalog.engine import Engine, EvaluationResult
from ..datalog.magic import MagicTransformError
from ..datalog.parser import ParseError, parse_atom
from ..datalog.terms import Atom, unify_atom
from ..provenance.graph import (
    GraphBuilder, ProvenanceGraph, register_program)
from .arena import FactStore
from .relevance import GroundedGoal, ground_goal

#: ``grounding='auto'`` switches to query-directed grounding at this many
#: program facts: below it, full evaluation is typically cheaper than the
#: per-goal transform + grounding round-trips.
AUTO_FACT_THRESHOLD = 512

#: Rung order of the planner's internal fallback ladder.
RUNGS = ("query", "full")


class GroundingPlanner:
    """Per-system planner deciding how each goal gets grounded.

    Thread-safety: goal grounding and graph merging run under one lock,
    mirroring the service-level contract for updates (readers of an
    already-covered key never block).
    """

    def __init__(self, system) -> None:
        self._system = system
        self._program: Program = system.program
        self._lock = threading.RLock()
        self.graph = ProvenanceGraph()
        self.database = Database()
        self._store = FactStore.from_program(self._program)
        self._idb: Set[str] = self._program.idb_relations()
        self._covered: Set[str] = set()
        self._signatures: List[Atom] = []
        self._signature_keys: Set[str] = set()
        self._fallback = False
        self.stats: Dict[str, int] = {
            "goals": 0, "fallbacks": 0, "derived_rows": 0, "firings": 0}

    # -- plan selection ----------------------------------------------------------

    @staticmethod
    def supports(program: Program, config: P3Config) -> bool:
        """Should this program/config pair evaluate lazily?"""
        mode = getattr(config, "grounding", "full")
        if mode == "full":
            return False
        if not program.rules:
            return False
        if any(rule.negations for rule in program.rules):
            return False
        if mode == "query":
            return True
        return len(program.facts) >= AUTO_FACT_THRESHOLD

    @property
    def fallback_active(self) -> bool:
        """True once the planner dropped to the ``'full'`` rung."""
        return self._fallback

    # -- bootstrap ---------------------------------------------------------------

    def bootstrap(self) -> EvaluationResult:
        """Register base facts and rules; derive nothing yet.

        The returned synthetic result reports 0 rounds and 0 seconds —
        the same tell a warm start gives — and its database holds exactly
        the base facts until goals start landing.
        """
        register_program(self.graph, self._program)
        for fact in self._program.facts:
            self.graph.add_base_tuple(
                str(fact.atom), fact.probability, fact.label)
            self.database.add(fact.atom)
        return EvaluationResult(
            self.database, rounds=0, firing_count=0, elapsed_seconds=0.0,
            derived_count=0)

    # -- coverage ----------------------------------------------------------------

    def ensure(self, key: str) -> None:
        """Make the merged graph authoritative for ``key``.

        After this returns, ``key``'s membership and derivations in the
        planner graph are final: extraction, ``holds``, and top-k behave
        exactly as they would after full evaluation.  Unparseable keys
        and non-IDB relations need no grounding (base facts were
        registered at bootstrap).
        """
        if self._fallback or key in self._covered:
            return
        if key.partition("(")[0] not in self._idb:
            return
        try:
            pattern = parse_atom(key)
        except ParseError:
            return  # not a tuple key; membership tests will say no
        if not pattern.is_ground:
            self.ensure_pattern(pattern)
            return
        with self._lock:
            if self._fallback or key in self._covered:
                return
            for signature in self._signatures:
                if unify_atom(signature, pattern, {}) is not None:
                    self._covered.add(key)
                    return
            self._ground(pattern)
            self._covered.add(key)

    def ensure_pattern(self, pattern: Atom) -> None:
        """Make the merged graph/database authoritative for a pattern.

        Used by ``registered_queries``: after this, matching ``pattern``
        against the planner database finds exactly the tuples full
        evaluation would.
        """
        if self._fallback or pattern.relation not in self._idb:
            return
        if pattern.is_ground:
            self.ensure(str(pattern))
            return
        key = str(pattern)
        with self._lock:
            if self._fallback or key in self._signature_keys:
                return
            self._ground(pattern)

    # -- grounding ---------------------------------------------------------------

    def _ground(self, pattern: Atom) -> None:
        """Ground one goal and merge it; falls back on transform errors."""
        config = self._system.config
        try:
            goal = ground_goal(
                self._program, pattern, base_store=self._store,
                max_rounds=config.max_rounds, max_tuples=config.max_tuples)
        except (MagicTransformError, ClauseError) as exc:
            self._fall_back(str(exc))
            return
        self._merge(pattern, goal)

    def _merge(self, pattern: Atom, goal: GroundedGoal) -> None:
        graph = self.graph
        subgraph = goal.graph
        for key in subgraph.tuple_keys():
            if subgraph.is_base(key):
                graph.add_base_tuple(key, subgraph.base_probability(key),
                                     subgraph.base_label(key))
        for label, probability in subgraph.rules().items():
            graph.add_rule(label, probability)
        for execution in subgraph.executions():
            graph.add_execution(execution)
        for atom in goal.atoms:
            self.database.add(atom)
        # Every derived key of the subgraph has its complete execution
        # set (see module docstring), so all of them are covered — not
        # just the answers.
        for key in subgraph.tuple_keys():
            if subgraph.is_derived(key):
                self._covered.add(key)
        self._covered.update(goal.answers)
        self._signatures.append(pattern)
        self._signature_keys.add(str(pattern))
        self.stats["goals"] += 1
        self.stats["derived_rows"] += goal.stats["derived_rows"]
        self.stats["firings"] += goal.stats["firings"]
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                "p3_ground_goals_total",
                help="Goals grounded query-directed").inc()
            rt.metrics.counter(
                "p3_ground_rows_total",
                help="Rows materialized by query-directed grounding",
            ).inc(goal.stats["derived_rows"])

    def _fall_back(self, reason: str) -> None:
        """Drop to the ``'full'`` rung: one fixpoint evaluation, merged."""
        rt = telemetry.runtime()
        config = self._system.config
        if rt.enabled:
            rt.metrics.counter(
                "p3_ground_fallbacks_total",
                help="Planner drops to full evaluation").inc()
        builder = GraphBuilder()
        engine = Engine(
            self._program, recorder=builder,
            capture_tables=config.capture_tables,
            max_rounds=config.max_rounds, max_tuples=config.max_tuples)
        with rt.tracer.span("ground.fallback", reason=reason):
            result = engine.run()
        full = builder.graph
        graph = self.graph
        for key in full.tuple_keys():
            if full.is_base(key):
                graph.add_base_tuple(key, full.base_probability(key),
                                     full.base_label(key))
        for label, probability in full.rules().items():
            graph.add_rule(label, probability)
        for execution in full.executions():
            graph.add_execution(execution)
        for atom in result.database.atoms():
            self.database.add(atom)
        self._fallback = True
        self.stats["fallbacks"] += 1
