"""Why-not provenance: explain why a tuple was NOT derived.

The paper's debugging story (Section 5.1) works forward from derived
tuples; the complementary question — "why is ``know("Mary","Ben")`` *not*
in the result?" — needs a different mechanism, because absent tuples have
no derivations to show.  This module implements rule-level why-not
analysis in the style of Huang et al.'s provenance for non-answers:

For every rule whose head unifies with the missing tuple, search for the
body instantiation that comes *closest* to firing — maximising the number
of satisfied subgoals — and report what still fails: the missing body
atoms (with the bindings accumulated from the satisfied prefix) and any
violated comparison guards.  The result tells the user exactly which base
tuple to add, or which guard blocks the derivation.

The search is exact but bounded (``max_nodes``): it explores partial
matches best-first by number of satisfied subgoals, so the top explanation
is found early even when the full space is large.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.ast import Program, Rule
from ..datalog.builtins import Comparison
from ..datalog.database import Database
from ..datalog.terms import Atom, Substitution, unify_atom
from .result import QueryResult, register_result


class WhyNotSearchExhausted(RuntimeError):
    """Raised when the bounded search gives up before finishing a rule."""


class FailedGuard:
    """A comparison guard that evaluated to false under the bindings."""

    __slots__ = ("guard", "rendering")

    def __init__(self, guard: Comparison, subst: Substitution) -> None:
        self.guard = guard
        left = subst.get(guard.left, guard.left)  # type: ignore[arg-type]
        right = subst.get(guard.right, guard.right)  # type: ignore[arg-type]
        self.rendering = "%s%s%s" % (left, guard.op, right)

    @classmethod
    def from_rendering(cls, rendering: str) -> "FailedGuard":
        """Rebuild from a serialised rendering (no Comparison object)."""
        instance = cls.__new__(cls)
        instance.guard = None  # type: ignore[assignment]
        instance.rendering = rendering
        return instance

    def __repr__(self) -> str:
        return "FailedGuard(%s)" % self.rendering

    def __str__(self) -> str:
        return self.rendering


class WhyNotCandidate:
    """One near-miss: a rule instantiation and what it still lacks."""

    __slots__ = ("rule_label", "satisfied", "missing", "failed_guards")

    def __init__(self, rule_label: str, satisfied: Sequence[str],
                 missing: Sequence[str],
                 failed_guards: Sequence[FailedGuard]) -> None:
        self.rule_label = rule_label
        self.satisfied = tuple(satisfied)
        self.missing = tuple(missing)
        self.failed_guards = tuple(failed_guards)

    @property
    def repair_size(self) -> int:
        """How many things must change for this rule to fire."""
        return len(self.missing) + len(self.failed_guards)

    def __repr__(self) -> str:
        return ("WhyNotCandidate(%s: %d satisfied, missing=%s, guards=%s)"
                % (self.rule_label, len(self.satisfied),
                   list(self.missing),
                   [str(g) for g in self.failed_guards]))


@register_result
class WhyNotReport(QueryResult):
    """All near-miss explanations for one missing tuple, best first."""

    query_type = "why_not"

    def __init__(self, tuple_key: str, derivable: bool,
                 candidates: Sequence[WhyNotCandidate]) -> None:
        self.tuple_key = tuple_key
        self.derivable = derivable
        self.candidates = tuple(sorted(
            candidates, key=lambda c: (c.repair_size, c.rule_label)))

    @property
    def best(self) -> Optional[WhyNotCandidate]:
        return self.candidates[0] if self.candidates else None

    def to_text(self) -> str:
        if self.derivable:
            return ("%s IS derivable — use an Explanation Query instead"
                    % self.tuple_key)
        lines = ["Why not %s?" % self.tuple_key]
        if not self.candidates:
            lines.append("  no rule head matches this tuple")
        for candidate in self.candidates:
            lines.append("  rule %s almost fires:" % candidate.rule_label)
            for key in candidate.satisfied:
                lines.append("    have    %s" % key)
            for key in candidate.missing:
                lines.append("    MISSING %s" % key)
            for guard in candidate.failed_guards:
                lines.append("    BLOCKED by guard %s" % guard)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "tuple": self.tuple_key,
            "derivable": self.derivable,
            "candidates": [
                {"rule": candidate.rule_label,
                 "satisfied": list(candidate.satisfied),
                 "missing": list(candidate.missing),
                 "failed_guards": [str(guard)
                                   for guard in candidate.failed_guards]}
                for candidate in self.candidates
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WhyNotReport":
        candidates = [
            WhyNotCandidate(
                entry["rule"], entry["satisfied"], entry["missing"],
                [FailedGuard.from_rendering(text)
                 for text in entry["failed_guards"]])
            for entry in payload["candidates"]
        ]
        return cls(payload["tuple"], payload["derivable"], candidates)

    def summary(self) -> str:
        if self.derivable:
            return "%s IS derivable" % self.tuple_key
        best = self.best
        if best is None:
            return "%s: no rule head matches" % self.tuple_key
        return "%s: closest rule %s needs %d repair(s)" % (
            self.tuple_key, best.rule_label, best.repair_size)

    def __repr__(self) -> str:
        return "WhyNotReport(%s, %d candidates)" % (
            self.tuple_key, len(self.candidates))


def why_not(program: Program, database: Database, target: Atom,
            max_nodes: int = 50000,
            per_rule_candidates: int = 3) -> WhyNotReport:
    """Explain why ``target`` (a ground atom) is absent from the model.

    Returns a :class:`WhyNotReport` with up to ``per_rule_candidates``
    near-misses per rule, ranked by repair size.  If the tuple is in fact
    present, the report says so and carries no candidates.
    """
    if not target.is_ground:
        raise ValueError("why_not requires a ground atom: %s" % target)
    if target in database:
        return WhyNotReport(str(target), True, ())

    candidates: List[WhyNotCandidate] = []
    for rule in program.rules:
        head_subst = unify_atom(rule.head, target)
        if head_subst is None:
            continue
        candidates.extend(_near_misses(
            rule, head_subst, database, max_nodes, per_rule_candidates))
    return WhyNotReport(str(target), False, candidates)


def _near_misses(rule: Rule, head_subst: Substitution, database: Database,
                 max_nodes: int,
                 keep: int) -> List[WhyNotCandidate]:
    """Best-first search over partial body instantiations of one rule.

    State: (position, substitution, satisfied keys, missing renderings).
    At each body atom we either match it against the database (extending
    the substitution) or declare it missing and move on; states with fewer
    misses are expanded first, so the closest instantiations surface
    before the budget runs out.
    """
    counter = itertools.count()
    heap: List[Tuple[Tuple[int, int], int, int, Substitution,
                     Tuple[str, ...], Tuple[str, ...]]] = []

    def push(position: int, subst: Substitution,
             satisfied: Tuple[str, ...], missing: Tuple[str, ...]) -> None:
        heapq.heappush(heap, (
            (len(missing), -len(satisfied)), next(counter),
            position, subst, satisfied, missing,
        ))

    push(0, dict(head_subst), (), ())
    results: List[WhyNotCandidate] = []
    expanded = 0

    while heap and len(results) < keep:
        expanded += 1
        if expanded > max_nodes:
            break
        _, _, position, subst, satisfied, missing = heapq.heappop(heap)

        if position == len(rule.body):
            failed = _failed_guards(rule, subst)
            if missing or failed:
                results.append(WhyNotCandidate(
                    rule.label or "?", satisfied, missing, failed))
            # A complete match with no misses and no failed guards would
            # mean the tuple IS derivable through this rule; the caller
            # already checked presence, so that can only happen when the
            # database was evaluated with limits. Report it as zero-repair.
            if not missing and not failed:
                results.append(WhyNotCandidate(
                    rule.label or "?", satisfied, (), ()))
            continue

        pattern = rule.body[position]
        matched_any = False
        for atom, extended in database.relation(
                pattern.relation).match_atoms(pattern, subst):
            matched_any = True
            push(position + 1, extended, satisfied + (str(atom),), missing)
        # The "this subgoal is missing" branch — always available, but
        # costed so fully-matched branches win.
        rendering = str(pattern.substitute(subst))
        push(position + 1, subst, satisfied, missing + (rendering,))
        if not matched_any and not heap:
            break

    # Deduplicate identical candidates and keep only this rule's closest
    # near-misses (anything needing more repairs is noise).
    unique: Dict[Tuple, WhyNotCandidate] = {}
    for candidate in results:
        key = (candidate.missing, tuple(map(str, candidate.failed_guards)),
               candidate.satisfied)
        unique.setdefault(key, candidate)
    deduped = list(unique.values())
    if not deduped:
        return []
    best = min(candidate.repair_size for candidate in deduped)
    return [c for c in deduped if c.repair_size == best][:keep]


def _failed_guards(rule: Rule, subst: Substitution) -> List[FailedGuard]:
    failed = []
    for guard in rule.constraints:
        try:
            holds = guard.evaluate(subst)
        except Exception:
            continue  # unbound (a missing subgoal owned the variable)
        if not holds:
            failed.append(FailedGuard(guard, subst))
    return failed
