"""Bounded-memory streaming extraction over grounded subgraphs.

Query-directed grounding keeps the provenance graph small, but a single
high-fanout tuple can still blow past a monomial budget during λ⁰
extraction.  This module turns that cliff into a stream: extraction runs
under the existing :class:`~repro.resilience.budgets.ResourceBudget`
meters, and when a budget trips, the :class:`BudgetExceededError`'s
root-level ``partial`` polynomial (see
:meth:`repro.provenance.extraction._Extractor.expand_root`) becomes a
well-formed under-approximation the caller can use immediately — every
monomial of the partial is a complete derivation, so its probability is a
sound lower bound.

:func:`iter_deepening` additionally streams the ProbLog-style anytime
sequence: complete extractions at hop limits 1, 2, … each a lower bound
converging to the full λ⁰ restricted to the target hop limit.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.errors import BudgetExceededError
from ..datalog.ast import Program
from ..datalog.terms import Atom
from ..provenance.extraction import extract_polynomial
from ..provenance.graph import ProvenanceGraph
from ..provenance.polynomial import Polynomial
from ..resilience.budgets import ResourceBudget, activate_budget
from .arena import FactStore
from .relevance import GroundedGoal, ground_goal


class StreamOutcome:
    """One streamed extraction step: a polynomial plus completeness."""

    __slots__ = ("key", "polynomial", "complete", "resource", "hop_limit")

    def __init__(self, key: str, polynomial: Polynomial, complete: bool,
                 resource: Optional[str], hop_limit: Optional[int]) -> None:
        self.key = key
        self.polynomial = polynomial
        #: True when extraction finished; False when a budget tripped and
        #: ``polynomial`` is the partial under-approximation.
        self.complete = complete
        #: The budget resource that tripped (``None`` when complete).
        self.resource = resource
        self.hop_limit = hop_limit

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "complete": self.complete,
            "resource": self.resource,
            "hop_limit": self.hop_limit,
            "monomials": len(self.polynomial),
        }

    def __repr__(self) -> str:
        return "StreamOutcome(%r, complete=%s, monomials=%d)" % (
            self.key, self.complete, len(self.polynomial))


def stream_extract(graph: ProvenanceGraph, key: str,
                   hop_limit: Optional[int] = None,
                   max_monomials: Optional[int] = None,
                   budget: Optional[ResourceBudget] = None) -> StreamOutcome:
    """Extract λ⁰ for ``key``, surviving budget exhaustion with a partial.

    With no ``budget`` the ambient one (``activate_budget``) applies, so
    the executor's resilience plumbing keeps working unchanged; passing a
    budget shadows the ambient one for this extraction only.
    """
    scope = activate_budget(budget) if budget is not None else nullcontext()
    with scope:
        try:
            polynomial = extract_polynomial(
                graph, key, hop_limit=hop_limit, max_monomials=max_monomials)
            return StreamOutcome(key, polynomial, True, None, hop_limit)
        except BudgetExceededError as exc:
            partial = exc.partial
            if partial is None:
                partial = Polynomial.zero()
            return StreamOutcome(key, partial, False, exc.resource, hop_limit)


def iter_deepening(graph: ProvenanceGraph, key: str, hop_limit: int,
                   max_monomials: Optional[int] = None,
                   budget: Optional[ResourceBudget] = None
                   ) -> Iterator[StreamOutcome]:
    """Yield complete-at-depth extractions for hop limits 1..``hop_limit``.

    Each yielded outcome with ``complete=True`` is the exact λ⁰ restricted
    to its depth — a monotonically improving lower bound on the
    ``hop_limit``-deep polynomial.  The stream stops after the first
    budget trip (deeper passes could only trip again, sooner).
    """
    if hop_limit is None or hop_limit <= 0:
        raise ValueError("iter_deepening requires a positive hop_limit")
    for depth in range(1, hop_limit + 1):
        outcome = stream_extract(graph, key, hop_limit=depth,
                                 max_monomials=max_monomials, budget=budget)
        yield outcome
        if not outcome.complete:
            return


def ground_and_stream(program: Program, pattern: Atom,
                      hop_limit: Optional[int] = None,
                      max_monomials: Optional[int] = None,
                      budget: Optional[ResourceBudget] = None,
                      base_store: Optional[FactStore] = None,
                      max_rounds: Optional[int] = None,
                      max_tuples: Optional[int] = None
                      ) -> Tuple[GroundedGoal, List[StreamOutcome]]:
    """Ground one goal and stream-extract every answer's polynomial."""
    goal = ground_goal(program, pattern, base_store=base_store,
                       max_rounds=max_rounds, max_tuples=max_tuples)
    outcomes = [
        stream_extract(goal.graph, key, hop_limit=hop_limit,
                       max_monomials=max_monomials, budget=budget)
        for key in goal.answers
    ]
    return goal, outcomes
