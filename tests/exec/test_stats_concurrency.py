"""Concurrency and aggregation tests for ExecutorStats.

The executor records stages and queries from worker threads while the
owning thread may call ``reset()`` or snapshot ``as_dict()`` at any
moment; these tests race those paths deliberately.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.exec.stats import STAGES, ExecutorStats


class _FakeCache:
    def __init__(self, **stats):
        self._stats = stats

    def stats(self):
        return dict(self._stats)


class TestConcurrentRecording:
    def test_recording_from_many_threads_is_lossless(self):
        stats = ExecutorStats()
        threads, per_thread = 8, 200

        def work():
            for _ in range(per_thread):
                stats.record_stage("infer", 0.001)
                stats.record_query("probability")
                stats.record_error()

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for _ in range(threads):
                pool.submit(work)
        total = threads * per_thread
        assert stats.stage_calls("infer") == total
        assert stats.stage_seconds("infer") > 0
        assert stats.total_queries == total
        assert stats.errors == total

    def test_reset_racing_recorders_stays_consistent(self):
        stats = ExecutorStats()
        stop = threading.Event()
        failures = []

        def record():
            while not stop.is_set():
                stats.record_stage("query", 0.0001)
                stats.record_query("explain")
                stats.record_batch(deduplicated=1)
                stats.record_error()

        def snapshot():
            while not stop.is_set():
                document = stats.as_dict()
                # A snapshot taken mid-race must still be internally
                # consistent: totals derive from the same locked state.
                if document["total_queries"] != sum(
                        document["queries"].values()):
                    failures.append(document)
                if document["errors"] < 0:
                    failures.append(document)

        workers = [threading.Thread(target=record) for _ in range(4)]
        workers.append(threading.Thread(target=snapshot))
        for worker in workers:
            worker.start()
        for _ in range(200):
            stats.reset()
        stop.set()
        for worker in workers:
            worker.join()
        assert failures == []
        stats.reset()
        assert stats.total_queries == 0
        assert stats.errors == 0
        assert stats.stage_calls("query") == 0
        assert stats.as_dict()["batches"] == 0

    def test_errors_property_reads_a_stable_value(self):
        stats = ExecutorStats()
        stop = threading.Event()
        seen = []

        def bump():
            while not stop.is_set():
                stats.record_error()

        worker = threading.Thread(target=bump)
        worker.start()
        try:
            previous = 0
            for _ in range(500):
                current = stats.errors
                seen.append(current >= previous)
                previous = current
        finally:
            stop.set()
            worker.join()
        assert all(seen)
        assert repr(stats).endswith("%d errors)" % stats.errors)


class TestAsDictAggregation:
    def test_every_stage_present_even_when_unrecorded(self):
        document = ExecutorStats().as_dict()
        assert set(document["stages"]) == set(STAGES)
        for entry in document["stages"].values():
            assert entry == {"seconds": 0.0, "calls": 0}

    def test_cache_snapshots_keyed_by_cache(self):
        stats = ExecutorStats()
        document = stats.as_dict(
            polynomial_cache=_FakeCache(hits=3, misses=1, invalidations=2),
            probability_cache=_FakeCache(hits=5, misses=2, invalidations=4))
        assert document["caches"]["polynomial"]["hits"] == 3
        assert document["caches"]["probability"]["misses"] == 2
        assert document["invalidations"] == 6

    def test_one_sided_cache_snapshot(self):
        document = ExecutorStats().as_dict(
            probability_cache=_FakeCache(hits=1, invalidations=0))
        assert list(document["caches"]) == ["probability"]
        assert document["invalidations"] == 0

    def test_no_caches_no_cache_keys(self):
        document = ExecutorStats().as_dict()
        assert "caches" not in document
        assert "invalidations" not in document

    def test_counters_roll_up(self):
        stats = ExecutorStats()
        stats.record_batch(deduplicated=2)
        stats.record_batch()
        stats.record_query("probability")
        stats.record_query("probability")
        stats.record_query("explain")
        document = stats.as_dict()
        assert document["batches"] == 2
        assert document["deduplicated"] == 2
        assert document["queries"] == {"probability": 2, "explain": 1}
        assert document["total_queries"] == 3
