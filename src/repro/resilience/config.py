"""The ``P3Config(resilience=...)`` knob group.

One :class:`ResilienceConfig` object collects every resilience tunable —
the budget caps, the ladder, the retry and breaker policies, and the
pool-supervision thresholds — so the executor reads a single field
instead of a dozen loose keywords.  ``None`` (the config default) keeps
the pipeline's historical behaviour: no budgets, no ladder, no breakers,
and pool failures handled by the pre-existing sequential degrade.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .breaker import BreakerBoard, BreakerPolicy
from .budgets import ResourceBudget
from .ladder import FallbackLadder, FallbackRung
from .retry import RetryPolicy

#: The ladder used when ``ResilienceConfig(ladder=None)``: exact Shannon
#: expansion, then the BDD compiler (different blow-up profile), then the
#: vectorized sampler as the rung that always answers something.
DEFAULT_LADDER: Tuple[str, ...] = ("exact", "bdd", "parallel")


class ResilienceConfig:
    """Tunables for the resilience layer.

    Parameters
    ----------
    budget:
        Per-query :class:`~repro.resilience.budgets.ResourceBudget`
        (None = unbudgeted).
    ladder:
        Fallback chain, top rung first; entries may be backend names,
        dicts, or :class:`~repro.resilience.ladder.FallbackRung` objects.
        ``None`` uses :data:`DEFAULT_LADDER`.  ``fallback=False``
        disables the ladder entirely (budgets and pool supervision still
        apply).
    retry:
        Default :class:`~repro.resilience.retry.RetryPolicy` for rungs
        without their own.
    breaker:
        :class:`~repro.resilience.breaker.BreakerPolicy` shared by all
        per-backend breakers; ``breakers=False`` disables circuit
        breaking.
    pool_hang_seconds:
        How long a batch waits for *any* worker progress before declaring
        the pool hung (None = never; keeps the historical behaviour).
    pool_max_rebuilds:
        How many times a hung/broken pool is rebuilt before the executor
        degrades (sequential for broken pools, error outcomes for hung
        ones).
    """

    __slots__ = ("budget", "ladder", "retry", "breaker", "fallback",
                 "breakers", "pool_hang_seconds", "pool_max_rebuilds")

    def __init__(self,
                 budget: Optional[ResourceBudget] = None,
                 ladder: Optional[Sequence[object]] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerPolicy] = None,
                 fallback: bool = True,
                 breakers: bool = True,
                 pool_hang_seconds: Optional[float] = None,
                 pool_max_rebuilds: int = 1) -> None:
        if pool_hang_seconds is not None and pool_hang_seconds <= 0:
            raise ValueError("pool_hang_seconds must be positive or None")
        if pool_max_rebuilds < 0:
            raise ValueError("pool_max_rebuilds must be non-negative")
        self.budget = budget
        self.ladder = tuple(
            FallbackRung.coerce(rung)
            for rung in (ladder if ladder is not None else DEFAULT_LADDER))
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else BreakerPolicy()
        self.fallback = fallback
        self.breakers = breakers
        self.pool_hang_seconds = pool_hang_seconds
        self.pool_max_rebuilds = pool_max_rebuilds

    def build_board(self) -> Optional[BreakerBoard]:
        """A fresh breaker board per this config (None when disabled)."""
        if not self.breakers:
            return None
        return BreakerBoard(self.breaker)

    def build_ladder(self, board: Optional[BreakerBoard] = None,
                     **overrides: object) -> Optional[FallbackLadder]:
        """A ladder wired to ``board`` (None when fallback is disabled)."""
        if not self.fallback:
            return None
        return FallbackLadder(self.ladder, retry=self.retry,
                              breakers=board, **overrides)

    def to_dict(self) -> dict:
        return {
            "budget": self.budget.to_dict() if self.budget else None,
            "ladder": [rung.to_dict() for rung in self.ladder],
            "retry": self.retry.to_dict(),
            "breaker": self.breaker.to_dict(),
            "fallback": self.fallback,
            "breakers": self.breakers,
            "pool_hang_seconds": self.pool_hang_seconds,
            "pool_max_rebuilds": self.pool_max_rebuilds,
        }

    def __repr__(self) -> str:
        return "ResilienceConfig(ladder=%s, fallback=%r)" % (
            " -> ".join(rung.method for rung in self.ladder), self.fallback)
