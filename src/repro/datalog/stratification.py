"""Stratification analysis for programs with negation.

The paper's language is a union of conjunctive rules *without* negation
(Section 1); extending P3 to "first-order PLP programs with negation" is
its stated future work (Section 8).  This module implements the classical
stratified-negation semantics for that extension:

- the *predicate dependency graph* has an edge q → p for every rule with
  head relation q and body relation p, marked negative when p occurs under
  ``not``;
- a program is **stratifiable** when no cycle of the dependency graph
  contains a negative edge; strata are then the condensation's topological
  levels, and evaluation runs stratum by stratum (lower strata reach their
  fixpoint before any rule negating them runs).

Probabilistic soundness: a negated subgoal ``not q(...)`` is only
meaningful under the distribution semantics when q's truth is
*deterministic* — otherwise "q is absent" would itself be a probabilistic
event and the monotone-DNF provenance model of Section 3 no longer covers
it.  :func:`check_negation_determinism` therefore requires every relation
in the support closure of a negated subgoal to be derived exclusively from
probability-1.0 facts and rules, and raises :class:`StratificationError`
otherwise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .ast import Program, Rule


class StratificationError(ValueError):
    """Raised for unstratifiable programs or unsound probabilistic negation."""


def dependency_edges(program: Program) -> Set[Tuple[str, str, bool]]:
    """All (head_relation, body_relation, is_negative) dependency edges."""
    edges: Set[Tuple[str, str, bool]] = set()
    for rule in program.rules:
        for atom in rule.body:
            edges.add((rule.head.relation, atom.relation, False))
        for atom in rule.negations:
            edges.add((rule.head.relation, atom.relation, True))
    return edges


def _condense(edges: Set[Tuple[str, str, bool]],
              vertices: Set[str]) -> List[FrozenSet[str]]:
    """Strongly connected components of the dependency graph (Tarjan)."""
    adjacency: Dict[str, Set[str]] = {v: set() for v in vertices}
    for head, body, _negative in edges:
        adjacency.setdefault(head, set()).add(body)
        adjacency.setdefault(body, set())

    index_counter = [0]
    indexes: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[FrozenSet[str]] = []

    for start in sorted(adjacency):
        if start in indexes:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            vertex, child = work[-1]
            if child == 0:
                indexes[vertex] = lowlinks[vertex] = index_counter[0]
                index_counter[0] += 1
                stack.append(vertex)
                on_stack.add(vertex)
            advanced = False
            successors = sorted(adjacency[vertex])
            for offset in range(child, len(successors)):
                successor = successors[offset]
                if successor not in indexes:
                    work[-1] = (vertex, offset + 1)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[vertex] = min(lowlinks[vertex],
                                           indexes[successor])
            if advanced:
                continue
            work.pop()
            if lowlinks[vertex] == indexes[vertex]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                components.append(frozenset(component))
            if work:
                parent, _ = work[-1]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[vertex])
    return components


def stratify(program: Program) -> Dict[str, int]:
    """Assign each relation a stratum number (0-based).

    Raises :class:`StratificationError` when some recursion passes through
    negation (a negative edge inside a strongly connected component).
    """
    edges = dependency_edges(program)
    vertices = set(program.relations())
    components = _condense(edges, vertices)
    component_of: Dict[str, FrozenSet[str]] = {}
    for component in components:
        for relation in component:
            component_of[relation] = component

    for head, body, negative in edges:
        if negative and component_of[head] == component_of[body]:
            raise StratificationError(
                "Unstratifiable program: relation %r is negated within its "
                "own recursive component %s"
                % (body, sorted(component_of[head])))

    # Longest-path layering over the component DAG: a relation's stratum is
    # 0 for pure EDB, and for each rule the head's stratum is ≥ the body's
    # (strictly greater across negative edges).
    strata: Dict[FrozenSet[str], int] = {c: 0 for c in components}
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > len(components) + 2:
            raise StratificationError(
                "Stratum assignment failed to converge (internal error)")
        for head, body, negative in sorted(edges):
            head_c = component_of[head]
            body_c = component_of[body]
            if head_c == body_c:
                continue
            required = strata[body_c] + (1 if negative else 0)
            if strata[head_c] < required:
                strata[head_c] = required
                changed = True
    return {
        relation: strata[component_of[relation]]
        for relation in vertices
    }


def rule_strata(program: Program) -> List[List[Rule]]:
    """Group the program's rules by evaluation stratum, lowest first."""
    relation_strata = stratify(program)
    highest = max(relation_strata.values(), default=0)
    groups: List[List[Rule]] = [[] for _ in range(highest + 1)]
    for rule in program.rules:
        groups[relation_strata[rule.head.relation]].append(rule)
    return [group for group in groups if group] or [[]]


def deterministic_relations(program: Program) -> Set[str]:
    """Relations whose truth is certain (derivable only via probability 1).

    A relation is deterministic when every fact asserting it has
    probability 1.0 and every rule deriving it has probability 1.0 *and*
    only deterministic relations in its positive body.  (Negated subgoals
    do not affect determinism: they are themselves required to be
    deterministic.)
    """
    candidate: Set[str] = set(program.relations())
    for fact in program.facts:
        if fact.probability < 1.0:
            candidate.discard(fact.atom.relation)
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head = rule.head.relation
            if head not in candidate:
                continue
            sound = rule.probability == 1.0 and all(
                atom.relation in candidate for atom in rule.body)
            if not sound:
                candidate.discard(head)
                changed = True
    return candidate


def support_closure(program: Program, relation: str) -> Set[str]:
    """All relations a given relation's derivations can depend on."""
    closure: Set[str] = set()
    frontier = [relation]
    while frontier:
        current = frontier.pop()
        if current in closure:
            continue
        closure.add(current)
        for rule in program.rules:
            if rule.head.relation != current:
                continue
            for atom in rule.body:
                frontier.append(atom.relation)
            for atom in rule.negations:
                frontier.append(atom.relation)
    return closure


def check_negation_determinism(program: Program) -> None:
    """Reject probabilistic negation (see the module docstring).

    Raises :class:`StratificationError` naming the offending rule and the
    first non-deterministic relation in the negated subgoal's support.
    """
    deterministic = deterministic_relations(program)
    for rule in program.rules:
        for negated in rule.negations:
            for relation in sorted(support_closure(program,
                                                   negated.relation)):
                if relation not in deterministic:
                    raise StratificationError(
                        "Rule %s negates %r, whose support includes the "
                        "probabilistic relation %r; negation over "
                        "probabilistic tuples is outside the monotone "
                        "provenance model (see DESIGN.md)"
                        % (rule.label, negated.relation, relation))


def validate_program(program: Program) -> Dict[str, int]:
    """Full static validation: stratify and check negation soundness.

    Returns the relation → stratum map for valid programs.
    """
    strata = stratify(program)
    check_negation_determinism(program)
    return strata
