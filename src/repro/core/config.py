"""Tunables for the P3 system facade.

One :class:`P3Config` object collects every knob that recurs across the
query types, so applications configure once instead of threading keyword
arguments through each call.  All fields have the defaults used by the
paper's evaluation where it states them (hop limits 4/6 are per-experiment
and passed explicitly by the benchmark harness).
"""

from __future__ import annotations

from typing import Optional


class P3Config:
    """Configuration for :class:`repro.core.system.P3`.

    Parameters
    ----------
    probability_method:
        Default backend for success probabilities
        ("exact", "bdd", "mc", "parallel", "karp-luby").
    influence_method:
        Default backend for influence queries ("exact", "mc", "parallel").
    derivation_method:
        Default algorithm for Derivation Queries ("naive", "naive-mc",
        "union-bound", "match-group").  ``None`` keeps the historical
        implicit default of "naive" but makes
        :meth:`repro.core.system.P3.sufficient_provenance` emit a
        ``DeprecationWarning`` when no method is passed explicitly.
    samples:
        Monte-Carlo sample budget for estimation backends.
    seed:
        Seed for every stochastic component (None = nondeterministic).
    hop_limit:
        Default hop limit for polynomial extraction (None = unbounded).
    max_monomials:
        Abort extraction when an intermediate polynomial exceeds this
        size (None = unbounded).
    max_rounds / max_tuples:
        Engine safety limits.
    grounding:
        Evaluation strategy: ``"full"`` (default) materializes the whole
        least model up front; ``"query"`` evaluates lazily through the
        query-directed grounding planner (:mod:`repro.ground`), grounding
        only the provenance each queried goal needs; ``"auto"`` picks
        ``"query"`` for large programs (see
        :data:`repro.ground.planner.AUTO_FACT_THRESHOLD`) and ``"full"``
        otherwise.  Programs with negation always evaluate fully.
    capture_tables:
        Maintain the relational ``prov_``/``rule_`` capture tables during
        evaluation (Section 3.2) in addition to the live graph.
    executor_workers:
        Thread-pool width for the batch query executor (None = default 4).
    inference_workers:
        Shard-worker hint passed to the sampling kernel through every
        :class:`repro.inference.request.InferenceRequest` the executor
        builds (the ``parallel`` and ``karp-luby`` backends shard large
        sample budgets across this many kernel-pool workers).  ``None``
        (the default) follows the executor's resolved ``max_workers``, so
        the "parallel" backend is actually parallel out of the box.
    polynomial_cache_size / result_cache_size:
        LRU bounds for the executor's shared polynomial and result caches
        (None = unbounded).
    query_timeout:
        Default per-query deadline in seconds for executor batches (None =
        no deadline).  A query exceeding it yields a ``TimeoutError``
        outcome instead of stalling the batch; per-spec ``timeout``
        parameters override it.
    isolation:
        Where inference backends execute: ``"thread"`` (default, the
        historical in-process path), ``"process"`` (route every backend
        call through the spawn-based worker pool of
        :mod:`repro.resilience.isolation` — wedged computations are
        SIGKILLed instead of abandoned, crashes are contained, memory is
        capped), or ``"auto"`` (process isolation where the platform
        supports it — POSIX — threads elsewhere).
    isolation_workers:
        Resident subprocess workers for the isolation pool (None = 2).
        Also bounds concurrent isolated inference: executor threads block
        when all workers are busy.
    worker_memory_bytes:
        Per-worker ``RLIMIT_AS`` address-space cap, applied after
        interpreter boot (None = uncapped).  A worker that blows it fails
        that query with a typed ``WorkerMemoryError`` instead of taking
        the process down.
    telemetry:
        Optional :class:`repro.telemetry.TelemetryConfig`.  When set, the
        :class:`repro.core.system.P3` constructor installs it as the
        process-wide telemetry runtime (tracing spans plus metrics) before
        evaluating anything.  ``None`` (the default) leaves the runtime
        untouched — telemetry stays off unless configured elsewhere.
    resilience:
        Optional :class:`repro.resilience.ResilienceConfig`.  When set,
        the batch executor enforces its resource budget around every
        query, answers probabilities through its backend fallback ladder
        (with retries and per-backend circuit breakers), and supervises
        the worker pool per its hang thresholds.  ``None`` (the default)
        keeps the historical single-backend behaviour.
    """

    def __init__(self,
                 probability_method: str = "exact",
                 influence_method: str = "exact",
                 derivation_method: Optional[str] = None,
                 samples: int = 10000,
                 seed: Optional[int] = None,
                 hop_limit: Optional[int] = None,
                 max_monomials: Optional[int] = None,
                 max_rounds: Optional[int] = None,
                 max_tuples: Optional[int] = None,
                 grounding: str = "full",
                 capture_tables: bool = True,
                 executor_workers: Optional[int] = None,
                 inference_workers: Optional[int] = None,
                 polynomial_cache_size: Optional[int] = 2048,
                 result_cache_size: Optional[int] = 8192,
                 query_timeout: Optional[float] = None,
                 isolation: str = "thread",
                 isolation_workers: Optional[int] = None,
                 worker_memory_bytes: Optional[int] = None,
                 telemetry: Optional[object] = None,
                 resilience: Optional[object] = None) -> None:
        if samples <= 0:
            raise ValueError("samples must be positive")
        if hop_limit is not None and hop_limit <= 0:
            raise ValueError("hop_limit must be positive or None")
        if executor_workers is not None and executor_workers <= 0:
            raise ValueError("executor_workers must be positive or None")
        if inference_workers is not None and inference_workers <= 0:
            raise ValueError("inference_workers must be positive or None")
        if query_timeout is not None and query_timeout <= 0:
            raise ValueError("query_timeout must be positive or None")
        if grounding not in ("full", "query", "auto"):
            raise ValueError(
                "grounding must be 'full', 'query', or 'auto', got %r"
                % (grounding,))
        if isolation not in ("thread", "process", "auto"):
            raise ValueError(
                "isolation must be 'thread', 'process', or 'auto', got %r"
                % (isolation,))
        if isolation_workers is not None and isolation_workers <= 0:
            raise ValueError("isolation_workers must be positive or None")
        if worker_memory_bytes is not None and worker_memory_bytes <= 0:
            raise ValueError("worker_memory_bytes must be positive or None")
        for name, size in (("polynomial_cache_size", polynomial_cache_size),
                           ("result_cache_size", result_cache_size)):
            if size is not None and size <= 0:
                raise ValueError("%s must be positive or None" % name)
        self.probability_method = probability_method
        self.influence_method = influence_method
        self.derivation_method = derivation_method
        self.samples = samples
        self.seed = seed
        self.hop_limit = hop_limit
        self.max_monomials = max_monomials
        self.max_rounds = max_rounds
        self.max_tuples = max_tuples
        self.grounding = grounding
        self.capture_tables = capture_tables
        self.executor_workers = executor_workers
        self.inference_workers = inference_workers
        self.polynomial_cache_size = polynomial_cache_size
        self.result_cache_size = result_cache_size
        self.query_timeout = query_timeout
        self.isolation = isolation
        self.isolation_workers = isolation_workers
        self.worker_memory_bytes = worker_memory_bytes
        self.telemetry = telemetry
        self.resilience = resilience

    def replace(self, **overrides: object) -> "P3Config":
        """A copy with some fields replaced."""
        fields = {
            "probability_method": self.probability_method,
            "influence_method": self.influence_method,
            "derivation_method": self.derivation_method,
            "samples": self.samples,
            "seed": self.seed,
            "hop_limit": self.hop_limit,
            "max_monomials": self.max_monomials,
            "max_rounds": self.max_rounds,
            "max_tuples": self.max_tuples,
            "grounding": self.grounding,
            "capture_tables": self.capture_tables,
            "executor_workers": self.executor_workers,
            "inference_workers": self.inference_workers,
            "polynomial_cache_size": self.polynomial_cache_size,
            "result_cache_size": self.result_cache_size,
            "query_timeout": self.query_timeout,
            "isolation": self.isolation,
            "isolation_workers": self.isolation_workers,
            "worker_memory_bytes": self.worker_memory_bytes,
            "telemetry": self.telemetry,
            "resilience": self.resilience,
        }
        unknown = set(overrides) - set(fields)
        if unknown:
            raise TypeError("Unknown config fields: %s" % ", ".join(sorted(unknown)))
        fields.update(overrides)  # type: ignore[arg-type]
        return P3Config(**fields)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            "P3Config(probability_method=%r, influence_method=%r, samples=%d,"
            " seed=%r, hop_limit=%r)" % (
                self.probability_method, self.influence_method,
                self.samples, self.seed, self.hop_limit,
            )
        )
