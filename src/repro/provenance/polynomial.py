"""Provenance polynomials: monotone Boolean DNF over tuple and rule literals.

Section 3.3 of the paper adopts provenance polynomials as the algebraic
provenance representation.  A polynomial is a sum (``+``, alternative
derivations) of monomials; a monomial is a product (``·``, conjunctive use)
of literals; a literal is either a base tuple or a rule, each an independent
Boolean random variable with a probability of being true.

The representation here is canonical-by-construction: monomials are literal
*sets* (idempotent product), polynomials are monomial *sets* (idempotent
sum), and the absorption law ``a + a·b = a`` is applied on every operation.
Absorption is exactly what makes the paper's cycle-elimination argument
(Equations 6-13) go through, so keeping polynomials absorbed at all times
is a correctness requirement, not an optimisation.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)


class Literal:
    """A Boolean provenance variable: a base tuple or a rule.

    Literals are interned by ``(kind, key)``; ``key`` is the canonical
    rendering of the base tuple (e.g. ``trust(1,2)``) or the rule label
    (e.g. ``r3``).
    """

    __slots__ = ("kind", "key", "_hash")

    KIND_TUPLE = "tuple"
    KIND_RULE = "rule"

    def __init__(self, kind: str, key: str) -> None:
        if kind not in (self.KIND_TUPLE, self.KIND_RULE):
            raise ValueError("Literal kind must be 'tuple' or 'rule': %r" % kind)
        if not key:
            raise ValueError("Literal key must be non-empty")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_hash", hash((kind, key)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    def __reduce__(self) -> tuple:
        # Default slot-state unpickling calls __setattr__, which immutable
        # classes forbid; rebuilding through the constructor keeps
        # literals picklable (the process-isolation workers ship
        # polynomials and probability maps over a pipe).
        return (Literal, (self.kind, self.key))

    @property
    def is_tuple(self) -> bool:
        return self.kind == self.KIND_TUPLE

    @property
    def is_rule(self) -> bool:
        return self.kind == self.KIND_RULE

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.kind == self.kind
            and other.key == self.key
        )

    def __lt__(self, other: "Literal") -> bool:
        return (self.kind, self.key) < (other.kind, other.key)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Literal(%r, %r)" % (self.kind, self.key)

    def __str__(self) -> str:
        return self.key


def tuple_literal(key: str) -> Literal:
    """Literal for a base tuple, keyed by its canonical atom rendering."""
    return Literal(Literal.KIND_TUPLE, key)


def rule_literal(label: str) -> Literal:
    """Literal for a rule, keyed by its label."""
    return Literal(Literal.KIND_RULE, label)


#: Maps each literal to its probability of being true.
ProbabilityMap = Mapping[Literal, float]


class Monomial:
    """A conjunction of literals — one derivation of the queried tuple."""

    __slots__ = ("literals", "_hash")

    def __init__(self, literals: Iterable[Literal] = ()) -> None:
        literals = frozenset(literals)
        for literal in literals:
            if not isinstance(literal, Literal):
                raise TypeError("Monomial members must be Literals: %r" % (literal,))
        object.__setattr__(self, "literals", literals)
        object.__setattr__(self, "_hash", hash(literals))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Monomial is immutable")

    def __reduce__(self) -> tuple:
        return (Monomial, (tuple(self.literals),))

    @property
    def is_empty(self) -> bool:
        """The empty monomial is the constant TRUE."""
        return not self.literals

    def union(self, other: "Monomial") -> "Monomial":
        """Product of two monomials (conjunction; idempotent)."""
        return Monomial(self.literals | other.literals)

    def contains(self, literal: Literal) -> bool:
        return literal in self.literals

    def without(self, literal: Literal) -> "Monomial":
        return Monomial(self.literals - {literal})

    def subsumes(self, other: "Monomial") -> bool:
        """True when this monomial absorbs ``other`` (self ⊆ other)."""
        return self.literals <= other.literals

    def probability(self, probabilities: ProbabilityMap) -> float:
        """Probability all literals are true (they are mutually independent)."""
        result = 1.0
        for literal in self.literals:
            result *= probabilities[literal]
        return result

    def evaluate(self, assignment: Mapping[Literal, bool]) -> bool:
        return all(assignment[literal] for literal in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and other.literals == self.literals

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Monomial(%s)" % sorted(map(str, self.literals))

    def __str__(self) -> str:
        if self.is_empty:
            return "1"
        return "·".join(str(lit) for lit in sorted(self.literals))


def _absorb(monomials: AbstractSet[Monomial]) -> FrozenSet[Monomial]:
    """Apply the absorption law: drop monomials subsumed by a smaller one."""
    by_size = sorted(monomials, key=len)
    kept: list = []
    for candidate in by_size:
        if any(keeper.subsumes(candidate) for keeper in kept):
            continue
        kept.append(candidate)
    return frozenset(kept)


class Polynomial:
    """A monotone DNF formula: a set of monomials, absorbed on construction.

    ``Polynomial.zero()`` is FALSE (no derivations), ``Polynomial.one()`` is
    TRUE (the empty derivation).  Operators:

    >>> a, b = tuple_literal("a"), tuple_literal("b")
    >>> poly = Polynomial.of([a]) + Polynomial.of([a, b])
    >>> str(poly)   # absorption: a + a·b = a
    'a'
    """

    __slots__ = ("monomials", "_hash")

    def __init__(self, monomials: Iterable[Monomial] = ()) -> None:
        absorbed = _absorb(frozenset(monomials))
        object.__setattr__(self, "monomials", absorbed)
        object.__setattr__(self, "_hash", hash(absorbed))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Polynomial is immutable")

    def __reduce__(self) -> tuple:
        return (Polynomial, (tuple(self.monomials),))

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """FALSE: the polynomial with no derivations."""
        return cls(())

    @classmethod
    def one(cls) -> "Polynomial":
        """TRUE: the polynomial containing only the empty derivation."""
        return cls((Monomial(()),))

    @classmethod
    def of(cls, literals: Iterable[Literal]) -> "Polynomial":
        """Single-monomial polynomial from a collection of literals."""
        return cls((Monomial(literals),))

    @classmethod
    def from_literal(cls, literal: Literal) -> "Polynomial":
        return cls.of((literal,))

    @classmethod
    def from_monomials(cls, groups: Iterable[Iterable[Literal]]) -> "Polynomial":
        return cls(Monomial(group) for group in groups)

    # -- structure -----------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return not self.monomials

    @property
    def is_one(self) -> bool:
        return len(self.monomials) == 1 and next(iter(self.monomials)).is_empty

    def literals(self) -> FrozenSet[Literal]:
        """All distinct literals appearing in the polynomial."""
        result: set = set()
        for monomial in self.monomials:
            result.update(monomial.literals)
        return frozenset(result)

    def tuple_literals(self) -> FrozenSet[Literal]:
        return frozenset(lit for lit in self.literals() if lit.is_tuple)

    def rule_literals(self) -> FrozenSet[Literal]:
        return frozenset(lit for lit in self.literals() if lit.is_rule)

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        """Union of alternative derivations."""
        if self.is_zero:
            return other
        if other.is_zero:
            return self
        return Polynomial(self.monomials | other.monomials)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        """Conjunctive combination (cross-product of monomials)."""
        if self.is_zero or other.is_zero:
            return Polynomial.zero()
        if self.is_one:
            return other
        if other.is_one:
            return self
        return Polynomial(
            left.union(right)
            for left in self.monomials
            for right in other.monomials
        )

    def times_literal(self, literal: Literal) -> "Polynomial":
        """Multiply every monomial by one literal."""
        return Polynomial(
            Monomial(monomial.literals | {literal}) for monomial in self.monomials
        )

    def restrict(self, literal: Literal, value: bool) -> "Polynomial":
        """Condition the polynomial on ``literal = value`` (Shannon cofactor)."""
        if value:
            return Polynomial(
                monomial.without(literal) if monomial.contains(literal) else monomial
                for monomial in self.monomials
            )
        return Polynomial(
            monomial for monomial in self.monomials
            if not monomial.contains(literal)
        )

    def without_monomials(self, dropped: Iterable[Monomial]) -> "Polynomial":
        dropped = set(dropped)
        return Polynomial(m for m in self.monomials if m not in dropped)

    def evaluate(self, assignment: Mapping[Literal, bool]) -> bool:
        """Truth value under a complete assignment of its literals."""
        return any(monomial.evaluate(assignment) for monomial in self.monomials)

    def monomials_by_probability(
            self, probabilities: ProbabilityMap,
            descending: bool = True) -> Tuple[Tuple[Monomial, float], ...]:
        """Monomials paired with their (independent-product) probabilities."""
        scored = [
            (monomial, monomial.probability(probabilities))
            for monomial in self.monomials
        ]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0]))
                    if descending else (pair[1], str(pair[0])))
        return tuple(scored)

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.monomials)

    def __iter__(self) -> Iterator[Monomial]:
        return iter(self.monomials)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and other.monomials == self.monomials

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Polynomial(<%d monomials, %d literals>)" % (
            len(self.monomials), len(self.literals()),
        )

    def __str__(self) -> str:
        if self.is_zero:
            return "0"
        parts = sorted(str(monomial) for monomial in self.monomials)
        return " + ".join(parts)


def variable_order(polynomial: Polynomial,
                   probabilities: Optional[ProbabilityMap] = None) -> Tuple[Literal, ...]:
    """Literals ordered by descending occurrence count (ties by name).

    This is the branching order used by exact Shannon expansion and the BDD
    builder; splitting on frequent literals first collapses shared structure
    early.
    """
    counts: Dict[Literal, int] = {}
    for monomial in polynomial.monomials:
        for literal in monomial.literals:
            counts[literal] = counts.get(literal, 0) + 1
    return tuple(sorted(counts, key=lambda lit: (-counts[lit], str(lit))))
