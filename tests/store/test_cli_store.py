"""CLI tests for snapshot / record / replay and the persisted-source
loading flags (``--from-session`` / ``--from-store``)."""

import json

import pytest

from repro.cli import main

PROGRAM = """
0.9::edge(a,b).
0.8::edge(b,c).
0.7::edge(a,c).
0.5::edge(c,d).
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
query(path(a,c)).
"""

KEY = 'path("a","c")'


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "paths.pl"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture()
def update_file(tmp_path):
    path = tmp_path / "update.pl"
    path.write_text("0.6::edge(c,e).\n")
    return str(path)


@pytest.fixture()
def store_file(tmp_path):
    return str(tmp_path / "prov.db")


@pytest.fixture()
def session_file(program_file, tmp_path, capsys):
    path = str(tmp_path / "session.json")
    assert main(["export", program_file, "--output", path]) == 0
    capsys.readouterr()
    return path


class TestSnapshot:
    def test_writes_store(self, program_file, store_file, capsys):
        code = main(["snapshot", program_file, "--store", store_file,
                     "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "snapshot"
        assert document["epoch"] == 0
        assert document["epochs"][0]["tuples"] > 0

    def test_snapshot_from_session(self, session_file, store_file,
                                   capsys):
        code = main(["snapshot", "--from-session", session_file,
                     "--store", store_file, "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["epoch"] == 0


class TestRecordReplay:
    def test_round_trip(self, program_file, update_file, store_file,
                        capsys):
        assert main(["record", program_file, KEY, "--store", store_file,
                     "--name", "demo", "--update", update_file]) == 0
        capsys.readouterr()
        assert main(["replay", "--store", store_file, "--name", "demo",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "replay_report"
        assert document["ok"] is True
        assert document["total"] == 2
        assert document["epochs"] == [0, 1]

    def test_record_defaults_to_query_directives(self, program_file,
                                                 store_file, capsys):
        assert main(["record", program_file, "--store", store_file]) == 0
        output = capsys.readouterr().out
        assert "recorded 'session': 1 queries" in output

    def test_replay_without_name_uses_newest(self, program_file,
                                             store_file, capsys):
        assert main(["record", program_file, KEY,
                     "--store", store_file]) == 0
        capsys.readouterr()
        assert main(["replay", "--store", store_file]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_replay_missing_store_fails(self, store_file, capsys):
        assert main(["replay", "--store", store_file]) == 2
        assert "error" in capsys.readouterr().err


class TestLoadingFlags:
    def test_query_from_store_matches_program(self, program_file,
                                              store_file, capsys):
        assert main(["snapshot", program_file, "--store", store_file]) == 0
        capsys.readouterr()
        assert main(["query", program_file, KEY]) == 0
        from_program = capsys.readouterr().out
        assert main(["query", "--from-store", store_file, KEY]) == 0
        assert capsys.readouterr().out == from_program

    def test_query_from_session(self, session_file, capsys):
        assert main(["query", "--from-session", session_file, KEY]) == 0
        assert KEY in capsys.readouterr().out

    def test_source_required(self, capsys):
        assert main(["query"]) == 2
        assert "exactly one program source" in capsys.readouterr().err

    def test_conflicting_sources_rejected(self, session_file, store_file,
                                          program_file, capsys):
        assert main(["snapshot", program_file, "--store", store_file]) == 0
        capsys.readouterr()
        code = main(["query", "--from-session", session_file,
                     "--from-store", store_file, KEY])
        assert code == 2
        assert "exactly one program source" in capsys.readouterr().err

    def test_session_version_mismatch_envelope(self, session_file,
                                               capsys):
        document = json.loads(open(session_file, encoding="utf-8").read())
        document["version"] = 99
        with open(session_file, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        code = main(["query", "--from-session", session_file, KEY,
                     "--json"])
        assert code == 2
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "error"
        assert envelope["error"]["type"] == "FormatVersionError"
        assert envelope["error"]["found_version"] == 99

    def test_store_version_mismatch_envelope(self, program_file,
                                             store_file, capsys):
        import sqlite3
        assert main(["snapshot", program_file, "--store", store_file]) == 0
        capsys.readouterr()
        raw = sqlite3.connect(store_file)
        raw.execute("UPDATE meta SET value = '99' "
                    "WHERE key = 'store_format'")
        raw.commit()
        raw.close()
        code = main(["query", "--from-store", store_file, KEY, "--json"])
        assert code == 2
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["error"]["type"] == "StoreVersionError"
        assert envelope["error"]["found_version"] == 99
