"""Record/replay determinism tests: byte-identical envelopes from a
cold store, across epochs and stochastic backends."""

import json

import pytest

from repro import P3, P3Config
from repro.exec.specs import QuerySpec
from repro.store import (
    ProvenanceStore,
    RecordingError,
    list_recordings,
    load_recording,
    record_session,
    replay_recording,
)

PROGRAM = """
0.9::edge(a,b).
0.8::edge(b,c).
0.7::edge(a,c).
0.5::edge(c,d).
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
query(path(a,c)).
"""

KEY = 'path("a","c")'
UPDATE = "0.6::edge(c,e)."


@pytest.fixture()
def store(tmp_path):
    with ProvenanceStore(str(tmp_path / "prov.db")) as handle:
        yield handle


def fresh_system(config=None):
    p3 = P3.from_source(PROGRAM, config=config)
    p3.evaluate()
    return p3


class TestRecord:
    def test_captures_queries_and_epochs(self, store):
        recording = record_session(
            fresh_system(), store, "demo",
            [QuerySpec.probability(KEY)], updates=[UPDATE])
        assert [entry.epoch for entry in recording.queries] == [0, 1]
        assert all(entry.envelope for entry in recording.queries)
        # The recorder attached the store transiently: both epochs landed.
        assert [e["epoch"] for e in store.epochs()] == [0, 1]

    def test_round_trips_spec_params(self, store):
        spec = QuerySpec.probability(KEY, hop_limit=4)
        record_session(fresh_system(), store, "params", [spec])
        loaded = load_recording(store, "params")
        assert loaded.queries[0].spec.params["hop_limit"] == 4

    def test_duplicate_name_rejected(self, store):
        record_session(fresh_system(), store, "demo",
                       [QuerySpec.probability(KEY)])
        with pytest.raises(RecordingError):
            record_session(fresh_system(), store, "demo",
                           [QuerySpec.probability(KEY)])

    def test_empty_session_rejected(self, store):
        with pytest.raises(RecordingError):
            record_session(fresh_system(), store, "empty", [])

    def test_listing(self, store):
        record_session(fresh_system(), store, "demo",
                       [QuerySpec.probability(KEY)])
        assert [entry["name"] for entry in list_recordings(store)] \
            == ["demo"]


class TestReplay:
    def test_byte_identical_across_epochs(self, store):
        record_session(
            fresh_system(), store, "demo",
            [QuerySpec.probability(KEY), QuerySpec.explain(KEY)],
            updates=[UPDATE])
        report = replay_recording(store, "demo")
        assert report.ok
        assert report.matched == report.total == 4
        assert report.epochs == [0, 1]

    def test_unnamed_replay_uses_newest_recording(self, store):
        record_session(fresh_system(), store, "first",
                       [QuerySpec.probability(KEY)])
        record_session(fresh_system(), store, "second",
                       [QuerySpec.explain(KEY)])
        assert replay_recording(store).name == "second"

    def test_stochastic_backend_replays_deterministically(self, store):
        config = P3Config(probability_method="mc", samples=500, seed=7)
        record_session(fresh_system(config), store, "mc",
                       [QuerySpec.probability(KEY)])
        report = replay_recording(store, "mc")
        assert report.ok

    def test_tampered_envelope_detected(self, store):
        record_session(fresh_system(), store, "demo",
                       [QuerySpec.probability(KEY)])
        store._connection.execute(
            "UPDATE recorded_queries SET envelope = ?",
            (json.dumps({"version": 2, "kind": "query_value",
                         "query_type": "probability", "key": KEY,
                         "value": 0.123},
                        indent=2, sort_keys=True),))
        store._connection.commit()
        report = replay_recording(store, "demo")
        assert not report.ok
        mismatch = report.mismatches[0].to_dict()
        assert mismatch["expected"]["value"] == 0.123
        assert mismatch["actual"]["value"] != 0.123

    def test_unknown_recording_rejected(self, store):
        with pytest.raises(RecordingError):
            replay_recording(store, "ghost")

    def test_replay_survives_process_restart(self, tmp_path):
        # Record into a file, close everything, reopen cold: the replay
        # must reconstruct program, graph, and config purely from rows.
        path = str(tmp_path / "prov.db")
        with ProvenanceStore(path) as store:
            record_session(fresh_system(), store, "demo",
                           [QuerySpec.probability(KEY)],
                           updates=[UPDATE])
        with ProvenanceStore(path, create=False) as reopened:
            report = replay_recording(reopened, "demo")
        assert report.ok
        assert report.total == 2

    def test_replay_does_not_rerun_fixpoint(self, store, monkeypatch):
        from repro.datalog import engine as engine_module
        from repro.datalog import incremental as incremental_module
        record_session(fresh_system(), store, "demo",
                       [QuerySpec.probability(KEY)])

        def explode(self, *args, **kwargs):
            raise AssertionError("replay must not run the engine")

        monkeypatch.setattr(engine_module.Engine, "run", explode)
        monkeypatch.setattr(incremental_module.IncrementalSession,
                            "__init__", explode)
        assert replay_recording(store, "demo").ok
