"""Unit tests for cycle analysis and the Section 3.3 theorem check."""

import pytest

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.inference.exact import exact_probability
from repro.provenance.cycles import (
    cyclic_tuples,
    has_cycles,
    strongly_connected_components,
    tuple_dependency_edges,
    verify_cycle_elimination,
)
from repro.provenance.graph import GraphBuilder, register_program


def build(source):
    program = parse_program(source)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    Engine(program, recorder=builder).run()
    return builder.graph


ACYCLIC = """
t1 0.5: p(1).
r1 1.0: d(X) :- p(X).
"""

CYCLIC = """
t1 0.9: trust(1,2).
t2 0.8: trust(2,1).
r1 1.0: tp(X,Y) :- trust(X,Y).
r2 1.0: tp(X,Z) :- trust(X,Y), tp(Y,Z).
"""


class TestSCC:
    def test_no_cycles_in_acyclic_graph(self):
        graph = build(ACYCLIC)
        assert not has_cycles(graph)
        assert cyclic_tuples(graph) == frozenset()

    def test_detects_mutual_recursion_cycle(self):
        graph = build(CYCLIC)
        assert has_cycles(graph)
        cyclic = cyclic_tuples(graph)
        assert "tp(1,1)" in cyclic or "tp(1,2)" in cyclic

    def test_scc_on_explicit_edges(self):
        edges = {"a": {"b"}, "b": {"c"}, "c": {"a"}, "d": {"a"}}
        components = strongly_connected_components(edges)
        assert components == [frozenset({"a", "b", "c"})]

    def test_self_loop_detected(self):
        components = strongly_connected_components({"a": {"a"}})
        assert components == [frozenset({"a"})]

    def test_trivial_components_excluded(self):
        components = strongly_connected_components({"a": {"b"}, "b": set()})
        assert components == []

    def test_multiple_components(self):
        edges = {
            "a": {"b"}, "b": {"a"},
            "x": {"y"}, "y": {"x"},
            "solo": {"a"},
        }
        components = strongly_connected_components(edges)
        assert sorted(map(sorted, components)) == [["a", "b"], ["x", "y"]]

    def test_tuple_dependency_projection(self):
        graph = build(ACYCLIC)
        edges = tuple_dependency_edges(graph)
        assert edges == {"d(1)": {"p(1)"}}


class TestTheorem:
    def test_verify_cycle_elimination_passes(self):
        graph = build(CYCLIC)
        values = verify_cycle_elimination(
            graph, "tp(1,1)", exact_probability, graph.probability_map(),
            max_rounds=2)
        assert len(values) == 3
        assert values[0] == pytest.approx(values[1])
        assert values[0] == pytest.approx(values[2])

    def test_verify_on_acquaintance(self):
        from repro.data import ACQUAINTANCE
        graph = build(ACQUAINTANCE)
        values = verify_cycle_elimination(
            graph, 'know("Ben","Elena")', exact_probability,
            graph.probability_map(), max_rounds=2)
        assert values[0] == pytest.approx(0.16384)

    def test_three_node_trust_cycle(self):
        graph = build("""
            t1 0.7: trust(1,2).
            t2 0.6: trust(2,3).
            t3 0.5: trust(3,1).
            r1 1.0: tp(X,Y) :- trust(X,Y).
            r2 1.0: tp(X,Z) :- trust(X,Y), tp(Y,Z).
        """)
        values = verify_cycle_elimination(
            graph, "tp(1,1)", exact_probability, graph.probability_map(),
            max_rounds=2)
        # tp(1,1) requires the full cycle: p = 0.7·0.6·0.5.
        assert values[0] == pytest.approx(0.21)
