"""Trace validator tests: the checks CI's smoke step relies on."""

from __future__ import annotations

import pytest

from repro.telemetry.validate import (
    load_jsonl,
    main,
    validate_span_dicts,
)


def span_dict(span_id="s1", trace_id="t1", parent_id=None, name="op",
              start_ns=0, duration_ns=100):
    return {"trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, "name": name,
            "start_ns": start_ns, "duration_ns": duration_ns}


class TestValidateSpanDicts:
    def test_well_formed_trace_has_no_problems(self):
        spans = [
            span_dict("s1", start_ns=0, duration_ns=100),
            span_dict("s2", parent_id="s1", start_ns=10, duration_ns=50),
            span_dict("s3", parent_id="s2", start_ns=20, duration_ns=10),
        ]
        assert validate_span_dicts(spans) == []

    def test_missing_fields_reported(self):
        problems = validate_span_dicts([{"trace_id": "t1"}])
        assert len(problems) == 1
        assert "missing fields" in problems[0]
        assert "span_id" in problems[0]

    def test_duplicate_span_id_reported(self):
        spans = [span_dict("s1"), span_dict("s1")]
        problems = validate_span_dicts(spans)
        assert any("duplicate span id" in p for p in problems)

    def test_zero_roots_reported(self):
        spans = [
            span_dict("s1", parent_id="s2", start_ns=10, duration_ns=10),
            span_dict("s2", parent_id="s1", start_ns=10, duration_ns=10),
        ]
        problems = validate_span_dicts(spans)
        assert any("0 root spans" in p for p in problems)
        assert any("parent cycle" in p for p in problems)

    def test_multiple_roots_reported(self):
        spans = [span_dict("s1"), span_dict("s2")]
        problems = validate_span_dicts(spans)
        assert any("2 root spans" in p for p in problems)

    def test_missing_parent_reported(self):
        spans = [
            span_dict("s1"),
            span_dict("s2", parent_id="gone", start_ns=10, duration_ns=10),
        ]
        problems = validate_span_dicts(spans)
        assert any("missing parent" in p for p in problems)

    def test_child_escaping_parent_interval_reported(self):
        spans = [
            span_dict("s1", start_ns=0, duration_ns=100),
            span_dict("s2", parent_id="s1", start_ns=50, duration_ns=100),
        ]
        problems = validate_span_dicts(spans)
        assert any("escapes parent" in p for p in problems)

    def test_parallel_traces_validated_independently(self):
        spans = [
            span_dict("s1", trace_id="ta"),
            span_dict("s2", trace_id="tb"),
            span_dict("s3", trace_id="tb", parent_id="s2",
                      start_ns=10, duration_ns=10),
        ]
        assert validate_span_dicts(spans) == []

    def test_same_span_id_in_different_traces_allowed(self):
        spans = [
            span_dict("s1", trace_id="ta"),
            span_dict("s1", trace_id="tb"),
        ]
        assert validate_span_dicts(spans) == []


class TestLoadJsonl:
    def test_parses_lines_and_skips_blanks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert load_jsonl(str(path)) == [{"a": 1}, {"b": 2}]

    def test_rejects_invalid_json_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_jsonl(str(path))

    def test_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('[1, 2]\n')
        with pytest.raises(ValueError, match="JSON object"):
            load_jsonl(str(path))


class TestMain:
    def write(self, tmp_path, spans):
        import json
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in spans))
        return str(path)

    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, [
            span_dict("s1", start_ns=0, duration_ns=100),
            span_dict("s2", parent_id="s1", start_ns=10, duration_ns=50),
        ])
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "2 spans across 1 trace(s)" in out

    def test_invalid_nesting_exits_one(self, tmp_path, capsys):
        path = self.write(tmp_path, [
            span_dict("s1", start_ns=0, duration_ns=10),
            span_dict("s2", parent_id="s1", start_ns=5, duration_ns=50),
        ])
        assert main([path]) == 1
        assert "escapes parent" in capsys.readouterr().err

    def test_empty_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
        assert "holds no spans" in capsys.readouterr().err

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 1
        assert "trace validation:" in capsys.readouterr().err

    def test_usage_error_exits_two(self, capsys):
        assert main(["a", "b"]) == 2
        assert "usage:" in capsys.readouterr().err
