"""Tests for the structural Estimate protocol.

Every probability answer the inference layer produces — Monte-Carlo
estimates, anytime bounds, backend readings, bare exact floats wrapped
in ExactEstimate — must satisfy ``isinstance(x, Estimate)`` without
inheriting from it.
"""

import pytest

from repro.inference.bounded import BoundedResult
from repro.inference.estimate import Estimate, ExactEstimate
from repro.inference.montecarlo import MonteCarloEstimate
from repro.inference.registry import BackendReading


class TestStructuralConformance:
    def test_all_result_types_are_estimates(self):
        assert isinstance(MonteCarloEstimate(0.5, 100, 50), Estimate)
        assert isinstance(
            BoundedResult(0.2, 0.4, hop_limit=3, converged=False,
                          history=[]),
            Estimate)
        assert isinstance(BackendReading("mc", 0.5), Estimate)
        assert isinstance(ExactEstimate(0.3), Estimate)

    def test_third_party_duck_type_conforms(self):
        class Foreign:
            value = 0.5
            stderr = None
            exact = True

            def interval(self, z=1.96):
                return (0.5, 0.5)

        assert isinstance(Foreign(), Estimate)

    def test_incomplete_object_rejected(self):
        class Partial:
            value = 0.5
            exact = True

        assert not isinstance(Partial(), Estimate)
        assert not isinstance(object(), Estimate)


class TestExactEstimate:
    def test_protocol_fields(self):
        estimate = ExactEstimate(0.3)
        assert estimate.value == 0.3
        assert estimate.stderr is None
        assert estimate.exact is True
        assert estimate.interval() == (0.3, 0.3)
        assert float(estimate) == 0.3

    def test_clamping(self):
        assert ExactEstimate(1.5).value_clamped == 1.0
        assert ExactEstimate(-0.5).value_clamped == 0.0


class TestIntervalSemantics:
    def test_monte_carlo_interval_is_statistical(self):
        estimate = MonteCarloEstimate(0.5, 10000, 5000)
        low, high = estimate.interval(z=1.96)
        assert low < 0.5 < high
        wider_low, wider_high = estimate.interval(z=4.0)
        assert wider_low < low and high < wider_high

    def test_bounded_interval_is_certified(self):
        result = BoundedResult(0.2, 0.4, hop_limit=3, converged=True,
                               history=[])
        # z is ignored: the bracket is certified, not sampled.
        assert result.interval(z=1.96) == (0.2, 0.4)
        assert result.interval(z=100.0) == (0.2, 0.4)
        assert result.value == pytest.approx(0.3)
        assert result.stderr is None

    def test_backend_reading_intervals(self):
        exact = BackendReading("exact", 0.3)
        assert exact.interval() == (0.3, 0.3)
        sampled = BackendReading("mc", 0.5, stderr=0.01, exact=False)
        low, high = sampled.interval(z=2.0)
        assert (low, high) == (pytest.approx(0.48), pytest.approx(0.52))
        # The CI clamps into [0, 1] even when the raw value does not.
        kl = BackendReading("karp-luby", 1.01, stderr=0.02, exact=False)
        assert kl.interval()[1] == 1.0
