"""Per-query deadlines, pool degradation, and seed resolution.

Failure-injection tests for the executor's live-service guarantees: a
slow query must cost one ``error`` outcome — never a hung batch — and a
broken thread pool must degrade to sequential execution, not lose work.
"""

import time

import pytest

import repro.exec.executor as executor_module
from repro import P3, P3Config
from repro.core.errors import QueryTimeoutError
from repro.data import ACQUAINTANCE
from repro.exec import QueryExecutor, QuerySpec

KEY = 'know("Ben","Elena")'
KEY_PROBABILITY = 0.163840
OTHER = 'know("Ben","Steve")'


@pytest.fixture()
def system():
    p3 = P3.from_source(ACQUAINTANCE)
    p3.evaluate()
    return p3


def _slow_compute(delay):
    real = executor_module.compute_probability

    def compute(*args, **kwargs):
        time.sleep(delay)
        return real(*args, **kwargs)

    return compute


class TestDeadlines:
    def test_spec_timeout_yields_error_outcome(self, system, monkeypatch):
        monkeypatch.setattr(
            executor_module, "compute_probability", _slow_compute(5.0))
        with QueryExecutor(system, max_workers=2) as executor:
            started = time.perf_counter()
            batch = executor.run([
                QuerySpec.probability(KEY, timeout=0.2),
                QuerySpec.probability(OTHER, timeout=0.2),
            ])
            elapsed = time.perf_counter() - started
        assert elapsed < 3.0
        assert len(batch) == 2
        for outcome in batch:
            assert not outcome.ok
            assert "QueryTimeoutError" in outcome.error

    def test_one_slow_query_does_not_sink_the_batch(self, system,
                                                    monkeypatch):
        real = executor_module.compute_probability

        def selectively_slow(polynomial, probabilities, **kwargs):
            value = real(polynomial, probabilities, **kwargs)
            if abs(value - KEY_PROBABILITY) < 1e-9:
                time.sleep(5.0)
            return value

        monkeypatch.setattr(
            executor_module, "compute_probability", selectively_slow)
        with QueryExecutor(system, max_workers=2) as executor:
            batch = executor.run([
                QuerySpec.probability(KEY, timeout=0.2),
                QuerySpec.probability(OTHER, timeout=2.0),
            ])
        slow, fast = batch[0], batch[1]
        assert not slow.ok
        assert "QueryTimeoutError" in slow.error
        assert fast.ok
        assert fast.value == pytest.approx(1.0)

    def test_config_timeout_applies_sequentially(self, monkeypatch):
        monkeypatch.setattr(
            executor_module, "compute_probability", _slow_compute(5.0))
        p3 = P3.from_source(ACQUAINTANCE, P3Config(query_timeout=0.2))
        p3.evaluate()
        with QueryExecutor(p3, max_workers=1) as executor:
            batch = executor.run([QuerySpec.probability(KEY)],
                                 parallel=False)
        assert not batch[0].ok
        assert "QueryTimeoutError" in batch[0].error

    def test_spec_timeout_overrides_config(self, monkeypatch):
        monkeypatch.setattr(
            executor_module, "compute_probability", _slow_compute(0.2))
        p3 = P3.from_source(ACQUAINTANCE, P3Config(query_timeout=0.01))
        p3.evaluate()
        with QueryExecutor(p3) as executor:
            batch = executor.run(
                [QuerySpec.probability(KEY, timeout=5.0)])
        assert batch.ok
        assert batch[0].value == pytest.approx(KEY_PROBABILITY)

    def test_timeout_error_carries_key_and_deadline(self, system,
                                                    monkeypatch):
        monkeypatch.setattr(
            executor_module, "compute_probability", _slow_compute(5.0))
        with QueryExecutor(system) as executor:
            with pytest.raises(QueryTimeoutError) as info:
                executor.execute(QuerySpec.probability(KEY, timeout=0.1))
        assert info.value.key == KEY
        assert info.value.timeout == pytest.approx(0.1)
        assert isinstance(info.value, TimeoutError)

    def test_no_timeout_by_default(self, system):
        with QueryExecutor(system) as executor:
            batch = executor.run([QuerySpec.probability(KEY)])
        assert batch.ok

    def test_timeout_excluded_from_cache_identity(self):
        fast = QuerySpec.probability(KEY, timeout=0.5)
        slow = QuerySpec.probability(KEY, timeout=30.0)
        absent = QuerySpec.probability(KEY)
        assert fast.cache_identity() == slow.cache_identity()
        assert fast.cache_identity() == absent.cache_identity()

    def test_config_query_timeout_validation(self):
        assert P3Config(query_timeout=1.5).query_timeout == 1.5
        assert P3Config().query_timeout is None
        with pytest.raises(ValueError):
            P3Config(query_timeout=0.0)
        with pytest.raises(ValueError):
            P3Config(query_timeout=-1.0)


class TestPoolFallback:
    def test_broken_pool_degrades_to_sequential(self, system, monkeypatch):
        with QueryExecutor(system, max_workers=4) as executor:
            def broken_pool():
                raise RuntimeError("cannot schedule new futures")

            monkeypatch.setattr(executor, "_acquire_pool", broken_pool)
            batch = executor.run([
                QuerySpec.probability(KEY),
                QuerySpec.probability(OTHER),
            ])
        assert batch.ok
        assert batch[0].value == pytest.approx(KEY_PROBABILITY)
        assert batch[1].value == pytest.approx(1.0)

    def test_closed_executor_still_answers(self, system):
        executor = QueryExecutor(system, max_workers=4)
        executor.probability(KEY)
        executor.close()
        # The shut-down pool raises RuntimeError inside run(); the
        # sequential fallback must still answer.
        batch = executor.run([
            QuerySpec.probability(KEY),
            QuerySpec.probability(OTHER),
        ])
        assert batch.ok


class TestSeedResolution:
    def test_explicit_none_seed_equals_absent_seed(self, system):
        none_spec = QuerySpec.probability(KEY, method="mc", samples=400,
                                          seed=None)
        absent_spec = QuerySpec.probability(KEY, method="mc", samples=400)
        assert none_spec == absent_spec
        assert none_spec.cache_identity() == absent_spec.cache_identity()

    def test_explicit_none_seed_reproducible_via_config(self):
        values = []
        for _ in range(2):
            p3 = P3.from_source(ACQUAINTANCE, P3Config(seed=123))
            p3.evaluate()
            with QueryExecutor(p3) as executor:
                values.append(executor.probability(
                    KEY, method="mc", samples=400, seed=None))
        assert values[0] == values[1]

    def test_batch_and_direct_calls_share_seed_resolution(self):
        p3 = P3.from_source(ACQUAINTANCE, P3Config(seed=123))
        p3.evaluate()
        with QueryExecutor(p3) as executor:
            direct = executor.probability(KEY, method="mc", samples=400)
            executor.clear_caches()
            batch = executor.run([QuerySpec.probability(
                KEY, method="mc", samples=400, seed=None)])
        assert batch[0].value == direct


class TestSpecContradictions:
    def test_modify_rejects_only_rules_and_only_tuples(self):
        with pytest.raises(ValueError):
            QuerySpec.modify(KEY, target=0.5,
                             only_rules=True, only_tuples=True)

    def test_hand_built_params_rejected_too(self):
        with pytest.raises(ValueError):
            QuerySpec("modify", KEY, {"target": 0.5,
                                      "only_rules": True,
                                      "only_tuples": True})

    def test_single_restriction_still_allowed(self, system):
        with QueryExecutor(system) as executor:
            batch = executor.run([
                QuerySpec.modify(KEY, target=0.5, only_rules=True),
                QuerySpec.modify(KEY, target=0.5, only_tuples=True),
            ])
        assert batch.ok

    def test_executor_recheck_blocks_smuggled_params(self, system):
        spec = QuerySpec.modify(KEY, target=0.5)
        spec.params["only_rules"] = True
        spec.params["only_tuples"] = True
        with QueryExecutor(system) as executor:
            batch = executor.run([spec])
        assert not batch[0].ok
        assert "mutually exclusive" in str(batch[0].error)


class TestDeadlineRunnerPool:
    """Deadlined queries run on a small reusable runner pool — not one
    fresh daemon thread per query — and abandonments are observable."""

    def test_timeout_counts_an_abandoned_runner(self, system, monkeypatch):
        monkeypatch.setattr(
            executor_module, "compute_probability", _slow_compute(5.0))
        with QueryExecutor(system, max_workers=2) as executor:
            batch = executor.run([QuerySpec.probability(KEY, timeout=0.1)])
            stats = executor.stats()
        assert not batch[0].ok
        runners = stats["pool"]["deadline_runners"]
        assert runners["abandoned"] >= 1
        assert runners["abandoned_live"] >= 1  # still wedged in sleep()

    def test_sustained_deadlined_queries_reuse_threads(self, system):
        import threading

        # Other tests may have left a wedged runner behind; measure
        # growth, not the absolute count.
        before = sum(1 for t in threading.enumerate()
                     if t.name.startswith("p3-deadline"))
        with QueryExecutor(system, max_workers=2) as executor:
            for _ in range(8):
                batch = executor.run([
                    QuerySpec.probability(KEY, timeout=30.0),
                    QuerySpec.probability(OTHER, timeout=30.0),
                ])
                assert batch.ok
                executor.clear_caches()  # force real work each round
            runners = executor.stats()["pool"]["deadline_runners"]
        # 16 deadlined queries must not mean 16 threads: at most the
        # concurrent width is ever spawned, the rest are reuses.
        assert runners["spawned"] <= 4
        assert runners["reused"] >= 8
        assert runners["abandoned_live"] == 0
        alive = sum(1 for t in threading.enumerate()
                    if t.name.startswith("p3-deadline"))
        assert alive <= before + runners["spawned"]

    def test_stats_omit_runners_when_never_deadlined(self, system):
        with QueryExecutor(system) as executor:
            executor.run([QuerySpec.probability(KEY)])
            stats = executor.stats()
        assert "deadline_runners" not in stats.get("pool", {})
