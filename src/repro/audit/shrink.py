"""Shrink a disagreeing case to a minimal reproducer.

Greedy delta-debugging over the polynomial structure, in three passes
repeated to fixpoint:

1. drop whole monomials;
2. drop individual literals from monomials;
3. flatten literal probabilities to 0.5.

Each candidate is re-checked with the caller-supplied predicate (normally
"the oracle still disagrees with the same backend and seeds" — fully
deterministic, so the shrink converges).  Program context is dropped: a
shrunk case is a pure polynomial reproducer, which is what a human
debugging a backend wants to stare at.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..provenance.polynomial import Monomial, Polynomial
from .generator import AuditCase

#: A predicate answering "does this candidate still reproduce the bug?".
FailurePredicate = Callable[[AuditCase], bool]

#: Upper bound on candidate evaluations per shrink (keeps sampling-backend
#: shrinks, which re-run the estimator per candidate, from crawling).
DEFAULT_BUDGET = 400


def _restricted(case: AuditCase, polynomial: Polynomial,
                probabilities: Optional[dict] = None) -> AuditCase:
    """A candidate case: same name, reduced structure, origin 'shrunk'."""
    source = probabilities if probabilities is not None \
        else case.probabilities
    kept = {literal: source[literal]
            for literal in polynomial.literals() if literal in source}
    return AuditCase(case.name, polynomial, kept, origin="shrunk")


def shrink_case(case: AuditCase, still_fails: FailurePredicate,
                budget: int = DEFAULT_BUDGET) -> AuditCase:
    """Return the smallest case (under the greedy passes) that still fails.

    ``still_fails`` must be deterministic for convergence; the runner
    achieves that by fixing the oracle seed.  If the original case does
    not fail the predicate it is returned unchanged (nothing to shrink).
    """
    if not still_fails(case):
        return case
    attempts = [0]

    def try_candidate(candidate: AuditCase) -> bool:
        if attempts[0] >= budget:
            return False
        attempts[0] += 1
        return still_fails(candidate)

    current = _restricted(case, case.polynomial)
    changed = True
    while changed and attempts[0] < budget:
        changed = False

        # Pass 1: drop whole monomials, widest first (they hide the most).
        monomials = sorted(current.polynomial.monomials,
                           key=lambda m: (-len(m), str(m)))
        for monomial in monomials:
            remaining = [m for m in current.polynomial.monomials
                         if m != monomial]
            if not remaining:
                continue
            candidate = _restricted(
                current, Polynomial.from_monomials(remaining))
            if try_candidate(candidate):
                current = candidate
                changed = True

        # Pass 2: drop single literals out of monomials.
        for monomial in sorted(current.polynomial.monomials,
                               key=lambda m: (-len(m), str(m))):
            if len(monomial) <= 1 or \
                    monomial not in current.polynomial.monomials:
                continue
            for literal in sorted(monomial.literals):
                narrowed = Monomial(
                    lit for lit in monomial.literals if lit != literal)
                rebuilt = [narrowed if m == monomial else m
                           for m in current.polynomial.monomials]
                candidate = _restricted(
                    current, Polynomial.from_monomials(rebuilt))
                if try_candidate(candidate):
                    current = candidate
                    changed = True
                    break  # the monomial object changed; restart on it

        # Pass 3: flatten probabilities to 0.5 (noise-free reproducers).
        for literal in sorted(current.probabilities):
            if current.probabilities[literal] == 0.5:
                continue
            flattened = dict(current.probabilities)
            flattened[literal] = 0.5
            candidate = _restricted(current, current.polynomial, flattened)
            if try_candidate(candidate):
                current = candidate
                changed = True

    return current


def shrink_report(original: AuditCase, shrunk: AuditCase) -> dict:
    """Size-reduction summary for the audit report."""
    def measure(case: AuditCase) -> List[int]:
        return [len(case.polynomial), len(case.polynomial.literals())]

    before, after = measure(original), measure(shrunk)
    return {
        "monomials": {"before": before[0], "after": after[0]},
        "literals": {"before": before[1], "after": after[1]},
    }
