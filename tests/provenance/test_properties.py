"""Property-based tests (hypothesis) for provenance invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.inference.exact import brute_force_probability, exact_probability
from repro.provenance.extraction import extract_polynomial, extract_unrolled
from repro.provenance.graph import GraphBuilder, register_program
from repro.provenance.polynomial import (
    Monomial,
    Polynomial,
    tuple_literal,
)

LITERAL_POOL = [tuple_literal(name) for name in "abcdefgh"]


@st.composite
def polynomials(draw, max_monomials=6, max_width=4):
    """Random monotone DNFs over an 8-literal pool."""
    count = draw(st.integers(min_value=0, max_value=max_monomials))
    monomials = []
    for _ in range(count):
        width = draw(st.integers(min_value=1, max_value=max_width))
        literals = draw(st.permutations(LITERAL_POOL))[:width]
        monomials.append(Monomial(literals))
    return Polynomial(monomials)


@st.composite
def assignments(draw):
    return {lit: draw(st.booleans()) for lit in LITERAL_POOL}


class TestAbsorptionInvariants:
    @given(polynomials())
    def test_no_monomial_subsumes_another(self, poly):
        for left, right in itertools.permutations(poly.monomials, 2):
            assert not left.subsumes(right)

    @given(polynomials(), assignments())
    def test_absorption_preserves_truth(self, poly, assignment):
        # Rebuild without absorption and compare truth values.
        raw_value = any(
            all(assignment[lit] for lit in monomial.literals)
            for monomial in poly.monomials
        )
        assert poly.evaluate(assignment) == raw_value

    @given(polynomials(), polynomials())
    def test_addition_idempotent(self, left, right):
        total = left + right
        assert total + total == total

    @given(polynomials(), polynomials(), assignments())
    def test_addition_is_disjunction(self, left, right, assignment):
        assert (left + right).evaluate(assignment) == (
            left.evaluate(assignment) or right.evaluate(assignment))

    @given(polynomials(), polynomials(), assignments())
    def test_multiplication_is_conjunction(self, left, right, assignment):
        assert (left * right).evaluate(assignment) == (
            left.evaluate(assignment) and right.evaluate(assignment))

    @given(polynomials(), assignments())
    def test_restrict_consistent_with_evaluate(self, poly, assignment):
        literal = LITERAL_POOL[0]
        restricted = poly.restrict(literal, assignment[literal])
        assert restricted.evaluate(assignment) == poly.evaluate(assignment)

    @given(polynomials())
    def test_shannon_decomposition(self, poly):
        # λ = x·λ|x=1 + ¬x·λ|x=0; for monotone DNF this implies
        # λ|x=0 ⊆ λ|x=1 pointwise.
        literal = LITERAL_POOL[0]
        high = poly.restrict(literal, True)
        low = poly.restrict(literal, False)
        for assignment in _all_assignments():
            if low.evaluate(assignment):
                assert high.evaluate(assignment)


def _all_assignments():
    for values in itertools.product((False, True), repeat=len(LITERAL_POOL)):
        yield dict(zip(LITERAL_POOL, values))


@st.composite
def random_trust_programs(draw):
    """Small random recursive trust programs (possibly cyclic)."""
    node_count = draw(st.integers(min_value=2, max_value=4))
    nodes = list(range(1, node_count + 1))
    pairs = [(a, b) for a in nodes for b in nodes if a != b]
    edge_count = draw(st.integers(min_value=1, max_value=min(5, len(pairs))))
    chosen = draw(st.permutations(pairs))[:edge_count]
    lines = [
        "r1 1.0: tp(X,Y) :- trust(X,Y).",
        "r2 0.9: tp(X,Z) :- trust(X,Y), tp(Y,Z).",
    ]
    for index, (a, b) in enumerate(sorted(chosen)):
        probability = draw(st.sampled_from([0.3, 0.5, 0.7, 0.9]))
        lines.append("t%d %.1f: trust(%d,%d)." % (index + 1, probability, a, b))
    return "\n".join(lines)


def _build_graph(source):
    program = parse_program(source)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    Engine(program, recorder=builder).run()
    return builder.graph


class TestCycleEliminationProperty:
    @settings(max_examples=25, deadline=None)
    @given(random_trust_programs(), st.integers(min_value=1, max_value=2))
    def test_unrolling_never_changes_probability(self, source, rounds):
        graph = _build_graph(source)
        probs = graph.probability_map()
        targets = [key for key in graph.tuple_keys()
                   if key.startswith("tp(")][:4]
        for key in targets:
            baseline = exact_probability(
                extract_polynomial(graph, key), probs)
            unrolled = exact_probability(
                extract_unrolled(graph, key, rounds), probs)
            assert abs(baseline - unrolled) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(random_trust_programs())
    def test_polynomials_contain_only_base_and_rule_literals(self, source):
        graph = _build_graph(source)
        for key in graph.tuple_keys():
            if not key.startswith("tp("):
                continue
            poly = extract_polynomial(graph, key)
            for literal in poly.literals():
                assert literal.is_rule or literal.key.startswith("trust(")

    @settings(max_examples=15, deadline=None)
    @given(random_trust_programs())
    def test_extraction_matches_brute_force_reachability(self, source):
        # P[tp(a,b)] > 0 iff b reachable from a in the trust graph.
        graph = _build_graph(source)
        probs = graph.probability_map()
        edges = [key for key in graph.tuple_keys()
                 if key.startswith("trust(")]
        adjacency = {}
        for key in edges:
            a, b = key[len("trust("):-1].split(",")
            adjacency.setdefault(int(a), set()).add(int(b))
        for key in graph.tuple_keys():
            if not key.startswith("tp("):
                continue
            a, b = (int(x) for x in key[len("tp("):-1].split(","))
            poly = extract_polynomial(graph, key)
            reachable = _reachable(adjacency, a, b)
            assert (exact_probability(poly, probs) > 0) == reachable


def _reachable(adjacency, start, goal):
    frontier = [start]
    seen = set()
    while frontier:
        node = frontier.pop()
        for successor in adjacency.get(node, ()):
            if successor == goal:
                return True
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


class TestHopLimitMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(random_trust_programs())
    def test_probability_nondecreasing_in_hop_limit(self, source):
        graph = _build_graph(source)
        probs = graph.probability_map()
        for key in sorted(graph.tuple_keys()):
            if not key.startswith("tp("):
                continue
            values = [
                exact_probability(
                    extract_polynomial(graph, key, hop_limit=limit), probs)
                for limit in (1, 2, 3, None)
            ]
            for earlier, later in zip(values, values[1:]):
                assert later >= earlier - 1e-12
