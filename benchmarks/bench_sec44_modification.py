"""Section 4.4 — the Modification Query worked example.

Paper: raising P[know(Ben,Elena)] from 0.18 to 0.5 requires a single change
to rule r3 (0.2 → 0.56, cost 0.36, using the paper's approximate
influence).  With exact inference the same single-step plan results, with
r3 → 0.6104 (cost 0.4104); EXPERIMENTS.md discusses the delta.
"""

import pytest

from repro import P3
from repro.data import acquaintance_program
from repro.queries.modification import greedy_strategy

from reporting import record_table


def test_sec44_greedy_modification(benchmark):
    p3 = P3(acquaintance_program())
    p3.evaluate()
    poly = p3.polynomial_of("know", "Ben", "Elena")

    plan = benchmark(greedy_strategy, poly, p3.probabilities, 0.5)

    assert plan.reached
    assert len(plan.steps) == 1
    step = plan.steps[0]
    assert str(step.literal) == "r3"
    assert step.new_probability == pytest.approx(0.6104, abs=1e-4)

    record_table(
        "sec44_modification",
        "Section 4.4: modify know(Ben,Elena) to reach P=0.5",
        ["step", "literal", "change", "resulting P", "cost"],
        [[i + 1, str(s.literal),
          "%.4g -> %.4g" % (s.old_probability, s.new_probability),
          s.resulting_probability, s.cost]
         for i, s in enumerate(plan.steps)]
        + [["", "total (paper: r3->0.56, cost 0.36)", "", "", plan.total_cost]],
    )
