"""Batched query executor — batched vs naive throughput (Section 6 data).

Fifty probability queries over the Section-6.2 Bitcoin-OTC sample,
answered three ways:

naive        sequential ``P3.probability_of`` per key, cold caches
batch cold   ``QueryExecutor.run`` fan-out, 4 workers, cold caches
batch warm   ``QueryExecutor.run`` again — every answer from the shared
             result cache

The warm batch must be at least 2x faster than the naive loop (in
practice it is orders of magnitude faster: the naive loop itself warmed
the caches the batch reads).  The executor's ``stats()`` must show the
cache hits and per-stage timings that explain the difference.
"""

import time

from repro.exec import QuerySpec

from reporting import record_json, record_table
from workloads import query_workload

BATCH_SIZE = 50
WORKERS = 4
METHOD = "parallel"


def _batch_keys(p3, count=BATCH_SIZE):
    keys = sorted(str(atom) for atom in p3.derived_atoms("trustPath"))
    if len(keys) < count:
        keys += sorted(str(atom) for atom in p3.derived_atoms("mutualTrustPath"))
    return keys[:count]


def test_batch_executor_throughput():
    p3, _, _ = query_workload()
    keys = _batch_keys(p3)
    assert len(keys) == BATCH_SIZE
    specs = [QuerySpec.probability(key, method=METHOD) for key in keys]

    executor = p3.executor(max_workers=WORKERS)
    executor.clear_caches()
    executor.stats_object.reset()

    start = time.perf_counter()
    naive = [p3.probability_of(key, method=METHOD) for key in keys]
    naive_seconds = time.perf_counter() - start

    # Cold parallel fan-out: same work, fresh caches, 4 workers.
    executor.clear_caches()
    start = time.perf_counter()
    cold = executor.run(specs)
    cold_seconds = time.perf_counter() - start
    assert cold.ok

    # Warm: every answer comes from the shared result cache.
    start = time.perf_counter()
    warm = executor.run(specs)
    warm_seconds = time.perf_counter() - start
    assert warm.ok
    assert warm.values() == cold.values()
    assert len(naive) == len(warm.values())

    stats = executor.stats()
    assert stats["caches"]["probability"]["hits"] > 0
    assert stats["stages"]["extract"]["seconds"] > 0
    assert stats["stages"]["infer"]["seconds"] > 0

    warm_speedup = naive_seconds / max(warm_seconds, 1e-9)
    cold_speedup = naive_seconds / max(cold_seconds, 1e-9)
    assert warm_speedup >= 2.0, (
        "warm batch should be >=2x the naive sequential loop "
        "(got %.1fx)" % warm_speedup)
    assert cold_speedup >= 1.0, (
        "cold fan-out must never be slower than the naive loop "
        "(got %.2fx)" % cold_speedup)

    record_table(
        "batch_executor",
        "Batched executor vs naive loop: %d probability queries, "
        "%s backend, %d workers" % (BATCH_SIZE, METHOD, WORKERS),
        ["mode", "seconds", "speedup vs naive"],
        [
            ["naive sequential", naive_seconds, 1.0],
            ["batch cold (4 workers)", cold_seconds, cold_speedup],
            ["batch warm (cache hits)", warm_seconds, warm_speedup],
        ],
    )
    record_json("BENCH_executor", {
        "batch_size": BATCH_SIZE,
        "workers": WORKERS,
        "method": METHOD,
        "naive_seconds": naive_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_speedup": cold_speedup,
        "warm_speedup": warm_speedup,
        "cache_hits": stats["caches"]["probability"]["hits"],
    })


def test_batch_parallel_probability_agrees():
    """Per-query MC fan-out is deterministic and scheduling-independent."""
    from repro.inference import batch_parallel_probability

    p3, _, _ = query_workload()
    keys = _batch_keys(p3, count=8)
    polynomials = [p3.polynomial_of(key) for key in keys]

    pooled = batch_parallel_probability(
        polynomials, p3.probabilities, samples=2000, seed=11,
        max_workers=WORKERS)
    serial = batch_parallel_probability(
        polynomials, p3.probabilities, samples=2000, seed=11,
        max_workers=1)
    assert [e.value for e in pooled] == [e.value for e in serial]
