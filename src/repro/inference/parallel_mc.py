"""Vectorized ("parallel") Monte-Carlo estimation with numpy.

Table 8 of the paper contrasts sequential Monte-Carlo with a GPU
implementation (4× GTX 1080 Ti) and reports a ~10× speedup, observing that
DNF sampling is embarrassingly parallel.  We do not have GPUs, so — per the
substitution policy in DESIGN.md — this module exploits the same
parallelism with numpy SIMD vectorization: the whole sample matrix is drawn
at once and every monomial is evaluated over all samples with a handful of
vector instructions.  Against the pure-Python sequential baseline this
reproduces the order-of-magnitude speedup shape.

The estimator is sampling-equivalent to the sequential one (same Bernoulli
model), so results agree within Monte-Carlo error.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import InferenceConfigurationError
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap
from ..resilience.budgets import active_meter
from .montecarlo import MonteCarloEstimate


class CompiledPolynomial:
    """A polynomial compiled to integer index arrays for vector evaluation.

    Compilation is one-time per polynomial; the compiled form can be
    evaluated repeatedly (influence queries evaluate the same polynomial
    under many conditionings, so this matters).
    """

    #: Monomial width at which float32 count accumulation stops being
    #: exact: integers are only representable up to 2^24 in float32, so a
    #: wider monomial's true-literal count (and the width itself) can
    #: round during the BLAS product.
    EXACT_FLOAT32_WIDTH = 1 << 24

    def __init__(self, polynomial: Polynomial,
                 exact_count_limit: int = EXACT_FLOAT32_WIDTH) -> None:
        self.polynomial = polynomial
        self.literals: List[Literal] = sorted(polynomial.literals())
        self._index: Dict[Literal, int] = {
            literal: i for i, literal in enumerate(self.literals)
        }
        # Monomials as index arrays, shortest first (cheap ones short-circuit).
        self.monomials: List[np.ndarray] = [
            np.fromiter((self._index[lit] for lit in monomial.literals),
                        dtype=np.intp, count=len(monomial))
            for monomial in sorted(polynomial.monomials, key=len)
        ]
        # Membership matrix for BLAS-based evaluation: a monomial is
        # satisfied when the count of its true literals equals its width,
        # and the counts for ALL monomials at once are one matrix product
        # samples×vars @ vars×monomials.  Counts of 0/1 entries are exact
        # in float32 below 2^24; monomials at or past ``exact_count_limit``
        # switch the product to float64 (exact to 2^53).
        self._has_empty_monomial = any(m.size == 0 for m in self.monomials)
        nonempty = [m for m in self.monomials if m.size]
        widest = max((m.size for m in nonempty), default=0)
        self._count_dtype = (np.float64 if widest >= exact_count_limit
                             else np.float32)
        meter = active_meter()
        if meter is not None:
            # Consult the ambient resource budget *before* allocating: the
            # membership matrix is the piece of compiled state that scales
            # as variables × monomials and can dwarf the polynomial itself.
            itemsize = np.dtype(self._count_dtype).itemsize
            meter.check_compiled_bytes(
                len(self.literals) * len(nonempty) * itemsize)
        self._membership = np.zeros(
            (len(self.literals), len(nonempty)), dtype=self._count_dtype)
        for column, indices in enumerate(nonempty):
            self._membership[indices, column] = 1.0
        self._widths = np.array(
            [indices.size for indices in nonempty], dtype=self._count_dtype)

    @property
    def variable_count(self) -> int:
        return len(self.literals)

    def probability_vector(self, probabilities: ProbabilityMap) -> np.ndarray:
        return np.array(
            [probabilities[lit] for lit in self.literals], dtype=np.float64)

    def index_of(self, literal: Literal) -> int:
        return self._index[literal]

    def sample_matrix(self, probabilities: ProbabilityMap, samples: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Draw a (samples × variables) Boolean matrix of literal truths."""
        prob_vector = self.probability_vector(probabilities)
        return rng.random((samples, len(self.literals))) < prob_vector

    def evaluate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Evaluate the DNF row-wise: Boolean vector of length ``samples``.

        A monomial is satisfied by a row exactly when the number of its
        literals that are true equals its width; the per-monomial counts
        for every row come from one BLAS matrix product (rows are chunked
        to bound the temporary count matrix).
        """
        samples = matrix.shape[0]
        if self._has_empty_monomial:
            return np.ones(samples, dtype=bool)
        if self._membership.shape[1] == 0:
            return np.zeros(samples, dtype=bool)
        satisfied = np.empty(samples, dtype=bool)
        chunk = max(1, (4 << 20) // max(1, self._membership.shape[1]))
        # A count can never exceed its monomial's width (0/1 membership ×
        # boolean rows), so >= width − 0.5 is equivalent to equality while
        # tolerating sub-half-unit float error instead of requiring the
        # count to be bit-exact.
        thresholds = self._widths - 0.5
        for start in range(0, samples, chunk):
            block = matrix[start:start + chunk].astype(self._count_dtype)
            counts = block @ self._membership
            satisfied[start:start + chunk] = (counts >= thresholds).any(axis=1)
        return satisfied


def parallel_probability(polynomial: Polynomial,
                         probabilities: ProbabilityMap,
                         samples: int = 10000,
                         seed: Optional[int] = None,
                         rng: Optional[np.random.Generator] = None,
                         compiled: Optional[CompiledPolynomial] = None
                         ) -> MonteCarloEstimate:
    """Vectorized estimate of P[λ] — the Table 8 "parallel" backend."""
    if samples <= 0:
        raise InferenceConfigurationError("samples must be positive")
    if polynomial.is_zero:
        return MonteCarloEstimate(0.0, samples, 0)
    if polynomial.is_one:
        return MonteCarloEstimate(1.0, samples, samples)
    if rng is None:
        rng = np.random.default_rng(seed)
    if compiled is None:
        compiled = CompiledPolynomial(polynomial)
    matrix = compiled.sample_matrix(probabilities, samples, rng)
    hits = int(compiled.evaluate_matrix(matrix).sum())
    return MonteCarloEstimate(hits / samples, samples, hits)


def batch_parallel_probability(polynomials: Sequence[Polynomial],
                               probabilities: ProbabilityMap,
                               samples: int = 10000,
                               seed: Optional[int] = None,
                               max_workers: int = 4
                               ) -> List[MonteCarloEstimate]:
    """Estimate P[λ] for a batch of polynomials across a thread pool.

    Per-*query* parallelism on top of the per-literal vectorization above:
    each polynomial is compiled and sampled independently on its own
    worker.  The sampling inner loop is numpy (BLAS matmul + RNG), which
    releases the GIL, so threads achieve real concurrency without the
    pickling cost of a process pool.

    Seeding is per-polynomial via ``SeedSequence(seed).spawn(n)``, so
    results are independent of scheduling order and of ``max_workers``,
    and the workers' streams are statistically independent.  (The earlier
    ``seed + i`` scheme produced overlapping streams whenever two batches
    were themselves seeded with nearby offsets — e.g. batched influence
    queries deriving seeds by offsetting — which correlated their
    Monte-Carlo errors.)
    """
    if samples <= 0:
        raise InferenceConfigurationError("samples must be positive")
    if max_workers <= 0:
        raise InferenceConfigurationError("max_workers must be positive")
    polynomials = list(polynomials)
    if not polynomials:
        return []
    streams = np.random.SeedSequence(seed).spawn(len(polynomials))

    def _one(index: int) -> MonteCarloEstimate:
        return parallel_probability(
            polynomials[index], probabilities,
            samples=samples, rng=np.random.default_rng(streams[index]))

    if max_workers == 1 or len(polynomials) == 1:
        return [_one(i) for i in range(len(polynomials))]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_one, range(len(polynomials))))


def parallel_conditioned_pair(polynomial: Polynomial,
                              probabilities: ProbabilityMap,
                              literal: Literal,
                              samples: int = 10000,
                              seed: Optional[int] = None,
                              rng: Optional[np.random.Generator] = None,
                              compiled: Optional[CompiledPolynomial] = None
                              ) -> tuple:
    """Estimate (P[λ|x=1], P[λ|x=0]) with common random numbers.

    One shared sample matrix is evaluated twice with the literal's column
    forced to 1 and then 0; the difference of the two estimates is the
    influence of the literal (Definition 4.1) with dramatically lower
    variance than independent sampling.
    """
    if compiled is None:
        compiled = CompiledPolynomial(polynomial)
    if rng is None:
        rng = np.random.default_rng(seed)
    matrix = compiled.sample_matrix(probabilities, samples, rng)
    column = compiled.index_of(literal)

    matrix[:, column] = True
    hits_true = int(compiled.evaluate_matrix(matrix).sum())
    matrix[:, column] = False
    hits_false = int(compiled.evaluate_matrix(matrix).sum())

    return (
        MonteCarloEstimate(hits_true / samples, samples, hits_true),
        MonteCarloEstimate(hits_false / samples, samples, hits_false),
    )
