"""Interned-term arena and columnar fact storage for the grounder.

The bottom-up engine's working set is a forest of Python objects: every
ground atom is an :class:`~repro.datalog.terms.Atom` holding per-argument
:class:`~repro.datalog.terms.Constant` instances, every index entry a set
of them.  At the full Bitcoin-OTC scale (35k base edges, millions of
candidate joins) that representation dominates both memory and join time.

This module replaces it for the query-directed path:

- :class:`TermArena` interns every constant value once, mapping it to a
  dense integer *term id* (tid).
- :class:`RelationTable` stores one relation's ground tuples as rows of
  tids with lazily-built per-column hash indexes — joins compare small
  ints, never objects.
- :class:`FactStore` groups tables behind a dense *global fact id* (gid)
  space and supports cheap copy-on-write overlays: a per-goal grounding
  run shares the (large, read-only) base facts of its parent store and
  owns only the magic/adorned relations it derives, so repeated goals
  against one program never re-intern the EDB.

Atoms only materialize again at the very edge, when the grounder renders
provenance keys — through the same ``str(Atom(...))`` path the engine
uses, which keeps key bytes identical between the two evaluators.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..datalog.ast import Program

#: A fact's probability/label pair, carried for program (base) facts only;
#: derived rows have no meta.
FactMeta = Tuple[float, Optional[str]]


class TermArena:
    """Interns constant values to dense integer term ids.

    Interning keys on ``(type(value), value)`` so that e.g. ``1`` and
    ``1.0`` — equal under ``==`` but distinct constants under unification
    — receive distinct ids.  Term-id equality is then exactly
    :class:`~repro.datalog.terms.Constant` equality, which is what joins
    need.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[Tuple[type, Any], int] = {}
        self._values: List[Any] = []

    def intern(self, value: Any) -> int:
        key = (type(value), value)
        tid = self._ids.get(key)
        if tid is None:
            tid = len(self._values)
            self._ids[key] = tid
            self._values.append(value)
        return tid

    def lookup(self, value: Any) -> Optional[int]:
        """The term id of ``value`` if already interned, else ``None``."""
        return self._ids.get((type(value), value))

    def value(self, tid: int) -> Any:
        return self._values[tid]

    def __len__(self) -> int:
        return len(self._values)


class RelationTable:
    """One relation's ground tuples as rows of term ids.

    Rows are append-only and deduplicated; ``gids[i]`` is the global fact
    id of ``rows[i]``.  Column indexes (tid → row positions) are built
    lazily on first use and extended incrementally as rows arrive, so
    semi-naive rounds never rebuild an index from scratch.
    """

    __slots__ = ("name", "arity", "rows", "gids", "_row_ids", "_indexes",
                 "_indexed_upto")

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self.rows: List[Tuple[int, ...]] = []
        self.gids: List[int] = []
        self._row_ids: Dict[Tuple[int, ...], int] = {}
        self._indexes: Dict[int, Dict[int, List[int]]] = {}
        self._indexed_upto: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def local_index(self, row: Tuple[int, ...]) -> Optional[int]:
        return self._row_ids.get(row)

    def add(self, row: Tuple[int, ...], gid: int) -> bool:
        """Append ``row`` under global id ``gid``; False when a duplicate."""
        if row in self._row_ids:
            return False
        self._row_ids[row] = len(self.rows)
        self.rows.append(row)
        self.gids.append(gid)
        return True

    def _index_for(self, column: int) -> Dict[int, List[int]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            self._indexes[column] = index
            self._indexed_upto[column] = 0
        upto = self._indexed_upto[column]
        total = len(self.rows)
        if upto < total:
            rows = self.rows
            for position in range(upto, total):
                index.setdefault(rows[position][column], []).append(position)
            self._indexed_upto[column] = total
        return index

    def match(self, bound: Sequence[Tuple[int, int]], lo: int = 0,
              hi: Optional[int] = None) -> Iterable[int]:
        """Row positions in ``[lo, hi)`` agreeing with ``bound``.

        ``bound`` is a sequence of ``(column, tid)`` pairs; the smallest
        matching column bucket drives the scan (same candidate heuristic
        as :meth:`repro.datalog.database.Relation.match`).
        """
        if hi is None:
            hi = len(self.rows)
        if lo >= hi:
            return ()
        if not bound:
            return range(lo, hi)
        best: Optional[List[int]] = None
        for column, tid in bound:
            bucket = self._index_for(column).get(tid)
            if not bucket:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        rows = self.rows
        out: List[int] = []
        for position in best:
            if position < lo or position >= hi:
                continue
            row = rows[position]
            for column, tid in bound:
                if row[column] != tid:
                    break
            else:
                out.append(position)
        return out


class FactStore:
    """Relation tables behind a dense global fact id (gid) space.

    A root store owns every table.  An overlay (``FactStore(parent=...)``)
    shares the parent's arena, reads the parent's tables in place, and may
    only create *new* relations of its own — which is exactly the shape of
    a magic-transformed program: original EDB relations are read, while
    every derived relation (``m_*``, adorned copies) is fresh.  Overlay
    gids continue after ``parent.count()``, so a gid resolves to the same
    fact in parent and overlay alike.

    The parent must not grow while overlays are alive (the planner resets
    its store whenever base facts change).
    """

    def __init__(self, parent: Optional["FactStore"] = None) -> None:
        self._parent = parent
        if parent is None:
            self.arena = TermArena()
            self._tables: Dict[str, RelationTable] = {}
            self._parent_count = 0
        else:
            self.arena = parent.arena
            self._tables = dict(parent._tables)
            self._parent_count = parent.count()
        # Insertion-ordered (dict) so evaluation order — and with it gid
        # assignment — is deterministic across processes.
        self._owned: Dict[str, None] = {}
        self._locations: List[Tuple[RelationTable, int]] = []
        self._meta: List[Optional[FactMeta]] = []

    @classmethod
    def from_program(cls, program: Program) -> "FactStore":
        """A root store seeded with every fact of ``program``."""
        store = cls()
        for fact in program.facts:
            store.add(fact.atom.relation, fact.atom.as_values(),
                      meta=(fact.probability, fact.label))
        return store

    # -- writes ------------------------------------------------------------

    def add(self, relation: str, values: Sequence[Any],
            meta: Optional[FactMeta] = None) -> Tuple[int, bool]:
        """Intern ``values`` and insert one fact; returns ``(gid, inserted)``."""
        row = tuple(self.arena.intern(value) for value in values)
        return self.add_row(relation, row, meta)

    def add_row(self, relation: str, row: Tuple[int, ...],
                meta: Optional[FactMeta] = None) -> Tuple[int, bool]:
        """Insert a row of already-interned term ids."""
        table = self._tables.get(relation)
        if table is None:
            table = RelationTable(relation, len(row))
            self._tables[relation] = table
            self._owned[relation] = None
        elif len(row) != table.arity:
            raise ValueError(
                "relation %r expects arity %d, got %d"
                % (relation, table.arity, len(row)))
        existing = table.local_index(row)
        if existing is not None:
            return table.gids[existing], False
        if self._parent is not None and relation not in self._owned:
            raise ValueError(
                "overlay cannot insert into parent-owned relation %r"
                % relation)
        gid = self._parent_count + len(self._locations)
        table.add(row, gid)
        self._locations.append((table, len(table.rows) - 1))
        self._meta.append(meta)
        return gid, True

    # -- reads -------------------------------------------------------------

    def table(self, relation: str) -> Optional[RelationTable]:
        return self._tables.get(relation)

    def relations(self) -> Iterable[str]:
        return self._tables.keys()

    def owned_relations(self) -> Tuple[str, ...]:
        """Names of the relations this store (not a parent) owns."""
        return tuple(self._owned)

    def location(self, gid: int) -> Tuple[RelationTable, int]:
        if gid < self._parent_count:
            return self._parent.location(gid)
        return self._locations[gid - self._parent_count]

    def relation_of(self, gid: int) -> str:
        return self.location(gid)[0].name

    def row_of(self, gid: int) -> Tuple[int, ...]:
        table, position = self.location(gid)
        return table.rows[position]

    def fact(self, gid: int) -> Tuple[str, Tuple[Any, ...]]:
        """The fact behind ``gid`` as ``(relation, value tuple)``."""
        table, position = self.location(gid)
        arena = self.arena
        return table.name, tuple(arena.value(tid)
                                 for tid in table.rows[position])

    def meta(self, gid: int) -> Optional[FactMeta]:
        """Probability/label of a program fact; ``None`` for derived rows."""
        if gid < self._parent_count:
            return self._parent.meta(gid)
        return self._meta[gid - self._parent_count]

    def find(self, relation: str, values: Sequence[Any]) -> Optional[int]:
        """The gid of a stored fact, or ``None``."""
        table = self._tables.get(relation)
        if table is None:
            return None
        row: List[int] = []
        for value in values:
            tid = self.arena.lookup(value)
            if tid is None:
                return None
            row.append(tid)
        position = table.local_index(tuple(row))
        if position is None:
            return None
        return table.gids[position]

    def count(self) -> int:
        """Total facts visible through this store (parent + own)."""
        return self._parent_count + len(self._locations)

    def local_count(self) -> int:
        """Facts owned by this store (excluding any parent)."""
        return len(self._locations)
