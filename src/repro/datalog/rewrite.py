"""ExSPAN-style compile-time rule rewrite (Section 3.2 of the paper).

Each source rule ``rid p: H :- B1,...,Bn`` is compiled into a single
:class:`CompiledRule` that — exactly as the paper's footnote requires —
evaluates its body *once* per match and then performs three actions:

1. derive the head tuple ``H`` (the original rule),
2. record the dependency between the rule execution and its input tuples
   (the paper's ``rule(rid, (B1,...,Bn))`` table), and
3. record that ``H`` has a derivation from this rule execution (the
   paper's ``prov(H, p, rid)`` table).

The two capture tables are ordinary relations (:data:`PROV_RELATION` and
:data:`RULE_RELATION`) in the same database, so provenance is "maintained
in relational tables" and the provenance graph can be reconstructed from
them after the fact (see :func:`repro.provenance.graph.graph_from_tables`).

The compiler also schedules each comparison guard at the earliest body
position where all its variables are bound, so joins prune eagerly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .ast import Program, Rule
from .builtins import Comparison
from .terms import Atom, Constant

#: Relation storing ``prov(head_repr, probability, rule_execution_id)`` tuples.
PROV_RELATION = "prov_"
#: Relation storing ``rule(rule_execution_id, rule_label, body_repr)`` tuples.
RULE_RELATION = "rule_"

#: Relations reserved for provenance capture; user programs may not define them.
RESERVED_RELATIONS = frozenset({PROV_RELATION, RULE_RELATION})


class RewriteError(ValueError):
    """Raised when a program cannot be compiled (e.g. reserved relation use)."""


def execution_id(rule_label: str, body_atoms: Sequence[Atom]) -> str:
    """Deterministic identifier for one rule execution (rid + ground body)."""
    return "%s[%s]" % (rule_label, ";".join(str(atom) for atom in body_atoms))


class CompiledRule:
    """A source rule plus its guard schedule and provenance-capture recipe."""

    __slots__ = ("rule", "guard_schedule", "negation_schedule")

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self.guard_schedule = _schedule_guards(rule)
        self.negation_schedule = _schedule_negations(rule)

    @property
    def label(self) -> str:
        return self.rule.label  # type: ignore[return-value]

    @property
    def head(self) -> Atom:
        return self.rule.head

    @property
    def body(self) -> Tuple[Atom, ...]:
        return self.rule.body

    def capture_atoms(self, head: Atom, body_atoms: Sequence[Atom]) -> List[Atom]:
        """Build the ``prov``/``rule`` capture tuples for one firing."""
        exec_id = execution_id(self.label, body_atoms)
        prov = Atom(PROV_RELATION, (
            Constant(str(head)),
            Constant(float(self.rule.probability)),
            Constant(exec_id),
        ))
        captures = [prov]
        for body_atom in body_atoms:
            captures.append(Atom(RULE_RELATION, (
                Constant(exec_id),
                Constant(self.label),
                Constant(str(body_atom)),
            )))
        return captures

    def __repr__(self) -> str:
        return "CompiledRule(%s)" % self.rule


def _schedule_guards(rule: Rule) -> List[List[Comparison]]:
    """Assign each guard to the earliest body position binding its variables.

    Returns a list with one slot per body position; slot ``i`` holds the
    guards that become fully bound once body atoms ``0..i`` are matched.
    """
    schedule: List[List[Comparison]] = [[] for _ in rule.body]
    bound: set = set()
    remaining = list(rule.constraints)
    for position, atom in enumerate(rule.body):
        bound.update(atom.variables())
        still_pending: List[Comparison] = []
        for guard in remaining:
            if all(var in bound for var in guard.variables()):
                schedule[position].append(guard)
            else:
                still_pending.append(guard)
        remaining = still_pending
    if remaining:
        # Rule safety guarantees every guard variable occurs in the body,
        # so this is unreachable for validated rules.
        raise RewriteError(
            "Guards %s of rule %s have unbound variables"
            % (remaining, rule.label)
        )
    return schedule


def _schedule_negations(rule: Rule) -> List[List[Atom]]:
    """Assign each negated subgoal to the earliest position binding it.

    Negated subgoals are checked as soon as their variables are bound by
    the positive join prefix — stratified evaluation guarantees the negated
    relation is already complete at that point.
    """
    schedule: List[List[Atom]] = [[] for _ in rule.body]
    bound: set = set()
    remaining = list(rule.negations)
    for position, atom in enumerate(rule.body):
        bound.update(atom.variables())
        still_pending: List[Atom] = []
        for negated in remaining:
            if all(var in bound for var in negated.variables()):
                schedule[position].append(negated)
            else:
                still_pending.append(negated)
        remaining = still_pending
    if remaining:
        raise RewriteError(
            "Negated subgoals %s of rule %s have unbound variables"
            % ([str(a) for a in remaining], rule.label)
        )
    return schedule


def compile_program(program: Program) -> List[CompiledRule]:
    """Compile every rule of a program, validating reserved-relation use."""
    for name in program.relations():
        if name in RESERVED_RELATIONS:
            raise RewriteError(
                "Relation %r is reserved for provenance capture" % name
            )
    return [CompiledRule(rule) for rule in program.rules]


def relation_dependencies(program: Program) -> Dict[str, set]:
    """Head-relation → set of body relations it depends on (transitively closed
    by callers when needed)."""
    deps: Dict[str, set] = {}
    for head_rel, body_rel in program.dependency_pairs():
        deps.setdefault(head_rel, set()).add(body_rel)
    return deps
