"""Retry policies: bounded re-attempts with exponential backoff + jitter.

A retry is only ever useful against *transient* failures — a flaky
worker, an injected chaos fault, a resource that may come back.  Retrying
a deterministic failure (unsupported polynomial structure, a blown
budget, invalid parameters) burns deadline for nothing, so the default
classification delegates to :func:`repro.core.errors.is_transient`.

Backoff is exponential with full-range jitter: attempt ``k`` (1-based)
sleeps ``base · multiplier^(k-1)``, scaled by a uniform factor in
``[1 - jitter, 1 + jitter]`` and clamped to ``max_backoff``.  Jitter
keeps a thundering herd of queries that all hit the same flaky backend
from re-hitting it in lockstep.

The policy object is pure decision logic — *it never sleeps*.  Callers
(:class:`~repro.resilience.ladder.FallbackLadder`) ask :meth:`delay` and
do the sleeping themselves, which keeps the policy trivially testable and
lets the ladder cap any delay by the remaining query deadline.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..core.errors import is_transient


class RetryPolicy:
    """How many times to re-attempt a rung, and how long to wait between.

    Parameters
    ----------
    max_attempts:
        Total attempts per rung, including the first (``1`` = no retry).
    backoff_seconds:
        Base sleep before the first retry.
    multiplier:
        Exponential growth factor per further retry.
    max_backoff_seconds:
        Upper clamp on any single sleep.
    jitter:
        Relative jitter width in ``[0, 1]``: each delay is scaled by a
        uniform factor in ``[1 - jitter, 1 + jitter]``.
    retry_on:
        Predicate deciding whether an exception is worth retrying
        (default: :func:`repro.core.errors.is_transient`).
    """

    __slots__ = ("max_attempts", "backoff_seconds", "multiplier",
                 "max_backoff_seconds", "jitter", "retry_on")

    def __init__(self,
                 max_attempts: int = 3,
                 backoff_seconds: float = 0.05,
                 multiplier: float = 2.0,
                 max_backoff_seconds: float = 2.0,
                 jitter: float = 0.5,
                 retry_on: Optional[Callable[[BaseException], bool]] = None
                 ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if backoff_seconds < 0 or max_backoff_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.multiplier = multiplier
        self.max_backoff_seconds = max_backoff_seconds
        self.jitter = jitter
        self.retry_on = retry_on if retry_on is not None else is_transient

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Retry after ``error`` on 1-based attempt number ``attempt``?"""
        if attempt >= self.max_attempts:
            return False
        return bool(self.retry_on(error))

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Seconds to sleep before the retry following ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_seconds * (self.multiplier ** (attempt - 1))
        base = min(base, self.max_backoff_seconds)
        if self.jitter and base > 0:
            scale = 1.0 + self.jitter * (2.0 * (rng or random).random() - 1.0)
            base *= max(0.0, scale)
        return min(base, self.max_backoff_seconds)

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_seconds": self.backoff_seconds,
            "multiplier": self.multiplier,
            "max_backoff_seconds": self.max_backoff_seconds,
            "jitter": self.jitter,
        }

    def __repr__(self) -> str:
        return "RetryPolicy(max_attempts=%d, backoff=%gs)" % (
            self.max_attempts, self.backoff_seconds)


#: A policy that never retries (single attempt per rung).
NO_RETRY = RetryPolicy(max_attempts=1)
