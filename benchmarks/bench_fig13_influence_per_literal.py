"""Figure 13 — per-literal influence time on sufficient provenance vs error.

As the error limit grows, the sufficient provenance shrinks roughly
exponentially and the per-literal influence computation time falls with it.
"""

import time

from repro.queries.derivation import derivation_query
from repro.queries.influence import influence_query

from reporting import record_table
from workloads import epsilon_grid, query_workload

SAMPLES = 20000
LITERALS_TIMED = 10


def test_fig13_influence_time_per_literal(benchmark):
    p3, key, poly = query_workload()
    probabilities = p3.probabilities
    from repro.inference.parallel_mc import parallel_probability
    probability = parallel_probability(
        poly, probabilities, samples=SAMPLES, seed=1).value

    rows = []
    times = []
    for fraction in [0.0] + epsilon_grid():
        epsilon = fraction * probability
        sufficient = derivation_query(
            poly, probabilities, epsilon, method="naive-mc").sufficient
        literals = sorted(sufficient.literals())[:LITERALS_TIMED]
        if not literals:
            continue
        start = time.perf_counter()
        influence_query(sufficient, probabilities, literals=literals,
                        method="parallel", samples=SAMPLES, seed=1)
        elapsed = time.perf_counter() - start
        per_literal_ms = 1000 * elapsed / len(literals)
        times.append(per_literal_ms)
        rows.append(["%.1f%%" % (100 * fraction), len(sufficient),
                     per_literal_ms])

    record_table(
        "fig13_influence_per_literal",
        "Figure 13: influence time per literal on sufficient provenance "
        "(query %s)" % key,
        ["approx. error (% of P)", "dnf size", "influence time (ms/literal)"],
        rows,
    )

    # Shape: large error limits cut per-literal time substantially.
    # Compare head/tail averages (single-point ratios are noisy under a
    # loaded machine).
    head = sum(times[:3]) / 3
    tail = sum(times[-3:]) / 3
    assert tail < head * 0.7

    sufficient = derivation_query(
        poly, probabilities, 0.02 * probability,
        method="naive-mc").sufficient
    literals = sorted(sufficient.literals())[:3]
    benchmark.pedantic(
        influence_query, args=(sufficient, probabilities),
        kwargs={"literals": literals, "method": "parallel",
                "samples": SAMPLES, "seed": 1},
        rounds=2, iterations=1)
