"""Mutual trust in a social network — the Section 5.2 case study.

Reproduces Queries 2A-2C on the exact 6-node Bitcoin-OTC fragment behind
the paper's Figure 8 and Tables 5-7, then repeats them on a larger
synthetic network sample to show the same workflow at scale.

Run with::

    python examples/social_trust.py
"""

from repro import P3, P3Config
from repro.data import generate_network, paper_fragment
from repro.queries import random_strategy


def paper_fragment_study() -> None:
    print("=" * 72)
    print("Part 1: the paper's 6-node fragment (Figure 8, Tables 5-7)")
    print("=" * 72)
    network = paper_fragment()
    print("Initial trust probabilities (paper Table 5):")
    for (src, dst), edge in sorted(network.edges.items()):
        print("  trust(%d,%d) = %.2f" % (src, dst, edge.probability))

    p3 = P3(network.to_program())
    p3.evaluate()

    # ---- Query 2A: explanation --------------------------------------------
    print("\nQuery 2A: derivations of mutualTrustPath(1,6)")
    explanation = p3.explain("mutualTrustPath", 1, 6)
    print(explanation.to_text())

    # ---- Query 2B: influence ----------------------------------------------
    print("\nQuery 2B: most influential trust tuples")
    report = p3.influence("mutualTrustPath", 1, 6, kind="tuple")
    for score in report.top(4):
        print("  %-14s influence = %.4f" % (score.literal, score.influence))
    print("  (paper: trust(6,2)=0.51 first, trust(2,6)=0.48 second)")

    # ---- Query 2C: modification ---------------------------------------------
    print("\nQuery 2C: raise P[mutualTrustPath(1,6)] from %.4f to 0.7"
          % p3.probability_of("mutualTrustPath", 1, 6))
    greedy = p3.modify("mutualTrustPath", 1, 6, target=0.7, only_tuples=True)
    print(greedy.to_text())
    print("  (paper Table 6: trust(6,2)->1.0, trust(2,6)->1.0,"
          " trust(2,1)->0.93, total 0.58)")

    random_plan = random_strategy(
        p3.polynomial_of("mutualTrustPath", 1, 6),
        p3.probabilities, 0.7,
        modifiable=lambda lit: lit.is_tuple, seed=7)
    print("\nRandom baseline (paper Table 7):")
    print(random_plan.to_text())
    print("\nGreedy cost %.2f vs random cost %.2f — greedy wins, as in the"
          " paper (0.58 vs 1.36)."
          % (greedy.total_cost, random_plan.total_cost))


def scaled_study() -> None:
    print("\n" + "=" * 72)
    print("Part 2: the same queries on a synthetic Bitcoin-OTC-like sample")
    print("=" * 72)
    network = generate_network(nodes=800, edges=3200, seed=42)
    sample = network.sample_nodes_edges(60, 90, seed=7)
    print("Sampled network: %d nodes, %d edges (%.0f%% positive ratings)"
          % (sample.node_count, sample.edge_count,
             100 * sample.positive_fraction()))

    config = P3Config(hop_limit=4)
    p3 = P3(sample.to_program(), config)
    p3.evaluate()

    mutual = sorted(map(str, p3.derived_atoms("mutualTrustPath")))
    print("Derived %d mutualTrustPath tuples (hop limit 4)." % len(mutual))
    if not mutual:
        print("No mutual paths in this sample; re-run with another seed.")
        return

    # Pick the mutual pair with the largest provenance to make it interesting.
    target = max(mutual, key=lambda key: len(p3.polynomial_of(key)))
    polynomial = p3.polynomial_of(target)
    print("\nStudying %s: %d derivations over %d literals"
          % (target, len(polynomial), len(polynomial.literals())))
    print("  P = %.4f" % p3.probability_of(target))

    sufficient = p3.sufficient_provenance(target, epsilon=0.01)
    print("  sufficient provenance at eps=0.01: %d -> %d monomials"
          % (len(sufficient.original), len(sufficient.sufficient)))

    report = p3.influence(target, kind="tuple")
    print("  top-3 influential trust relations:")
    for score in report.top(3):
        print("    %-16s %.4f" % (score.literal, score.influence))

    current = p3.probability_of(target)
    # Rule r3 (p=0.8) caps what base-tuple changes alone can achieve, so aim
    # halfway between the current value and that ceiling.
    goal = round(current + (0.8 - current) / 2, 2)
    plan = p3.modify(target, target=goal, only_tuples=True)
    print("  modification to reach %.2f: %d steps, total cost %.3f (%s)"
          % (goal, len(plan.steps), plan.total_cost,
             "reached" if plan.reached else "not reached"))


def main() -> None:
    paper_fragment_study()
    scaled_study()


if __name__ == "__main__":
    main()
