"""``repro.telemetry``: structured tracing, metrics, and profiling.

One process-wide :class:`TelemetryRuntime` (off by default) bundles a
:class:`~repro.telemetry.tracer.Tracer`, a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and the configured
sinks.  Instrumentation sites across the pipeline follow one pattern::

    from .. import telemetry

    rt = telemetry.runtime()
    if rt.enabled:
        with rt.tracer.span("infer", backend=name) as span:
            ... timed work, span.set_attribute(...), rt.metrics...

so the disabled cost is a module-global read plus one attribute check —
no spans, no metric lookups, no allocation.  Enable it with::

    telemetry.configure(TelemetryConfig(enabled=True,
                                        trace_path="trace.jsonl"))
    ... traced work ...
    telemetry.finish()     # flush sinks, write metrics/chrome exports
    telemetry.disable()    # back to the no-op runtime

or per system via ``P3Config(telemetry=TelemetryConfig(...))``, or from
the command line via ``p3 trace`` / ``--trace-out`` / ``--metrics-out``.

Span stage names mirror :data:`repro.exec.stats.STAGES` (``parse``,
``evaluate``, ``update``, ``extract``, ``infer``, ``query``) with finer
module-level spans (``extract.polynomial``, ``infer.backend``,
``query.influence``, …) nested beneath them; docs/OBSERVABILITY.md
documents the full span and metric inventory.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_SECONDS,
    MetricsRegistry,
)
from .sinks import (
    JSONLSink,
    RingBufferSink,
    SlowQueryLog,
    chrome_trace_events,
    render_span_tree,
    write_chrome_trace,
)
from .tracer import NULL_SPAN, NULL_TRACER, Span, Tracer, current_span
from .validate import validate_span_dicts


class TelemetryConfig:
    """Declarative telemetry settings (the ``P3Config.telemetry`` knob).

    Parameters
    ----------
    enabled:
        Master switch; everything below is inert when False.
    ring_capacity:
        Bound of the in-memory span ring buffer (``p3 trace`` and the
        audit replay attachment read recent spans from it).
    trace_path:
        When set, stream every finished span to this JSONL file.
    chrome_path:
        When set, :func:`finish` writes the ring buffer as a Chrome
        ``trace_event`` JSON file for flamegraph viewing.
    metrics_path:
        When set, :func:`finish` writes the metrics registry in the
        Prometheus text format.
    slow_query_seconds:
        When set, spans named ``query`` (one executor spec) or trace
        roots slower than this are retained in the slow-query log.
    """

    def __init__(self,
                 enabled: bool = True,
                 ring_capacity: int = 4096,
                 trace_path: Optional[str] = None,
                 chrome_path: Optional[str] = None,
                 metrics_path: Optional[str] = None,
                 slow_query_seconds: Optional[float] = None) -> None:
        if ring_capacity <= 0:
            raise ValueError("ring_capacity must be positive")
        if slow_query_seconds is not None and slow_query_seconds <= 0:
            raise ValueError("slow_query_seconds must be positive or None")
        self.enabled = enabled
        self.ring_capacity = ring_capacity
        self.trace_path = trace_path
        self.chrome_path = chrome_path
        self.metrics_path = metrics_path
        self.slow_query_seconds = slow_query_seconds

    def __repr__(self) -> str:
        return "TelemetryConfig(enabled=%r)" % self.enabled


class TelemetryRuntime:
    """The live bundle: tracer + metrics + sinks for one configuration."""

    def __init__(self, config: TelemetryConfig) -> None:
        self.config = config
        self.enabled = config.enabled
        self.metrics = MetricsRegistry()
        self.ring: Optional[RingBufferSink] = None
        self.jsonl: Optional[JSONLSink] = None
        self.slow_log: Optional[SlowQueryLog] = None
        if not config.enabled:
            self.tracer = NULL_TRACER
            return
        self.tracer = Tracer(enabled=True)
        self.ring = RingBufferSink(config.ring_capacity)
        self.tracer.add_sink(self.ring)
        if config.trace_path is not None:
            self.jsonl = JSONLSink(config.trace_path,
                                   anchor_ns=self.tracer.anchor_ns)
            self.tracer.add_sink(self.jsonl)
        if config.slow_query_seconds is not None:
            self.slow_log = SlowQueryLog(config.slow_query_seconds)
            self.tracer.add_sink(self.slow_log)

    def finish(self) -> None:
        """Flush and close file sinks; write the deferred exports."""
        if self.jsonl is not None:
            self.jsonl.close()
        if self.config.chrome_path is not None and self.ring is not None:
            write_chrome_trace(self.ring.spans(), self.config.chrome_path)
        if self.config.metrics_path is not None:
            with open(self.config.metrics_path, "w",
                      encoding="utf-8") as handle:
                handle.write(self.metrics.to_prometheus())

    def __repr__(self) -> str:
        return "TelemetryRuntime(enabled=%r)" % self.enabled


#: The permanent no-op runtime (also what :func:`disable` restores).
_DISABLED = TelemetryRuntime(TelemetryConfig(enabled=False))

_runtime: TelemetryRuntime = _DISABLED
_runtime_lock = threading.Lock()


def runtime() -> TelemetryRuntime:
    """The process-wide telemetry runtime (the no-op one by default)."""
    return _runtime


def get_tracer() -> Tracer:
    return _runtime.tracer


def get_metrics() -> MetricsRegistry:
    return _runtime.metrics


def configure(config: Optional[TelemetryConfig] = None,
              **overrides: object) -> TelemetryRuntime:
    """Install a fresh runtime built from ``config`` (or keyword fields).

    Replaces the current runtime atomically; the previous runtime's file
    sinks are closed first.  Returns the new runtime.
    """
    global _runtime
    if config is None:
        config = TelemetryConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise TypeError("Pass either a TelemetryConfig or keyword fields")
    with _runtime_lock:
        previous = _runtime
        if previous is not _DISABLED:
            previous.finish()
        _runtime = TelemetryRuntime(config)
        return _runtime


def finish() -> None:
    """Flush the active runtime's sinks and write deferred exports."""
    _runtime.finish()


def disable() -> None:
    """Shut the active runtime down and restore the no-op runtime."""
    global _runtime
    with _runtime_lock:
        previous = _runtime
        _runtime = _DISABLED
    if previous is not _DISABLED:
        previous.finish()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "LATENCY_BUCKETS_SECONDS",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "RingBufferSink",
    "SlowQueryLog",
    "Span",
    "TelemetryConfig",
    "TelemetryRuntime",
    "Tracer",
    "chrome_trace_events",
    "configure",
    "current_span",
    "disable",
    "finish",
    "get_metrics",
    "get_tracer",
    "render_span_tree",
    "runtime",
    "validate_span_dicts",
    "write_chrome_trace",
]
