"""Table 2 — Influence Query results on the Acquaintance example.

Paper rows (computed with its approximate, non-inclusion-exclusion sums):

    r3  0.896      r1  0.2      t6  0.1792

Exact values (DESIGN.md §4): r3 0.8192, r1 0.1808, t6 0.16384 — the same
ranking.  The bench times the influence query (exact and Monte-Carlo) and
records the reproduced table.
"""

from repro import P3
from repro.data import acquaintance_program
from repro.queries.influence import influence_query

from reporting import record_table


def _system():
    p3 = P3(acquaintance_program())
    p3.evaluate()
    return p3


def test_table2_exact_influence(benchmark):
    p3 = _system()
    poly = p3.polynomial_of("know", "Ben", "Elena")

    report = benchmark(influence_query, poly, p3.probabilities)

    top = report.top(3)
    assert [str(s.literal) for s in top] == [
        "r3", "r1", 'know("Ben","Steve")']
    paper = {"r3": 0.896, "r1": 0.2, 'know("Ben","Steve")': 0.1792}
    record_table(
        "table2_influence",
        "Table 2: top-3 influence on know(Ben,Elena) "
        "(paper values are union-bound approximations)",
        ["literal", "influence (exact)", "paper reported"],
        [[str(s.literal), s.influence, paper[str(s.literal)]] for s in top],
    )


def test_table2_monte_carlo_influence(benchmark):
    p3 = _system()
    poly = p3.polynomial_of("know", "Ben", "Elena")

    report = benchmark(
        influence_query, poly, p3.probabilities,
        method="parallel", samples=20000, seed=3)

    assert str(report.top(1)[0].literal) == "r3"
