"""The P3 system facade: program in, provenance queries out.

Typical use::

    from repro import P3

    p3 = P3.from_source(PROGRAM_TEXT)
    p3.evaluate()
    print(p3.probability_of("know", "Ben", "Elena"))
    explanation = p3.explain("know", "Ben", "Elena")
    report = p3.influence("know", "Ben", "Elena", top_k=3)
    plan = p3.modify("know", "Ben", "Elena", target=0.5)

    p3.add_facts('t9 0.8: live("Dana","NYC").')   # live update: provenance
    print(p3.probability_of("know", "Dana", "Ben"))  # grows in place

Tuples can be addressed either by relation name plus argument values, or by
their canonical key string (e.g. ``'know("Ben","Elena")'``).
"""

from __future__ import annotations

import os
import warnings
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.engine import Engine, EvaluationResult
from ..datalog.incremental import IncrementalSession
from ..datalog.parser import parse_atom, parse_facts, parse_program
from ..datalog.terms import Atom, atom as make_atom
from ..provenance.graph import GraphBuilder, ProvenanceGraph, register_program
from ..provenance.polynomial import (
    Literal,
    Polynomial,
    rule_literal,
    tuple_literal,
)
from ..queries.derivation import SufficientProvenance, derivation_query
from ..queries.explanation import Explanation
from ..queries.influence import InfluenceReport, influence_query
from ..queries.modification import ModificationPlan, modification_query
from ..queries.topk import top_k_derivations
from ..queries.whatif import WhatIfReport, what_if_deletion
from .config import P3Config
from .errors import NotEvaluatedError, UnknownLiteralError, UnknownTupleError

if TYPE_CHECKING:
    from ..exec.executor import QueryExecutor
    from ..ground.planner import GroundingPlanner


class P3:
    """Provenance for Probabilistic logic Programs.

    Construct from a :class:`~repro.datalog.ast.Program` (or use
    :meth:`from_source`/:meth:`from_file`), call :meth:`evaluate` once, then
    issue any number of provenance queries.
    """

    def __init__(self, program: Program,
                 config: Optional[P3Config] = None) -> None:
        self.program = program
        self.config = config or P3Config()
        if self.config.telemetry is not None:
            from .. import telemetry
            telemetry.configure(self.config.telemetry)
        self._result: Optional[EvaluationResult] = None
        self._graph: Optional[ProvenanceGraph] = None
        self._probabilities: Optional[Dict[Literal, float]] = None
        self._executor: Optional["QueryExecutor"] = None
        self._session: Optional[IncrementalSession] = None
        #: Query-directed grounding planner (``config.grounding`` 'query'
        #: or 'auto'); None under classic full evaluation.
        self._planner: Optional["GroundingPlanner"] = None
        self._epoch = 0
        self._warm_started = False
        #: Optional durable provenance store (see :mod:`repro.store`);
        #: when attached, every mutation appends an epoch batch to it.
        self._store: Optional[object] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_source(cls, source: str,
                    config: Optional[P3Config] = None) -> "P3":
        """Parse program text and wrap it in a P3 instance."""
        return cls(parse_program(source), config=config)

    @classmethod
    def from_file(cls, path: Union[str, "os.PathLike[str]"],
                  config: Optional[P3Config] = None) -> "P3":
        """Parse a program file and wrap it in a P3 instance.

        Accepts any :class:`os.PathLike` and always reads UTF-8,
        independent of the platform's locale encoding.
        """
        with open(os.fspath(path), encoding="utf-8") as handle:
            return cls.from_source(handle.read(), config=config)

    @classmethod
    def warm_start(cls, program: Program, graph: ProvenanceGraph,
                   probabilities: Dict[Literal, float],
                   epoch: int = 0,
                   config: Optional[P3Config] = None) -> "P3":
        """Restore an already-evaluated system without re-evaluation.

        ``graph`` and ``probabilities`` come from a saved session
        (:func:`repro.io.serialize.load_session`) or a durable store
        (:mod:`repro.store`); ``epoch`` is the mutation counter the state
        was captured at, threaded straight into the executor's
        epoch-tagged caches so cache entries and ``update`` envelopes
        report the restored epoch, not 0.

        The evaluated database is rebuilt from the graph's tuple keys
        (every vertex is in the least model), and the synthetic
        :class:`~repro.datalog.engine.EvaluationResult` reports 0 rounds
        and 0 seconds — the tell that no fixpoint evaluation ran.

        A warm-started system has no incremental session: the first
        :meth:`add_facts` falls back to one full re-evaluation (after
        which updates are incremental again).
        """
        if epoch < 0:
            raise ValueError("epoch must be non-negative, got %d" % epoch)
        p3 = cls(program, config=config)
        database = Database()
        for key in graph.tuple_keys():
            database.add(parse_atom(key))
        derived = sum(1 for key in graph.tuple_keys()
                      if not graph.is_base(key))
        p3._result = EvaluationResult(
            database, rounds=0, firing_count=len(graph.executions()),
            elapsed_seconds=0.0, derived_count=derived)
        p3._graph = graph
        p3._probabilities = dict(probabilities)
        p3._epoch = epoch
        p3._session = None
        p3._warm_started = True
        return p3

    @classmethod
    def from_session(cls, path: Union[str, "os.PathLike[str]"],
                     config: Optional[P3Config] = None) -> "P3":
        """Warm-start from a session file written by ``p3 export`` /
        :func:`repro.io.serialize.save_session`."""
        from ..io.serialize import load_session
        session = load_session(os.fspath(path))
        return cls.warm_start(session.program, session.graph,
                              session.probabilities, epoch=session.epoch,
                              config=config)

    @classmethod
    def from_store(cls, path: Union[str, "os.PathLike[str]"],
                   config: Optional[P3Config] = None,
                   epoch: Optional[int] = None,
                   attach: bool = True) -> "P3":
        """Warm-start from a durable provenance store (see
        :mod:`repro.store`).

        ``epoch=None`` restores the latest committed epoch; an explicit
        epoch restores the graph *as of* that epoch (chain-of-custody
        time travel).  With ``attach=True`` (default) the store stays
        attached, so later :meth:`add_facts` calls append new epoch
        batches to it; attaching only applies at the latest epoch — an
        as-of restore is a read-only view and always detaches (appending
        from the middle of the chain would fork history).
        """
        from ..store import ProvenanceStore
        store = ProvenanceStore(os.fspath(path), create=False)
        try:
            system = store.open_system(cls, config=config, epoch=epoch)
        except BaseException:
            store.close()
            raise
        if attach and epoch is None:
            system._store = store
        else:
            store.close()
        return system

    # -- evaluation --------------------------------------------------------------

    def evaluate(self) -> EvaluationResult:
        """Run the program to fixpoint, capturing provenance.

        Idempotent: repeated calls return the first result.

        Negation-free programs (the common case) evaluate through an
        :class:`~repro.datalog.incremental.IncrementalSession`, which is
        kept alive so :meth:`add_facts` can later extend the model without
        re-evaluating from scratch.  Programs with stratified negation run
        the plain engine; for those, :meth:`add_facts` falls back to a
        full re-evaluation.

        Under ``config.grounding='query'`` (or ``'auto'`` on large
        programs) no fixpoint runs here at all: a
        :class:`~repro.ground.planner.GroundingPlanner` registers base
        facts and rules immediately and grounds derived provenance on
        demand, goal by goal, as queries arrive.
        """
        if self._result is None:
            from ..ground.planner import GroundingPlanner
            if GroundingPlanner.supports(self.program, self.config):
                self._planner = GroundingPlanner(self)
                self._result = self._planner.bootstrap()
                self._graph = self._planner.graph
                self._probabilities = self._graph.probability_map()
                self._session = None
                self._warm_started = False
                return self._result
            builder = GraphBuilder()
            register_program(builder.graph, self.program)
            if any(rule.negations for rule in self.program.rules):
                engine = Engine(
                    self.program,
                    recorder=builder,
                    capture_tables=self.config.capture_tables,
                    max_rounds=self.config.max_rounds,
                    max_tuples=self.config.max_tuples,
                )
                self._result = engine.run()
                self._session = None
            else:
                self._session = IncrementalSession(
                    self.program,
                    recorder=builder,
                    capture_tables=self.config.capture_tables,
                    max_rounds=self.config.max_rounds,
                    max_tuples=self.config.max_tuples,
                )
                self._result = self._session.initial_result
            self._graph = builder.graph
            self._probabilities = builder.graph.probability_map()
            self._warm_started = False
            self._sync_store()
        return self._result

    @property
    def evaluated(self) -> bool:
        return self._result is not None

    @property
    def warm_started(self) -> bool:
        """True when this system was restored without re-evaluation."""
        return self._warm_started

    # -- durable persistence -----------------------------------------------------

    @property
    def store(self) -> Optional[object]:
        """The attached :class:`repro.store.ProvenanceStore`, if any."""
        return self._store

    def attach_store(self, store: object) -> None:
        """Attach a durable provenance store.

        If the system is already evaluated, the current graph is synced
        into the store immediately (an initial snapshot, or a catch-up
        append); afterwards every :meth:`add_facts` mutation appends its
        delta as a new epoch batch, making the store an append-only
        chain-of-custody log of the system's evolution.

        Incompatible with query-directed grounding: the planner's graph
        is lazily grown per goal, and snapshotting a partial graph would
        record an incomplete least model as if it were authoritative.
        """
        if self._planner is not None:
            raise ValueError(
                "cannot attach a durable store under query-directed "
                "grounding (config.grounding=%r): the provenance graph "
                "is grown lazily per goal; use grounding='full'"
                % self.config.grounding)
        self._store = store
        if self.evaluated:
            self._sync_store()

    def detach_store(self) -> Optional[object]:
        """Detach (and return) the store without closing it."""
        store, self._store = self._store, None
        return store

    def _sync_store(self) -> None:
        if self._planner is not None:
            return  # lazy graphs are never snapshotted (see attach_store)
        if self._store is not None and self._graph is not None:
            self._store.sync(self)  # type: ignore[attr-defined]

    # -- live updates ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped whenever the evaluated state changes.

        The batch executor tags every cache entry with the epoch it was
        computed under; entries from an older epoch are invalidated on
        access, so queries can never see pre-update results.
        """
        return self._epoch

    def add_fact(self, fact: Union[Fact, str]) -> Optional[EvaluationResult]:
        """Insert one base fact; see :meth:`add_facts`."""
        return self.add_facts([fact])

    def add_facts(self, facts: Union[str, Sequence[Union[Fact, str]]]
                  ) -> Optional[EvaluationResult]:
        """Insert base facts into a live system.

        ``facts`` is a :class:`~repro.datalog.ast.Fact` sequence, a
        sequence of fact-clause strings, or one program-source string
        containing only facts (e.g. ``'t9 0.5: edge(3,4).'``).

        On an evaluated negation-free system the consequences propagate
        incrementally (semi-naive deltas over the kept session): the
        provenance graph and probability map grow in place, the epoch is
        bumped, and the executor's caches invalidate themselves — no
        from-scratch re-evaluation happens.  Returns the delta
        :class:`~repro.datalog.engine.EvaluationResult`.

        Programs with stratified negation cannot be maintained
        incrementally (an insertion may retract negation-dependent
        tuples); for those the facts are added and the whole system is
        re-evaluated, returning the fresh result.

        Before :meth:`evaluate`, the facts simply join the program and
        ``None`` is returned; the first evaluation picks them up.

        Duplicate facts (same ground atom) are ignored; duplicate clause
        labels raise :class:`~repro.datalog.ast.ClauseError`.
        """
        fact_list = self._coerce_facts(facts)
        if self._result is None:
            if self._absorb_new_facts(fact_list):
                self._epoch += 1
            return None
        if self._session is None:
            # Stratified negation, a warm-started restore, or a lazy
            # grounding planner (none keep a live session): re-evaluate.
            # For the planner that means a fresh bootstrap — cheap, since
            # no fixpoint runs — with coverage reset so every goal
            # re-grounds against the updated facts.
            if not self._absorb_new_facts(fact_list):
                return self._result
            self._epoch += 1
            self._result = None
            self._graph = None
            self._probabilities = None
            self._planner = None
            return self.evaluate()
        before = self._session.insertions
        if self._executor is not None:
            with self._executor.stats_object.time_stage("update"):
                delta = self._session.add_facts(fact_list)
        else:
            delta = self._session.add_facts(fact_list)
        if self._session.insertions == before:
            return delta  # every fact was a duplicate; nothing changed
        self._epoch += 1
        # The graph grew in place through the session's recorder; grow the
        # probability map to match.
        assert self._graph is not None and self._probabilities is not None
        for fact in fact_list:
            key = str(fact.atom)
            if self._graph.is_base(key):
                self._probabilities[tuple_literal(key)] = (
                    self._graph.base_probability(key))
        self._sync_store()
        return delta

    @staticmethod
    def _coerce_facts(facts: Union[str, Sequence[Union[Fact, str]]]
                      ) -> List[Fact]:
        """Normalise the accepted fact spellings into Fact instances."""
        if isinstance(facts, str):
            sources: Sequence[Union[Fact, str]] = [facts]
        else:
            sources = list(facts)
        fact_list: List[Fact] = []
        for entry in sources:
            if isinstance(entry, Fact):
                fact_list.append(entry)
                continue
            if not isinstance(entry, str):
                raise TypeError(
                    "add_facts expects Fact instances or fact source "
                    "strings, got %r" % (entry,))
            # parse_facts raises ParseError (a ValueError) on rules or
            # query/evidence directives; add_facts takes base facts only.
            fact_list.extend(parse_facts(entry))
        return fact_list

    def _absorb_new_facts(self, fact_list: Sequence[Fact]) -> int:
        """Append non-duplicate facts to the program; count absorbed."""
        existing = {str(fact.atom) for fact in self.program.facts}
        absorbed = 0
        for fact in fact_list:
            key = str(fact.atom)
            if key in existing:
                continue
            existing.add(key)
            self.program.add(fact)
            absorbed += 1
        return absorbed

    def _require_evaluated(self) -> None:
        if self._result is None:
            raise NotEvaluatedError(
                "Call P3.evaluate() before issuing provenance queries")

    @property
    def graph(self) -> ProvenanceGraph:
        """The full provenance graph (requires :meth:`evaluate`).

        Under query-directed grounding this is the lazily-grown planner
        graph; use :meth:`provenance_for` to guarantee a given tuple's
        derivations are present before reading it directly.
        """
        self._require_evaluated()
        assert self._graph is not None
        return self._graph

    @property
    def grounding_planner(self) -> Optional["GroundingPlanner"]:
        """The active query-directed grounding planner, if any."""
        return self._planner

    def provenance_for(self, key: str) -> ProvenanceGraph:
        """The provenance graph, guaranteed authoritative for ``key``.

        Under full evaluation this is just :attr:`graph`.  Under
        query-directed grounding it first makes the planner ground the
        goal (at most once per pattern), so ``key``'s membership and
        derivations in the returned graph are final.
        """
        self._require_evaluated()
        if self._planner is not None:
            self._planner.ensure(key)
        return self.graph

    @property
    def database(self) -> Database:
        """The evaluated relational database (requires :meth:`evaluate`)."""
        self._require_evaluated()
        assert self._result is not None
        return self._result.database

    @property
    def probabilities(self) -> Dict[Literal, float]:
        """Literal → probability map over all base tuples and rules."""
        self._require_evaluated()
        assert self._probabilities is not None
        return self._probabilities

    # -- batch execution -----------------------------------------------------------

    def executor(self, **overrides: object) -> "QueryExecutor":
        """The shared batch query executor for this system.

        Created lazily on first use (with the config's worker/cache
        settings) and reused afterwards, so every facade query shares one
        set of caches.  Keyword overrides (``max_workers``,
        ``polynomial_cache_size``, ``result_cache_size``, ``stats``)
        return a **throwaway** executor built with those settings — the
        shared executor, and its warm caches, stay untouched.  Use
        :meth:`configure_executor` to replace the shared executor instead.
        """
        self._require_evaluated()
        from ..exec.executor import QueryExecutor
        if overrides:
            return QueryExecutor(self, **overrides)  # type: ignore[arg-type]
        if self._executor is None:
            self._executor = QueryExecutor(self)
        return self._executor

    def configure_executor(self, **overrides: object) -> "QueryExecutor":
        """Install a fresh shared executor built with ``overrides``.

        Replaces (and closes) any existing shared executor; its caches
        start cold.  Every later facade query uses the new executor.
        """
        self._require_evaluated()
        from ..exec.executor import QueryExecutor
        if self._executor is not None:
            self._executor.close()
        self._executor = QueryExecutor(self, **overrides)  # type: ignore[arg-type]
        return self._executor

    # -- tuple addressing ----------------------------------------------------------

    @staticmethod
    def tuple_key(relation: str, *values: object) -> str:
        """Canonical key string of a ground tuple: ``relation("a",1)``."""
        return str(make_atom(relation, *values))  # type: ignore[arg-type]

    def _resolve_key(self, relation_or_key: str, values: Sequence[object]) -> str:
        if values:
            return self.tuple_key(relation_or_key, *values)
        return relation_or_key

    def holds(self, relation_or_key: str, *values: object) -> bool:
        """Is the tuple derivable (present in the least model)?"""
        self._require_evaluated()
        key = self._resolve_key(relation_or_key, values)
        graph = self.provenance_for(key)
        return key in graph and (
            graph.is_base(key) or graph.is_derived(key))

    def derived_atoms(self, relation: Optional[str] = None) -> Iterator[Atom]:
        """Iterate atoms in the evaluated database (optionally one relation)."""
        self._require_evaluated()
        yield from self.database.atoms(relation)

    # -- provenance access -----------------------------------------------------------

    def polynomial_of(self, relation_or_key: str, *values: object,
                      hop_limit: Optional[int] = None) -> Polynomial:
        """Extract (through the executor's bounded LRU) the λ⁰ provenance
        polynomial of a tuple."""
        self._require_evaluated()
        key = self._resolve_key(relation_or_key, values)
        return self.executor().polynomial(key, hop_limit=hop_limit)

    def probability_of(self, relation_or_key: str, *values: object,
                       method: Optional[str] = None,
                       hop_limit: Optional[int] = None) -> float:
        """Success probability P[tuple] (Equations 1-5).

        Routed through the shared executor: results are cached on
        ``(key, hop_limit, method, samples, seed)``, so repeated calls —
        and batches issued via :meth:`executor` — reuse each other's
        inference work.
        """
        self._require_evaluated()
        key = self._resolve_key(relation_or_key, values)
        return self.executor().probability(
            key, method=method, hop_limit=hop_limit)

    def literal(self, key_or_label: str) -> Literal:
        """Resolve a string to the tuple or rule literal it names."""
        self._require_evaluated()
        rules = self.graph.rules()
        if key_or_label in rules:
            return rule_literal(key_or_label)
        if self.graph.is_base(key_or_label):
            return tuple_literal(key_or_label)
        raise UnknownLiteralError(key_or_label)

    # -- the four query types -----------------------------------------------------------

    def explain(self, relation_or_key: str, *values: object,
                method: Optional[str] = None,
                hop_limit: Optional[int] = None) -> Explanation:
        """Explanation Query (Section 4.1).

        Routed through the shared executor; ``method=None`` resolves to
        ``config.probability_method``.
        """
        self._require_evaluated()
        key = self._resolve_key(relation_or_key, values)
        from ..exec.specs import QuerySpec
        params: Dict[str, object] = {}
        if method is not None:
            params["method"] = method
        if hop_limit is not None:
            params["hop_limit"] = hop_limit
        return self.executor().execute(QuerySpec("explain", key, params))

    def sufficient_provenance(self, relation_or_key: str, *values: object,
                              epsilon: float,
                              method: Optional[str] = None,
                              hop_limit: Optional[int] = None
                              ) -> SufficientProvenance:
        """Derivation Query (Section 4.2): ε-sufficient provenance.

        ``method=None`` resolves to ``config.derivation_method``.  When
        the config does not set one either, the historical implicit
        default of ``"naive"`` is used and a ``DeprecationWarning`` is
        emitted — pass ``method=`` or set
        ``P3Config(derivation_method=...)`` to silence it.
        """
        if method is None:
            method = self.config.derivation_method
            if method is None:
                warnings.warn(
                    "sufficient_provenance() without an explicit method "
                    "falls back to the implicit default 'naive'; this "
                    "fallback is deprecated — pass method=... or set "
                    "P3Config(derivation_method=...)",
                    DeprecationWarning, stacklevel=2)
                method = "naive"
        polynomial = self.polynomial_of(
            relation_or_key, *values, hop_limit=hop_limit)
        return derivation_query(
            polynomial, self.probabilities, epsilon, method=method)

    def influence(self, relation_or_key: str, *values: object,
                  method: Optional[str] = None,
                  literals: Optional[Sequence[Literal]] = None,
                  relation: Optional[str] = None,
                  kind: Optional[str] = None,
                  hop_limit: Optional[int] = None) -> InfluenceReport:
        """Influence Query (Section 4.3).

        ``relation`` filters to base-tuple literals of one relation (the
        paper's Query 1B drills into ``hasImg``/``sim`` separately);
        ``kind`` is "tuple" or "rule" to restrict literal kinds.
        ``method=None`` resolves to ``config.influence_method``.

        Routed through the shared executor unless an explicit ``literals``
        subset is given (subsets are not worth caching); full reports are
        cached, and the kind/relation filters are applied to the cached
        report.
        """
        self._require_evaluated()
        key = self._resolve_key(relation_or_key, values)
        if literals is not None:
            polynomial = self.polynomial_of(key, hop_limit=hop_limit)
            report = influence_query(
                polynomial, self.probabilities, literals=literals,
                method=method or self.config.influence_method,
                samples=self.config.samples, seed=self.config.seed)
        else:
            from ..exec.specs import QuerySpec
            params: Dict[str, object] = {}
            if method is not None:
                params["method"] = method
            if hop_limit is not None:
                params["hop_limit"] = hop_limit
            report = self.executor().execute(
                QuerySpec("influence", key, params))
        if kind is not None:
            report = report.filter(lambda lit: lit.kind == kind)
        if relation is not None:
            prefix = relation + "("
            report = report.filter(
                lambda lit: lit.is_tuple and lit.key.startswith(prefix))
        return report

    def modify(self, relation_or_key: str, *values: object,
               target: float,
               strategy: str = "greedy",
               modifiable: Optional[Callable[[Literal], bool]] = None,
               only_tuples: bool = False,
               only_rules: bool = False,
               hop_limit: Optional[int] = None,
               max_steps: Optional[int] = None) -> ModificationPlan:
        """Modification Query (Section 4.4): reach ``target`` at low cost."""
        polynomial = self.polynomial_of(
            relation_or_key, *values, hop_limit=hop_limit)
        predicate = modifiable
        if only_tuples:
            predicate = _conjoin(predicate, lambda lit: lit.is_tuple)
        if only_rules:
            predicate = _conjoin(predicate, lambda lit: lit.is_rule)
        return modification_query(
            polynomial, self.probabilities, target, strategy=strategy,
            modifiable=predicate, seed=self.config.seed,
            max_steps=max_steps)

    # -- query/evidence directives and conditioning -----------------------------

    def registered_queries(self) -> List[str]:
        """Ground tuple keys matching the program's ``query(...)`` directives.

        Patterns with variables are matched against the evaluated database;
        ground patterns are returned as-is (whether derivable or not).
        """
        self._require_evaluated()
        keys: List[str] = []
        seen = set()
        for pattern in self.program.queries:
            if self._planner is not None:
                self._planner.ensure_pattern(pattern)
            if pattern.is_ground:
                candidates = [str(pattern)]
            else:
                candidates = sorted(
                    str(pattern.substitute(subst))
                    for subst in self.database.match(pattern)
                )
            for key in candidates:
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        return keys

    def _evidence_polynomials(
            self, extra: Optional[Dict[str, bool]] = None,
            hop_limit: Optional[int] = None):
        """Program evidence (plus per-call extras) as polynomial lists."""
        observations: Dict[str, bool] = {
            str(atom): observed for atom, observed in self.program.evidence
        }
        if extra:
            observations.update(extra)
        positive = []
        negative = []
        for key in sorted(observations):
            polynomial = self.polynomial_of(key, hop_limit=hop_limit)
            if observations[key]:
                positive.append(polynomial)
            else:
                negative.append(polynomial)
        return positive, negative

    def conditional_probability_of(self, relation_or_key: str,
                                   *values: object,
                                   evidence: Optional[Dict[str, bool]] = None,
                                   hop_limit: Optional[int] = None) -> float:
        """P[tuple | evidence]: program ``evidence(...)`` directives plus
        any per-call observations (tuple key → observed truth)."""
        target = self.polynomial_of(
            relation_or_key, *values, hop_limit=hop_limit)
        positive, negative = self._evidence_polynomials(evidence, hop_limit)
        from ..queries.conditional import conditional_probability
        return conditional_probability(
            target, self.probabilities, positive, negative)

    def answer_queries(self, hop_limit: Optional[int] = None,
                       parallel: bool = True) -> Dict[str, float]:
        """Answer every ``query(...)`` directive, conditioned on the
        program's ``evidence(...)`` directives (if any).

        Batched through the shared executor: underivable queries answer
        0.0 immediately, and the rest fan out across the worker pool with
        all inference going through the shared caches.
        """
        from ..exec.specs import QuerySpec
        results: Dict[str, float] = {}
        has_evidence = bool(self.program.evidence)
        params: Dict[str, object] = {}
        if hop_limit is not None:
            params["hop_limit"] = hop_limit
        specs = []
        for key in self.registered_queries():
            if key not in self.provenance_for(key):
                results[key] = 0.0
                continue
            kind = "conditional" if has_evidence else "probability"
            specs.append(QuerySpec(kind, key, dict(params)))
        if specs:
            batch = self.executor().run(specs, parallel=parallel)
            for outcome in batch:
                if outcome.error is not None:
                    if outcome.exception is not None:
                        raise outcome.exception
                    raise RuntimeError(
                        "query %s failed: %s"
                        % (outcome.spec.key, outcome.error))
                results[outcome.spec.key] = outcome.value
        return results

    # -- extensions beyond the paper's four query types -----------------------

    def top_derivations(self, relation_or_key: str, *values: object,
                        k: int = 3,
                        hop_limit: Optional[int] = None):
        """The k most probable derivations, found lazily (no full DNF).

        Returns a list of ``(Monomial, probability)`` pairs, best first —
        the generalisation of the "most important derivation" shown in the
        paper's Figures 4 and 8.
        """
        self._require_evaluated()
        key = self._resolve_key(relation_or_key, values)
        graph = self.provenance_for(key)
        if key not in graph:
            raise UnknownTupleError(key)
        limit = hop_limit if hop_limit is not None else self.config.hop_limit
        return top_k_derivations(
            graph, key, self.probabilities, k, hop_limit=limit)

    def what_if(self, deleted: Sequence[str],
                targets: Sequence[str],
                hop_limit: Optional[int] = None) -> WhatIfReport:
        """Deletion scenario: remove base tuples / rules, report the damage.

        ``deleted`` holds tuple keys or rule labels; ``targets`` holds the
        derived tuples whose probability deltas should be reported.  Also
        lists every tuple that loses all of its derivations.
        """
        self._require_evaluated()
        deleted_literals = [self.literal(name) for name in deleted]
        target_polynomials = {
            key: self.polynomial_of(key, hop_limit=hop_limit)
            for key in targets
        }
        return what_if_deletion(
            self.graph, self.probabilities, deleted_literals,
            target_polynomials)

    def why_not(self, relation_or_key: str, *values: object):
        """Why-not provenance: explain why a tuple was NOT derived.

        Returns a :class:`repro.queries.whynot.WhyNotReport` listing, per
        rule, the closest near-miss instantiation — which subgoals are
        missing and which guards block.
        """
        self._require_evaluated()
        from ..datalog.parser import parse_atom
        from ..queries.whynot import why_not as run_why_not
        key = self._resolve_key(relation_or_key, values)
        # Under query-directed grounding, ground the goal first so the
        # database holds the query-relevant portion of the model; near
        # misses outside that portion are invisible (see docs/GROUNDING.md).
        self.provenance_for(key)
        return run_why_not(self.program, self.database, parse_atom(key))

    def __repr__(self) -> str:
        state = "evaluated" if self.evaluated else "not evaluated"
        return "P3(<%d facts, %d rules>, %s)" % (
            len(self.program.facts), len(self.program.rules), state)


def _conjoin(first: Optional[Callable[[Literal], bool]],
             second: Callable[[Literal], bool]) -> Callable[[Literal], bool]:
    if first is None:
        return second
    return lambda lit: first(lit) and second(lit)
