"""Provenance semirings (Green, Karvounarakis, Tannen — PODS 2007).

Section 3.3 notes that the graph traversal "allows us to extract any
provenance representation defined as a provenance semiring".  This module
makes that concrete: a :class:`Semiring` packages the ``(⊕, ⊗, 0, 1)``
structure, and :func:`evaluate_polynomial` folds a provenance polynomial
into it under a per-literal valuation.

Stock instances cover the classical hierarchy:

- :data:`BOOLEAN` — derivability;
- :data:`COUNTING` — number of derivation trees (bag semantics);
- :data:`TROPICAL` — minimum-cost derivation (costs add along a monomial);
- :data:`MAX_TIMES` — best single derivation probability (the Viterbi
  semiring; the paper's "most important derivation" is its argmax);
- :data:`WHY` — why-provenance (sets of witness literal-sets).

The probability of a polynomial is *not* a semiring evaluation (monomials
are correlated — the paper's Inclusion–Exclusion remark); probability lives
in :mod:`repro.inference`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Generic, Mapping, TypeVar

from .polynomial import Literal, Polynomial

T = TypeVar("T")


class Semiring(Generic[T]):
    """A commutative semiring ``(plus, times, zero, one)``."""

    def __init__(self, name: str, zero: T, one: T,
                 plus: Callable[[T, T], T],
                 times: Callable[[T, T], T]) -> None:
        self.name = name
        self.zero = zero
        self.one = one
        self.plus = plus
        self.times = times

    def __repr__(self) -> str:
        return "Semiring(%r)" % self.name


BOOLEAN: Semiring[bool] = Semiring(
    "boolean", False, True,
    lambda a, b: a or b,
    lambda a, b: a and b,
)

COUNTING: Semiring[int] = Semiring(
    "counting", 0, 1,
    lambda a, b: a + b,
    lambda a, b: a * b,
)

TROPICAL: Semiring[float] = Semiring(
    "tropical", float("inf"), 0.0,
    min,
    lambda a, b: a + b,
)

MAX_TIMES: Semiring[float] = Semiring(
    "max-times", 0.0, 1.0,
    max,
    lambda a, b: a * b,
)

#: Why-provenance: a set of witnesses, each a set of literals.
Witnesses = FrozenSet[FrozenSet[Literal]]

WHY: Semiring[Witnesses] = Semiring(
    "why",
    frozenset(),
    frozenset({frozenset()}),
    lambda a, b: a | b,
    lambda a, b: frozenset(x | y for x in a for y in b),
)


def evaluate_polynomial(polynomial: Polynomial, semiring: Semiring[T],
                        valuation: Mapping[Literal, T]) -> T:
    """Fold a provenance polynomial into a semiring under a valuation.

    Monomial literals are combined with ``times``; monomials with ``plus``.
    Missing literals raise ``KeyError`` — valuations must be total over
    ``polynomial.literals()``.
    """
    total = semiring.zero
    for monomial in polynomial.monomials:
        product = semiring.one
        for literal in monomial.literals:
            product = semiring.times(product, valuation[literal])
        total = semiring.plus(total, product)
    return total


def why_valuation(polynomial: Polynomial) -> Dict[Literal, Witnesses]:
    """The canonical why-provenance valuation: each literal names itself."""
    return {
        literal: frozenset({frozenset({literal})})
        for literal in polynomial.literals()
    }


def derivation_count(polynomial: Polynomial) -> int:
    """Number of monomials — i.e. alternative derivations after absorption."""
    return evaluate_polynomial(
        polynomial, COUNTING,
        {literal: 1 for literal in polynomial.literals()},
    )


def best_derivation_probability(polynomial: Polynomial,
                                probabilities: Mapping[Literal, float]) -> float:
    """Viterbi score: probability of the single most likely derivation."""
    return evaluate_polynomial(polynomial, MAX_TIMES, dict(probabilities))


def min_cost_derivation(polynomial: Polynomial,
                        costs: Mapping[Literal, float]) -> float:
    """Tropical score: cost of the cheapest derivation."""
    return evaluate_polynomial(polynomial, TROPICAL, dict(costs))
