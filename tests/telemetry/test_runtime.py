"""Runtime lifecycle tests: configure/finish/disable and the P3 knob."""

from __future__ import annotations

import json

import pytest

from repro import P3, P3Config, telemetry
from repro.data import acquaintance_program
from repro.telemetry import TelemetryConfig
from repro.telemetry.tracer import NULL_SPAN, NULL_TRACER


class TestDefaultRuntime:
    def test_disabled_by_default(self):
        rt = telemetry.runtime()
        assert not rt.enabled
        assert rt.tracer is NULL_TRACER
        assert rt.ring is None
        assert rt.jsonl is None
        assert rt.slow_log is None

    def test_disabled_span_is_the_shared_null_span(self):
        assert telemetry.get_tracer().span("anything") is NULL_SPAN


class TestConfigValidation:
    def test_rejects_nonpositive_ring_capacity(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ring_capacity=0)

    def test_rejects_nonpositive_slow_query_threshold(self):
        with pytest.raises(ValueError):
            TelemetryConfig(slow_query_seconds=0.0)

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(TypeError):
            telemetry.configure(TelemetryConfig(), ring_capacity=8)


class TestConfigure:
    def test_installs_enabled_runtime_with_ring(self):
        rt = telemetry.configure(TelemetryConfig())
        assert rt is telemetry.runtime()
        assert rt.enabled
        assert rt.tracer.enabled
        assert rt.ring is not None
        assert telemetry.get_tracer() is rt.tracer
        assert telemetry.get_metrics() is rt.metrics

    def test_keyword_overrides_build_the_config(self):
        rt = telemetry.configure(ring_capacity=7)
        assert rt.config.ring_capacity == 7
        assert rt.ring.capacity == 7

    def test_disabled_config_installs_null_tracer(self):
        rt = telemetry.configure(enabled=False)
        assert not rt.enabled
        assert rt.tracer is NULL_TRACER

    def test_spans_reach_the_ring(self):
        rt = telemetry.configure(TelemetryConfig())
        with rt.tracer.span("op"):
            pass
        assert [span.name for span in rt.ring.spans()] == ["op"]

    def test_slow_query_threshold_creates_slow_log(self):
        rt = telemetry.configure(slow_query_seconds=0.25)
        assert rt.slow_log is not None
        assert rt.slow_log.threshold_seconds == 0.25

    def test_reconfigure_closes_previous_file_sinks(self, tmp_path):
        first_path = tmp_path / "first.jsonl"
        first = telemetry.configure(trace_path=str(first_path))
        with first.tracer.span("before"):
            pass
        second = telemetry.configure(TelemetryConfig())
        assert second is telemetry.runtime()
        # The first runtime's JSONL handle is closed: its line is flushed
        # and later spans go nowhere near the old file.
        with second.tracer.span("after"):
            pass
        lines = first_path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["before"]


class TestDisable:
    def test_restores_noop_runtime(self):
        telemetry.configure(TelemetryConfig())
        telemetry.disable()
        assert not telemetry.runtime().enabled
        assert telemetry.get_tracer() is NULL_TRACER

    def test_disable_flushes_file_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rt = telemetry.configure(trace_path=str(path))
        with rt.tracer.span("op"):
            pass
        telemetry.disable()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "op"

    def test_disable_without_configure_is_a_noop(self):
        telemetry.disable()
        telemetry.disable()
        assert not telemetry.runtime().enabled


class TestFinish:
    def test_writes_chrome_and_metrics_exports(self, tmp_path):
        chrome_path = tmp_path / "chrome.json"
        metrics_path = tmp_path / "metrics.prom"
        rt = telemetry.configure(chrome_path=str(chrome_path),
                                 metrics_path=str(metrics_path))
        with rt.tracer.span("op"):
            pass
        rt.metrics.counter("p3_batches_total").inc()
        telemetry.finish()
        chrome = json.loads(chrome_path.read_text())
        assert any(event["name"] == "op"
                   for event in chrome["traceEvents"])
        text = metrics_path.read_text()
        assert "# TYPE p3_batches_total counter" in text
        assert "p3_batches_total 1" in text

    def test_finish_on_disabled_runtime_is_a_noop(self):
        telemetry.finish()
        assert not telemetry.runtime().enabled


class TestP3ConfigKnob:
    def test_system_construction_configures_telemetry(self):
        config = P3Config(telemetry=TelemetryConfig(ring_capacity=99))
        p3 = P3(acquaintance_program(), config=config)
        rt = telemetry.runtime()
        assert rt.enabled
        assert rt.ring.capacity == 99
        p3.evaluate()
        p3.explain("know", "Ben", "Elena")
        names = {span.name for span in rt.ring.spans()}
        assert "query" in names and "infer.backend" in names

    def test_telemetry_survives_config_replace(self):
        config = P3Config(telemetry=TelemetryConfig())
        replaced = config.replace(samples=123)
        assert replaced.telemetry is config.telemetry

    def test_default_config_leaves_telemetry_off(self):
        P3(acquaintance_program())
        assert not telemetry.runtime().enabled
