"""Unit tests for the Karp–Luby DNF estimator."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.inference.karp_luby import karp_luby_probability, union_bound
from repro.provenance.polynomial import Polynomial, tuple_literal

A = tuple_literal("a")


class TestUnionBound:
    def test_sums_monomial_probabilities(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.3 for lit in poly.literals()}
        assert union_bound(poly, probs) == pytest.approx(0.6)

    def test_clipped_at_one(self):
        poly = make_polynomial(("a",), ("b",), ("c",))
        probs = {lit: 0.9 for lit in poly.literals()}
        assert union_bound(poly, probs) == 1.0

    def test_upper_bounds_exact(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=2)
        assert union_bound(poly, probs) >= exact_probability(poly, probs)


class TestEstimator:
    def test_terminal_polynomials(self):
        assert karp_luby_probability(Polynomial.zero(), {}, 10).value == 0.0
        assert karp_luby_probability(Polynomial.one(), {}, 10).value == 1.0

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            karp_luby_probability(Polynomial.of([A]), {A: 0.5}, samples=0)

    def test_zero_weight_polynomial(self):
        poly = make_polynomial(("a",))
        assert karp_luby_probability(poly, {A: 0.0}, 100).value == 0.0

    def test_seed_reproducible(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly)
        first = karp_luby_probability(poly, probs, 2000, seed=42)
        second = karp_luby_probability(poly, probs, 2000, seed=42)
        assert first.value == second.value

    def test_converges_to_exact(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("a", "c"))
        probs = random_probabilities(poly, seed=4)
        truth = exact_probability(poly, probs)
        estimate = karp_luby_probability(poly, probs, 60000, seed=13)
        assert estimate.value == pytest.approx(truth, abs=0.02)

    def test_low_probability_relative_accuracy(self):
        # The Karp–Luby selling point: tiny probabilities estimated with
        # small RELATIVE error, where naive MC would see ~0 hits.
        poly = make_polynomial(("a", "b", "c"))
        probs = {lit: 0.02 for lit in poly.literals()}
        truth = exact_probability(poly, probs)  # 8e-6
        estimate = karp_luby_probability(poly, probs, 50000, seed=3)
        assert estimate.value == pytest.approx(truth, rel=0.2)

    def test_single_monomial_exact_in_expectation(self):
        poly = make_polynomial(("a",))
        estimate = karp_luby_probability(poly, {A: 0.37}, 1000, seed=0)
        # With one monomial the chosen monomial is always first satisfier.
        assert estimate.value == pytest.approx(0.37)
