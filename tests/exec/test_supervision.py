"""Executor-level resilience: ladder wiring, deadline/fallback
interaction, and hung-pool supervision.

These tests exercise the executor as a whole — real threads, real
pools — with fault injection through the backend registry, mirroring
how the chaos harness breaks things.
"""

import threading
import time

import pytest

from repro import P3, P3Config
from repro.core.errors import PoolHangError
from repro.data import ACQUAINTANCE
from repro.exec import QueryExecutor
from repro.inference.exact import exact_probability
from repro.inference.registry import BackendReading, override_backend
from repro.resilience import FallbackRung, ResilienceConfig
from repro.resilience.config import DEFAULT_LADDER

KEY = 'know("Ben","Elena")'
KEY_PROBABILITY = 0.163840
OTHER = 'know("Ben","Steve")'


def _system(resilience, **config_overrides):
    p3 = P3.from_source(ACQUAINTANCE, config=P3Config(
        resilience=resilience, **config_overrides))
    p3.evaluate()
    return p3


class TestLadderWiring:
    def test_outcome_carries_resilience_record(self):
        p3 = _system(ResilienceConfig())
        with QueryExecutor(p3) as executor:
            batch = executor.run([KEY])
        outcome = batch[0]
        assert outcome.ok
        assert outcome.value == pytest.approx(KEY_PROBABILITY)
        record = outcome.resilience
        assert record is not None
        assert record.answered_by == "exact"
        assert not record.used_fallback
        assert "resilience" in outcome.to_dict()

    def test_fallback_on_broken_primary(self):
        def broken(polynomial, probabilities, request):
            raise OSError("injected: exact worker lost")

        p3 = _system(ResilienceConfig())
        with override_backend("exact", broken):
            with QueryExecutor(p3) as executor:
                batch = executor.run([KEY])
        outcome = batch[0]
        assert outcome.ok
        assert outcome.value == pytest.approx(KEY_PROBABILITY)
        assert outcome.resilience.used_fallback
        assert outcome.resilience.answered_by == "bdd"

    def test_ladder_default_matches_config(self):
        p3 = _system(ResilienceConfig())
        with QueryExecutor(p3) as executor:
            assert [r.method for r in executor.fallback_ladder.rungs] \
                == list(DEFAULT_LADDER)
            assert executor.breaker_board is not None

    def test_no_resilience_means_no_ladder(self):
        p3 = _system(None)
        with QueryExecutor(p3) as executor:
            assert executor.fallback_ladder is None
            assert executor.breaker_board is None
            assert executor.run([KEY])[0].resilience is None


class TestDeadlineFallbackInteraction:
    def test_rung_over_deadline_skipped_not_started(self):
        """A rung whose timeout exceeds the remaining query deadline must
        be skipped outright — starting it would guarantee wasted work."""
        calls = []

        def spying_exact(polynomial, probabilities, request):
            calls.append(1)
            return BackendReading("exact", exact_probability(
                polynomial, probabilities))

        resilience = ResilienceConfig(
            ladder=(FallbackRung("exact", timeout=30.0), "bdd"))
        p3 = _system(resilience, query_timeout=2.0)
        with override_backend("exact", spying_exact):
            with QueryExecutor(p3) as executor:
                batch = executor.run([KEY])
        outcome = batch[0]
        assert outcome.ok
        assert calls == []  # the 30s rung never ran against a 2s deadline
        record = outcome.resilience
        assert {"backend": "exact", "reason": "insufficient-deadline"} \
            in record.skipped
        assert record.answered_by == "bdd"
        assert outcome.value == pytest.approx(KEY_PROBABILITY)

    def test_fitting_rung_still_runs_under_deadline(self):
        resilience = ResilienceConfig(
            ladder=(FallbackRung("exact", timeout=0.5), "bdd"))
        p3 = _system(resilience, query_timeout=10.0)
        with QueryExecutor(p3) as executor:
            batch = executor.run([KEY])
        assert batch[0].resilience.answered_by == "exact"


class TestPoolSupervision:
    def _blocking_backend(self, release):
        def wedged(polynomial, probabilities, request):
            release.wait()
            return BackendReading("mc", 0.0, stderr=0.0, exact=False)
        return wedged

    def test_hung_pool_rebuilt_then_abandoned(self):
        """A worker wedged past the hang window triggers one rebuild;
        when the rebuilt pool wedges too, the spec gets a PoolHangError
        outcome instead of stalling the batch forever."""
        release = threading.Event()
        resilience = ResilienceConfig(pool_hang_seconds=0.2,
                                      pool_max_rebuilds=1)
        p3 = _system(resilience)
        hung_spec = {"kind": "probability", "key": KEY,
                     "params": {"method": "mc"}}
        try:
            with override_backend(
                    "mc", self._blocking_backend(release)):
                with QueryExecutor(p3, max_workers=2) as executor:
                    started = time.monotonic()
                    batch = executor.run([hung_spec, OTHER])
                    elapsed = time.monotonic() - started
                    stats = executor.stats()
        finally:
            release.set()

        outcomes = {outcome.spec.key: outcome for outcome in batch}
        # The clean spec finished; the wedged one failed typed, fast.
        assert outcomes[OTHER].ok
        hung = outcomes[KEY]
        assert not hung.ok
        assert isinstance(hung.exception, PoolHangError)
        assert elapsed < 5.0
        events = stats["pool"]["events"]
        assert events.get("rebuild") == 1
        assert events.get("hang_abandon") == 1

    def test_progressing_pool_is_left_alone(self):
        """A clean supervised batch records only the probe's fan-out
        decision — never a rebuild or an abandonment."""
        resilience = ResilienceConfig(pool_hang_seconds=5.0)
        p3 = _system(resilience)
        with QueryExecutor(p3, max_workers=2) as executor:
            batch = executor.run([KEY, OTHER])
            stats = executor.stats()
        assert batch.ok
        events = stats.get("pool", {}).get("events", {})
        assert "rebuild" not in events
        assert "hang_abandon" not in events
        assert "degrade_sequential" not in events
        # The measured-cost probe ran (one of the two decisions fired).
        assert ("skip_fanout" in events) or ("fanout" in events)
