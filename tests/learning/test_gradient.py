"""Unit tests for gradient computation and weight fitting."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro import P3
from repro.data import ACQUAINTANCE
from repro.inference.exact import exact_probability
from repro.learning.gradient import (
    FitResult,
    TrainingExample,
    fit_probabilities,
    gradient,
    squared_loss,
)
from repro.provenance.polynomial import rule_literal, tuple_literal

A = tuple_literal("a")
B = tuple_literal("b")


class TestGradient:
    def test_equals_influence(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly, seed=1)
        from repro.queries.influence import exact_influence
        grads = gradient(poly, probs)
        for literal, value in grads.items():
            assert value == pytest.approx(
                exact_influence(poly, probs, literal))

    def test_finite_difference_agreement(self):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=7)
        grads = gradient(poly, probs)
        epsilon = 1e-6
        for literal in poly.literals():
            bumped = dict(probs)
            bumped[literal] = probs[literal] + epsilon
            numeric = (exact_probability(poly, bumped)
                       - exact_probability(poly, probs)) / epsilon
            assert grads[literal] == pytest.approx(numeric, abs=1e-4)

    def test_subset_of_literals(self):
        poly = make_polynomial(("a", "b"))
        probs = {A: 0.5, B: 0.5}
        grads = gradient(poly, probs, literals=[A])
        assert set(grads) == {A}


class TestTrainingExample:
    def test_validation(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            TrainingExample(poly, 1.5)
        with pytest.raises(ValueError):
            TrainingExample(poly, 0.5, weight=0.0)


class TestSquaredLoss:
    def test_zero_at_perfect_fit(self):
        poly = make_polynomial(("a",))
        probs = {A: 0.3}
        examples = [TrainingExample(poly, 0.3)]
        assert squared_loss(examples, probs) == pytest.approx(0.0)

    def test_weighted(self):
        poly = make_polynomial(("a",))
        probs = {A: 0.3}
        examples = [TrainingExample(poly, 0.5, weight=4.0)]
        assert squared_loss(examples, probs) == pytest.approx(4 * 0.04)


class TestFitting:
    def test_recovers_single_parameter(self):
        # P(d) = p(a); observe 0.7 -> p(a) must become 0.7.
        poly = make_polynomial(("a",))
        result = fit_probabilities(
            [TrainingExample(poly, 0.7)], {A: 0.2}, [A])
        assert result.probabilities[A] == pytest.approx(0.7, abs=1e-3)
        assert result.final_loss < 1e-6

    def test_recovers_planted_rule_weight(self):
        # Plant r3 = 0.6104 (the Sec.-4.4 answer) and recover it from the
        # observed probability 0.5 of know(Ben,Elena).
        p3 = P3.from_source(ACQUAINTANCE)
        p3.evaluate()
        poly = p3.polynomial_of("know", "Ben", "Elena")
        r3 = rule_literal("r3")
        result = fit_probabilities(
            [TrainingExample(poly, 0.5)], p3.probabilities, [r3])
        assert result.probabilities[r3] == pytest.approx(
            0.5 / 0.8192, abs=1e-3)

    def test_multiple_examples_multiple_parameters(self):
        # Two observations pin down two parameters.
        poly_a = make_polynomial(("a",))
        poly_ab = make_polynomial(("a", "b"))
        examples = [
            TrainingExample(poly_a, 0.8),
            TrainingExample(poly_ab, 0.4),
        ]
        result = fit_probabilities(
            examples, {A: 0.5, B: 0.5}, [A, B], max_iterations=500)
        assert result.probabilities[A] == pytest.approx(0.8, abs=5e-3)
        assert result.probabilities[B] == pytest.approx(0.5, abs=5e-3)

    def test_loss_monotone_decreasing(self):
        poly = make_polynomial(("a", "b"), ("c",))
        probs = random_probabilities(poly, seed=3)
        examples = [TrainingExample(poly, 0.9)]
        result = fit_probabilities(
            examples, probs, sorted(poly.literals()))
        for earlier, later in zip(result.loss_history,
                                  result.loss_history[1:]):
            assert later <= earlier + 1e-12

    def test_respects_clamp(self):
        poly = make_polynomial(("a",))
        result = fit_probabilities(
            [TrainingExample(poly, 1.0)], {A: 0.5}, [A],
            clamp=(0.05, 0.95))
        assert result.probabilities[A] <= 0.95

    def test_fixed_literals_untouched(self):
        poly = make_polynomial(("a", "b"))
        result = fit_probabilities(
            [TrainingExample(poly, 0.4)], {A: 0.5, B: 0.5}, [A])
        assert result.probabilities[B] == 0.5

    def test_unreachable_target_saturates(self):
        # Target 0.9 but the fixed literal caps P at 0.5.
        poly = make_polynomial(("a", "b"))
        result = fit_probabilities(
            [TrainingExample(poly, 0.9)], {A: 0.2, B: 0.5}, [A])
        assert result.probabilities[A] == pytest.approx(1.0, abs=1e-6)

    def test_validation(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            fit_probabilities([], {A: 0.5}, [A])
        with pytest.raises(ValueError):
            fit_probabilities([TrainingExample(poly, 0.5)], {A: 0.5}, [])
        with pytest.raises(ValueError):
            fit_probabilities([TrainingExample(poly, 0.5)], {A: 0.5}, [A],
                              clamp=(0.9, 0.1))

    def test_result_repr(self):
        poly = make_polynomial(("a",))
        result = fit_probabilities(
            [TrainingExample(poly, 0.7)], {A: 0.2}, [A])
        assert isinstance(result, FitResult)
        assert "loss" in repr(result)
