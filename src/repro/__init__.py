"""P3 — Provenance for Probabilistic Logic Programs.

A from-scratch reproduction of the EDBT 2020 paper: a ProbLog-like
probabilistic logic programming engine with provenance capture, plus the
four provenance query types (explanation, derivation, influence,
modification).

Quickstart::

    from repro import P3

    p3 = P3.from_source('''
        r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1!=P2.
        t1 1.0: live("Steve","DC").
        t2 1.0: live("Elena","DC").
    ''')
    p3.evaluate()
    print(p3.probability_of("know", "Steve", "Elena"))   # 0.8
    print(p3.explain("know", "Steve", "Elena").to_text())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from .core import (
    GoalDirectedResult,
    NotEvaluatedError,
    P3,
    P3Config,
    P3Error,
    UnknownLiteralError,
    UnknownTupleError,
    goal_directed_query,
)
from .datalog import Fact, ParseError, Program, Rule, parse_program
from .exec import BatchResult, QueryExecutor, QuerySpec
from .provenance import (
    Literal,
    Monomial,
    Polynomial,
    ProvenanceGraph,
    rule_literal,
    tuple_literal,
)
from .queries import (
    Explanation,
    InfluenceReport,
    ModificationPlan,
    QueryResult,
    SufficientProvenance,
)

__version__ = "0.1.0"

__all__ = [
    "BatchResult",
    "Explanation",
    "Fact",
    "GoalDirectedResult",
    "InfluenceReport",
    "Literal",
    "ModificationPlan",
    "Monomial",
    "NotEvaluatedError",
    "P3",
    "P3Config",
    "P3Error",
    "ParseError",
    "Polynomial",
    "Program",
    "ProvenanceGraph",
    "QueryExecutor",
    "QueryResult",
    "QuerySpec",
    "Rule",
    "SufficientProvenance",
    "UnknownLiteralError",
    "UnknownTupleError",
    "goal_directed_query",
    "parse_program",
    "rule_literal",
    "tuple_literal",
    "__version__",
]
