"""Telemetry test fixtures: every test leaves the runtime disabled."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """The global runtime must never leak between tests."""
    yield
    telemetry.disable()


@pytest.fixture()
def enabled():
    """A fresh enabled runtime (ring buffer only)."""
    return telemetry.configure(telemetry.TelemetryConfig())
