"""Unit tests for polynomial extraction and cycle removal."""

import pytest

from repro.datalog.engine import Engine
from repro.datalog.parser import parse_program
from repro.inference.exact import exact_probability
from repro.provenance.extraction import (
    ExtractionError,
    extract_polynomial,
    extract_unrolled,
)
from repro.provenance.graph import GraphBuilder, register_program
from repro.provenance.polynomial import (
    Polynomial,
    rule_literal,
    tuple_literal,
)


def build(source):
    program = parse_program(source)
    builder = GraphBuilder()
    register_program(builder.graph, program)
    Engine(program, recorder=builder).run()
    return builder.graph


class TestAcyclicExtraction:
    def test_single_derivation(self):
        graph = build("""
            t1 0.5: p(1).
            r1 0.8: d(X) :- p(X).
        """)
        poly = extract_polynomial(graph, "d(1)")
        assert poly == Polynomial.of([rule_literal("r1"),
                                      tuple_literal("p(1)")])

    def test_alternative_derivations(self):
        graph = build("""
            t1 0.5: p(1).
            t2 0.5: q(1).
            r1 1.0: d(X) :- p(X).
            r2 1.0: d(X) :- q(X).
        """)
        poly = extract_polynomial(graph, "d(1)")
        assert len(poly) == 2

    def test_conjunction(self):
        graph = build("""
            t1 0.5: p(1).
            t2 0.5: q(1).
            r1 1.0: d(X) :- p(X), q(X).
        """)
        poly = extract_polynomial(graph, "d(1)")
        [monomial] = list(poly)
        assert len(monomial) == 3  # r1, p(1), q(1)

    def test_nested_derived_tuples_expand(self):
        graph = build("""
            t1 0.5: p(1).
            r1 1.0: mid(X) :- p(X).
            r2 1.0: top(X) :- mid(X).
        """)
        poly = extract_polynomial(graph, "top(1)")
        literals = poly.literals()
        assert tuple_literal("p(1)") in literals
        assert tuple_literal("mid(1)") not in literals

    def test_base_tuple_extraction(self):
        graph = build("t1 0.5: p(1).")
        assert extract_polynomial(graph, "p(1)") == Polynomial.of(
            [tuple_literal("p(1)")])

    def test_unknown_tuple_raises(self):
        graph = build("t1 0.5: p(1).")
        with pytest.raises(KeyError):
            extract_polynomial(graph, "missing(1)")

    def test_underivable_tuple_is_zero(self):
        # A tuple key present only as rule input that is not base: cannot
        # happen from real evaluation, so check via a constructed graph.
        from repro.provenance.graph import ProvenanceGraph, RuleExecution
        graph = ProvenanceGraph()
        graph.add_execution(RuleExecution("r1", "d(1)", ("ghost(1)",), 1.0))
        assert extract_polynomial(graph, "d(1)").is_zero

    def test_rule_literal_shared_across_executions(self):
        # Both firings of r1 must map to the SAME rule literal (ProbLog
        # semantics: the clause is one random variable).
        graph = build("""
            t1 0.5: p(1).
            t2 0.5: p(2).
            r1 1.0: d(X) :- p(X).
            r2 1.0: both(X,Y) :- d(X), d(Y), X!=Y.
        """)
        poly = extract_polynomial(graph, "both(1,2)")
        assert poly.rule_literals() == frozenset(
            {rule_literal("r1"), rule_literal("r2")})


CYCLIC = """
t1 0.9: trust(1,2).
t2 0.8: trust(2,1).
t3 0.7: trust(2,3).
r1 1.0: tp(X,Y) :- trust(X,Y).
r2 1.0: tp(X,Z) :- trust(X,Y), tp(Y,Z).
"""


class TestCyclicExtraction:
    def test_terminates_and_contains_only_base_and_rule_literals(self):
        graph = build(CYCLIC)
        poly = extract_polynomial(graph, "tp(1,3)")
        for literal in poly.literals():
            assert literal.is_rule or literal.key.startswith("trust(")

    def test_cycle_free_derivations_only(self):
        graph = build(CYCLIC)
        poly = extract_polynomial(graph, "tp(1,3)")
        # Only derivation: trust(1,2) then trust(2,3); the 1->2->1->2->3
        # path revisits tp and must be absent.
        assert len(poly) == 1

    def test_unrolled_equals_cycle_free_probability(self):
        graph = build(CYCLIC)
        probs = graph.probability_map()
        baseline = exact_probability(
            extract_polynomial(graph, "tp(1,1)"), probs)
        for rounds in (1, 2):
            unrolled = extract_unrolled(graph, "tp(1,1)", rounds)
            assert exact_probability(unrolled, probs) == pytest.approx(
                baseline)

    def test_unrolled_rejects_negative_rounds(self):
        graph = build(CYCLIC)
        with pytest.raises(ValueError):
            extract_unrolled(graph, "tp(1,1)", -1)

    def test_base_and_derived_tuple_keeps_base_literal(self):
        # know("Ben","Steve") is base and re-derivable through a cycle; its
        # polynomial must include the base literal even when blocked.
        from repro.data import ACQUAINTANCE
        graph = build(ACQUAINTANCE)
        poly = extract_polynomial(graph, 'know("Ben","Steve")')
        assert tuple_literal('know("Ben","Steve")') in poly.literals()
        # Cycle-free: the base literal alone absorbs everything else.
        assert poly == Polynomial.of([tuple_literal('know("Ben","Steve")')])


class TestHopLimit:
    CHAIN = """
    t1 0.5: edge(1,2).
    t2 0.5: edge(2,3).
    t3 0.5: edge(3,4).
    r1 1.0: path(X,Y) :- edge(X,Y).
    r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
    """

    def test_unbounded_reaches_deep(self):
        graph = build(self.CHAIN)
        poly = extract_polynomial(graph, "path(1,4)")
        assert not poly.is_zero

    def test_tight_limit_blocks_deep_derivations(self):
        graph = build(self.CHAIN)
        poly = extract_polynomial(graph, "path(1,4)", hop_limit=2)
        assert poly.is_zero

    def test_limit_exactly_sufficient(self):
        graph = build(self.CHAIN)
        # path(1,4) needs 3 nested derived expansions.
        poly = extract_polynomial(graph, "path(1,4)", hop_limit=3)
        assert not poly.is_zero

    def test_limit_prunes_alternatives(self):
        graph = build("""
            t1 0.5: edge(1,2).
            t2 0.5: edge(2,3).
            t3 0.5: direct(1,3).
            r1 1.0: path(X,Y) :- edge(X,Y).
            r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
            r3 1.0: path(X,Y) :- direct(X,Y).
        """)
        full = extract_polynomial(graph, "path(1,3)")
        limited = extract_polynomial(graph, "path(1,3)", hop_limit=1)
        assert len(full) == 2
        assert len(limited) == 1  # only the direct derivation survives


class TestBudget:
    def test_max_monomials_enforced(self):
        source_lines = []
        for index in range(8):
            source_lines.append("p%d 0.5: p(%d)." % (index + 1, index))
            source_lines.append("q%d 1.0: q(%d)." % (index + 1, index))
        source_lines.append("r1 1.0: d(X) :- p(X), q(X).")
        source_lines.append("r2 1.0: any(1) :- d(X).")
        graph = build("\n".join(source_lines))
        with pytest.raises(ExtractionError):
            extract_polynomial(graph, "any(1)", max_monomials=3)

    def test_budget_not_triggered_when_large_enough(self):
        graph = build("""
            t1 0.5: p(1).
            r1 1.0: d(X) :- p(X).
        """)
        poly = extract_polynomial(graph, "d(1)", max_monomials=10)
        assert len(poly) == 1


class TestMemoisation:
    def test_shared_subtuple_extracted_consistently(self):
        # Diamond: top needs mid1 and mid2, both of which need bottom.
        graph = build("""
            t1 0.5: bottom(1).
            r1 1.0: mid1(X) :- bottom(X).
            r2 1.0: mid2(X) :- bottom(X).
            r3 1.0: top(X) :- mid1(X), mid2(X).
        """)
        poly = extract_polynomial(graph, "top(1)")
        [monomial] = list(poly)
        # bottom(1) appears once (idempotent conjunction).
        assert tuple_literal("bottom(1)") in monomial.literals
        assert len(monomial) == 4  # r1 r2 r3 bottom


class TestExtractMany:
    def test_matches_individual_extraction(self):
        graph = build(CYCLIC)
        roots = sorted(key for key in graph.tuple_keys()
                       if key.startswith("tp("))
        from repro.provenance.extraction import extract_many
        batch = extract_many(graph, roots)
        for key in roots:
            assert batch[key] == extract_polynomial(graph, key)

    def test_hop_limit_respected(self):
        graph = build(TestHopLimit.CHAIN)
        from repro.provenance.extraction import extract_many
        batch = extract_many(graph, ["path(1,4)"], hop_limit=2)
        assert batch["path(1,4)"].is_zero

    def test_unknown_root_raises(self):
        graph = build(CYCLIC)
        from repro.provenance.extraction import extract_many
        with pytest.raises(KeyError):
            extract_many(graph, ["ghost(1)"])

    def test_shared_memo_is_faster_not_wrong(self):
        # On the trust fragment, batch extraction over every trustPath
        # tuple must agree with per-tuple extraction.
        from repro.data import paper_fragment
        from repro.provenance.extraction import extract_many
        program = paper_fragment().to_program()
        from repro.datalog.engine import Engine
        from repro.provenance.graph import GraphBuilder, register_program
        builder = GraphBuilder()
        register_program(builder.graph, program)
        Engine(program, recorder=builder).run()
        graph = builder.graph
        roots = sorted(key for key in graph.tuple_keys()
                       if key.startswith("trustPath("))
        batch = extract_many(graph, roots, hop_limit=6)
        for key in roots:
            assert batch[key] == extract_polynomial(graph, key, hop_limit=6)
