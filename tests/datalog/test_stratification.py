"""Unit tests for stratification analysis and stratified negation."""

import pytest

from repro.datalog.engine import evaluate
from repro.datalog.parser import parse_clause, parse_program
from repro.datalog.stratification import (
    StratificationError,
    check_negation_determinism,
    dependency_edges,
    deterministic_relations,
    rule_strata,
    stratify,
    support_closure,
    validate_program,
)


def derived(result, relation):
    return set(map(str, result.database.atoms(relation)))


class TestParserNegation:
    def test_not_keyword(self):
        rule = parse_clause("r1 1.0: q(X) :- p(X), not s(X).")
        assert len(rule.negations) == 1
        assert rule.negations[0].relation == "s"

    def test_prolog_naf_operator(self):
        rule = parse_clause("r1 1.0: q(X) :- p(X), \\+ s(X).")
        assert len(rule.negations) == 1

    def test_not_as_relation_name_still_parses(self):
        # 'not' immediately followed by '(' is a relation named not.
        rule = parse_clause("r1 1.0: q(X) :- not(X).")
        assert rule.body[0].relation == "not"
        assert not rule.negations

    def test_roundtrip(self):
        rule = parse_clause("r1 1.0: q(X) :- p(X), not s(X).")
        assert str(parse_clause(str(rule))) == str(rule)

    def test_unsafe_negation_rejected(self):
        with pytest.raises(Exception):
            parse_clause("r1 1.0: q(X) :- p(X), not s(Y).")


class TestStratify:
    def test_negation_free_single_stratum(self):
        program = parse_program("""
            p(1).
            r1 1.0: q(X) :- p(X).
            r2 1.0: s(X) :- q(X).
        """)
        strata = stratify(program)
        assert strata["p"] == strata["q"] == strata["s"] == 0

    def test_negation_bumps_stratum(self):
        program = parse_program("""
            p(1). q(1).
            r1 1.0: a(X) :- p(X), not q(X).
            r2 1.0: b(X) :- a(X).
        """)
        strata = stratify(program)
        assert strata["q"] == 0
        assert strata["a"] == 1
        assert strata["b"] == 1

    def test_chained_negation(self):
        program = parse_program("""
            p(1).
            r1 1.0: a(X) :- p(X), not b(X).
            r2 1.0: b(X) :- p(X), not c(X).
            r3 1.0: c(X) :- p(X).
        """)
        strata = stratify(program)
        assert strata["c"] < strata["b"] < strata["a"]

    def test_unstratifiable_rejected(self):
        program = parse_program("""
            s(1).
            r1 1.0: a(X) :- s(X), not b(X).
            r2 1.0: b(X) :- s(X), not a(X).
        """)
        with pytest.raises(StratificationError):
            stratify(program)

    def test_negation_inside_recursion_rejected(self):
        program = parse_program("""
            e(1,2).
            r1 1.0: p(X,Y) :- e(X,Y).
            r2 1.0: p(X,Y) :- e(X,Z), p(Z,Y), not p(Y,X).
        """)
        with pytest.raises(StratificationError):
            stratify(program)

    def test_dependency_edges_include_negative(self):
        program = parse_program("""
            p(1).
            r1 1.0: a(X) :- p(X), not q(X).
        """)
        assert ("a", "q", True) in dependency_edges(program)
        assert ("a", "p", False) in dependency_edges(program)

    def test_rule_strata_grouping(self):
        program = parse_program("""
            p(1).
            r1 1.0: a(X) :- p(X).
            r2 1.0: b(X) :- p(X), not a(X).
        """)
        groups = rule_strata(program)
        assert [r.label for r in groups[0]] == ["r1"]
        assert [r.label for r in groups[1]] == ["r2"]


class TestDeterminism:
    def test_probabilistic_fact_breaks_determinism(self):
        program = parse_program("t1 0.5: p(1). q(1).")
        deterministic = deterministic_relations(program)
        assert "p" not in deterministic
        assert "q" in deterministic

    def test_probabilistic_rule_propagates(self):
        program = parse_program("""
            q(1).
            r1 0.5: a(X) :- q(X).
            r2 1.0: b(X) :- a(X).
        """)
        deterministic = deterministic_relations(program)
        assert "a" not in deterministic
        assert "b" not in deterministic
        assert "q" in deterministic

    def test_support_closure(self):
        program = parse_program("""
            q(1).
            r1 1.0: a(X) :- q(X).
            r2 1.0: b(X) :- a(X).
        """)
        assert support_closure(program, "b") == {"b", "a", "q"}

    def test_negating_probabilistic_relation_rejected(self):
        program = parse_program("""
            t1 0.5: p(1).
            q(1).
            r1 1.0: bad(X) :- q(X), not p(X).
        """)
        with pytest.raises(StratificationError):
            check_negation_determinism(program)

    def test_negating_deterministic_relation_allowed(self):
        program = parse_program("""
            p(1). q(1). q(2).
            r1 0.7: ok(X) :- q(X), not p(X).
        """)
        validate_program(program)  # must not raise


class TestStratifiedEvaluation:
    def test_set_difference(self):
        result = evaluate(parse_program("""
            all(1). all(2). all(3).
            some(2).
            r1 1.0: rest(X) :- all(X), not some(X).
        """))
        assert derived(result, "rest") == {"rest(1)", "rest(3)"}

    def test_unreachable_pairs(self):
        result = evaluate(parse_program("""
            node(1). node(2). node(3).
            edge(1,2). edge(2,3).
            r1 1.0: reach(X,Y) :- edge(X,Y).
            r2 1.0: reach(X,Z) :- edge(X,Y), reach(Y,Z).
            r3 1.0: cut(X,Y) :- node(X), node(Y), not reach(X,Y), X != Y.
        """))
        assert "cut(1,2)" not in derived(result, "cut")
        assert "cut(1,3)" not in derived(result, "cut")
        assert "cut(3,1)" in derived(result, "cut")

    def test_negation_with_probabilistic_upper_stratum(self):
        # The negated relation is deterministic; the rule using negation
        # may itself be probabilistic.
        result = evaluate(parse_program("""
            person(1). person(2).
            banned(2).
            r1 0.6: eligible(X) :- person(X), not banned(X).
        """))
        assert derived(result, "eligible") == {"eligible(1)"}

    def test_provenance_recorded_for_negation_rules(self):
        from repro.provenance import GraphBuilder, register_program
        from repro.datalog.engine import Engine
        from repro.provenance import extract_polynomial
        program = parse_program("""
            person(1).
            banned(2).
            r1 0.6: eligible(X) :- person(X), not banned(X).
        """)
        builder = GraphBuilder()
        register_program(builder.graph, program)
        Engine(program, recorder=builder).run()
        poly = extract_polynomial(builder.graph, "eligible(1)")
        # Negated subgoals contribute nothing to the polynomial.
        keys = {lit.key for lit in poly.literals()}
        assert keys == {"r1", "person(1)"}

    def test_three_strata_pipeline(self):
        result = evaluate(parse_program("""
            item(1). item(2). item(3).
            flagged(1).
            r1 1.0: clean(X) :- item(X), not flagged(X).
            r2 1.0: promoted(X) :- clean(X), not flagged(X).
            r3 1.0: rejected(X) :- item(X), not clean(X).
        """))
        assert derived(result, "clean") == {"clean(2)", "clean(3)"}
        assert derived(result, "promoted") == {"promoted(2)", "promoted(3)"}
        assert derived(result, "rejected") == {"rejected(1)"}

    def test_recursion_below_negation(self):
        result = evaluate(parse_program("""
            edge(1,2). edge(2,3). node(1). node(2). node(3). node(4).
            r1 1.0: reach(X,Y) :- edge(X,Y).
            r2 1.0: reach(X,Z) :- edge(X,Y), reach(Y,Z).
            r3 1.0: isolated(X) :- node(X), not reach(1,X), X != 1.
        """))
        assert derived(result, "isolated") == {"isolated(4)"}

    def test_unstratifiable_program_fails_at_engine(self):
        with pytest.raises(StratificationError):
            evaluate(parse_program("""
                s(1).
                r1 1.0: a(X) :- s(X), not b(X).
                r2 1.0: b(X) :- s(X), not a(X).
            """))
