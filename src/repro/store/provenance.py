"""The append-only SQLite provenance store behind the in-memory graph.

:class:`ProvenanceStore` persists everything a
:class:`~repro.core.system.P3` derives — tuple vertices, rule firings,
extracted polynomials — as normalized rows keyed by the epoch they first
appeared in.  Three flows use it:

- **Snapshot**: attach a store to an evaluated system
  (``p3.attach_store(store)`` or ``p3 snapshot``) and the current graph
  lands as one committed epoch batch.
- **Incremental append**: while attached, every ``add_facts`` delta is
  synced as a *new* epoch batch — the store is a chain-of-custody log,
  never rewritten in place.
- **Warm-start**: :meth:`open_system` (via ``P3.from_store``) rebuilds
  the graph as of any committed epoch and hands back a system that
  answers queries without re-running fixpoint evaluation.

Durability: each sync writes its epoch row with ``committed=0``, inserts
the batch, then flips the flag — all in one transaction.  Opening a
store deletes the rows of any epoch whose flag never flipped, so a crash
mid-append reopens to the last complete epoch.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..provenance.graph import ProvenanceGraph, RuleExecution
from ..provenance.polynomial import Literal, Monomial, Polynomial
from .schema import (
    COMPATIBLE_STORE_VERSIONS,
    SCHEMA,
    STORE_FORMAT_VERSION,
    StoreCrashError,
    StoreError,
    StoreVersionError,
)


class ProvenanceStore:
    """One SQLite-backed, append-only provenance store.

    Parameters
    ----------
    path:
        The store file.  ``":memory:"`` works for tests.
    create:
        Create (and initialise) the file when it does not exist.  With
        ``create=False`` a missing file raises :class:`StoreError` —
        warm-start callers want "no such store", not a silently created
        empty one.

    The store is safe to share across threads: SQLite's
    ``check_same_thread`` guard is disabled and every access holds one
    internal lock (service tenants mutate from worker threads).
    """

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = os.fspath(path)
        if (not create and self.path != ":memory:"
                and not os.path.exists(self.path)):
            raise StoreError("No provenance store at %s" % self.path)
        self._lock = threading.RLock()
        #: Test hook: when True, the next sync commits its row batch but
        #: raises before the epoch's commit marker lands — the exact torn
        #: state a crash between batch and marker would leave on disk.
        self.fail_before_commit = False
        self._connection = sqlite3.connect(
            self.path, check_same_thread=False)
        self._connection.execute("PRAGMA foreign_keys = ON")
        try:
            self._initialise()
        except BaseException:
            self._connection.close()
            raise

    # -- lifecycle ---------------------------------------------------------------

    def _initialise(self) -> None:
        with self._lock:
            self._connection.executescript(SCHEMA)
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'store_format'"
            ).fetchone()
            if row is None:
                self._connection.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("store_format", str(STORE_FORMAT_VERSION)))
                self._connection.commit()
            else:
                try:
                    found: object = int(row[0])
                except ValueError:
                    found = row[0]
                if found not in COMPATIBLE_STORE_VERSIONS:
                    raise StoreVersionError(self.path, found)
            self._recover()

    def _recover(self) -> None:
        """Delete the rows of epochs whose commit marker never landed."""
        torn = [row[0] for row in self._connection.execute(
            "SELECT epoch FROM epochs WHERE committed = 0")]
        if not torn:
            return
        marks = ",".join("?" * len(torn))
        cascade_roots = (
            # firing_body / monomials / monomial_literals cascade off
            # these via ON DELETE CASCADE.
            "DELETE FROM polynomials WHERE epoch IN (%s)" % marks,
            "DELETE FROM firings WHERE epoch IN (%s)" % marks,
            "DELETE FROM tuples WHERE epoch IN (%s)" % marks,
            "DELETE FROM rules WHERE epoch IN (%s)" % marks,
            "DELETE FROM epochs WHERE epoch IN (%s)" % marks,
        )
        for statement in cascade_roots:
            self._connection.execute(statement, torn)
        self._connection.commit()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- meta --------------------------------------------------------------------

    def _meta(self, key: str) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value))

    # -- epochs ------------------------------------------------------------------

    def epochs(self) -> List[Dict[str, int]]:
        """The committed epoch spine, oldest first."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT epoch, tuples_added, rules_added, firings_added "
                "FROM epochs WHERE committed = 1 ORDER BY epoch").fetchall()
        return [
            {"epoch": epoch, "tuples": tuples, "rules": rules,
             "firings": firings}
            for epoch, tuples, rules, firings in rows
        ]

    def last_epoch(self) -> int:
        """The newest committed epoch; raises on an empty store."""
        with self._lock:
            row = self._connection.execute(
                "SELECT MAX(epoch) FROM epochs WHERE committed = 1"
            ).fetchone()
        if row is None or row[0] is None:
            raise StoreError(
                "Store %s has no committed epochs (snapshot one first)"
                % self.path)
        return int(row[0])

    def _resolve_epoch(self, epoch: Optional[int]) -> int:
        last = self.last_epoch()
        if epoch is None:
            return last
        first = int(self._connection.execute(
            "SELECT MIN(epoch) FROM epochs WHERE committed = 1"
        ).fetchone()[0])
        if not first <= epoch <= last:
            raise StoreError(
                "Epoch %d is outside the store's committed range [%d, %d]"
                % (epoch, first, last))
        return int(epoch)

    # -- snapshot / incremental append -------------------------------------------

    def sync(self, system: Any) -> int:
        """Append everything ``system``'s graph knows that this store
        does not yet hold, as one epoch batch.

        Called by :meth:`P3.attach_store` (initial snapshot) and after
        every ``add_facts`` delta (incremental append).  Appending is
        diff-based, so it is idempotent: a re-sync with nothing new
        writes nothing.  Returns the number of new rows appended.
        """
        graph = system.graph
        epoch = int(system.epoch)
        with self._lock:
            last = self._connection.execute(
                "SELECT MAX(epoch) FROM epochs WHERE committed = 1"
            ).fetchone()[0]
            if last is not None and epoch < int(last):
                raise StoreError(
                    "Cannot append epoch %d behind the store head %d: "
                    "the chain of custody is append-only"
                    % (epoch, int(last)))
            try:
                appended = self._append_batch(graph, epoch, system)
                if self.fail_before_commit and appended:
                    # Persist the batch WITHOUT its commit marker, then
                    # die: simulates a crash between the two.
                    self._connection.commit()
                    raise StoreCrashError(
                        "injected crash before epoch %d commit marker"
                        % epoch)
                self._connection.commit()
            except StoreCrashError:
                raise  # the torn batch must stay on disk
            except BaseException:
                self._connection.rollback()
                raise
            return appended

    def _append_batch(self, graph: ProvenanceGraph, epoch: int,
                      system: Any) -> int:
        connection = self._connection
        if self._meta("program_source") is None:
            self._set_meta("program_source", str(system.program))
            self._set_meta("base_epoch", str(epoch))

        # The epoch row anchors the batch's foreign keys, so it goes in
        # first — uncommitted; the marker flips only after the batch.
        fresh_epoch_row = connection.execute(
            "SELECT 1 FROM epochs WHERE epoch = ?",
            (epoch,)).fetchone() is None
        if fresh_epoch_row:
            connection.execute(
                "INSERT INTO epochs (epoch, committed) VALUES (?, 0)",
                (epoch,))

        tuple_ids: Dict[str, int] = dict(connection.execute(
            "SELECT key, id FROM tuples"))
        rule_ids: Dict[str, int] = dict(connection.execute(
            "SELECT label, id FROM rules"))
        known_execs = {row[0] for row in connection.execute(
            "SELECT exec_id FROM firings")}

        new_tuples = new_rules = new_firings = 0
        for key in sorted(graph.tuple_keys()):
            if key in tuple_ids:
                continue
            is_base = graph.is_base(key)
            cursor = connection.execute(
                "INSERT INTO tuples (key, is_base, probability, label, "
                "epoch) VALUES (?, ?, ?, ?, ?)",
                (key, int(is_base),
                 graph.base_probability(key) if is_base else None,
                 graph.base_label(key) if is_base else None,
                 epoch))
            tuple_ids[key] = cursor.lastrowid
            new_tuples += 1
        for label, probability in sorted(graph.rules().items()):
            if label in rule_ids:
                continue
            cursor = connection.execute(
                "INSERT INTO rules (label, probability, epoch) "
                "VALUES (?, ?, ?)", (label, probability, epoch))
            rule_ids[label] = cursor.lastrowid
            new_rules += 1
        for execution in sorted(graph.executions(),
                                key=lambda entry: entry.exec_id):
            if execution.exec_id in known_execs:
                continue
            cursor = connection.execute(
                "INSERT INTO firings (exec_id, rule_id, head_id, "
                "probability, epoch) VALUES (?, ?, ?, ?, ?)",
                (execution.exec_id, rule_ids[execution.rule_label],
                 tuple_ids[execution.head], execution.probability, epoch))
            firing_id = cursor.lastrowid
            connection.executemany(
                "INSERT INTO firing_body (firing_id, position, tuple_id) "
                "VALUES (?, ?, ?)",
                [(firing_id, position, tuple_ids[body_key])
                 for position, body_key in enumerate(execution.body)])
            new_firings += 1

        appended = new_tuples + new_rules + new_firings
        if fresh_epoch_row and appended == 0 and self._has_committed_epochs():
            # Nothing new: keep the spine free of empty epoch rows.
            connection.execute(
                "DELETE FROM epochs WHERE epoch = ?", (epoch,))
            return 0
        if appended:
            connection.execute(
                "UPDATE epochs SET tuples_added = tuples_added + ?, "
                "rules_added = rules_added + ?, "
                "firings_added = firings_added + ? WHERE epoch = ?",
                (new_tuples, new_rules, new_firings, epoch))
        if not self.fail_before_commit:
            connection.execute(
                "UPDATE epochs SET committed = 1 WHERE epoch = ?", (epoch,))
        return appended

    def _has_committed_epochs(self) -> bool:
        return self._connection.execute(
            "SELECT 1 FROM epochs WHERE committed = 1 LIMIT 1"
        ).fetchone() is not None

    # -- warm-start loads --------------------------------------------------------

    def load_graph(self, epoch: Optional[int] = None) -> ProvenanceGraph:
        """Rebuild the provenance graph as of a committed epoch
        (default: the newest)."""
        with self._lock:
            as_of = self._resolve_epoch(epoch)
            graph = ProvenanceGraph()
            for key, probability, label in self._connection.execute(
                    "SELECT key, probability, label FROM tuples "
                    "WHERE is_base = 1 AND epoch <= ? ORDER BY key",
                    (as_of,)):
                graph.add_base_tuple(key, probability, label)
            for label, probability in self._connection.execute(
                    "SELECT label, probability FROM rules "
                    "WHERE epoch <= ? ORDER BY label", (as_of,)):
                graph.add_rule(label, probability)
            for firing_id, rule_label, head, probability in (
                    self._connection.execute(
                        "SELECT f.id, r.label, t.key, f.probability "
                        "FROM firings f "
                        "JOIN rules r ON r.id = f.rule_id "
                        "JOIN tuples t ON t.id = f.head_id "
                        "WHERE f.epoch <= ? ORDER BY f.exec_id",
                        (as_of,)).fetchall()):
                body = tuple(key for (key,) in self._connection.execute(
                    "SELECT t.key FROM firing_body b "
                    "JOIN tuples t ON t.id = b.tuple_id "
                    "WHERE b.firing_id = ? ORDER BY b.position",
                    (firing_id,)))
                graph.add_execution(RuleExecution(
                    rule_label, head, body, probability))
        return graph

    def load_program(self, epoch: Optional[int] = None):
        """Rebuild the program as of a committed epoch.

        The program source captured at the first snapshot is re-parsed,
        then base facts that arrived in later epochs (``add_facts``
        appends) are grafted back on from their tuple rows.
        """
        from ..datalog.ast import Fact
        from ..datalog.parser import parse_atom, parse_program
        with self._lock:
            as_of = self._resolve_epoch(epoch)
            source = self._meta("program_source")
            if source is None:
                raise StoreError(
                    "Store %s has no program snapshot" % self.path)
            base_epoch = int(self._meta("base_epoch") or 0)
            program = parse_program(source)
            known = {str(fact.atom) for fact in program.facts}
            rows = self._connection.execute(
                "SELECT key, probability, label FROM tuples "
                "WHERE is_base = 1 AND epoch > ? AND epoch <= ? "
                "ORDER BY epoch, id", (base_epoch, as_of)).fetchall()
        for key, probability, label in rows:
            if key in known:
                continue
            program.add(Fact(parse_atom(key), probability, label))
        return program

    def open_system(self, system_cls: Any,
                    config: Optional[Any] = None,
                    epoch: Optional[int] = None) -> Any:
        """Warm-start a ``system_cls`` (:class:`~repro.core.system.P3`)
        from the store, as of ``epoch`` (default: newest committed).

        The restored epoch is threaded into the system, so the
        executor's epoch-tagged caches — including any polynomials
        persisted at that epoch, which are primed straight into the
        polynomial LRU — carry the store's epoch, not 0.
        """
        with self._lock:
            as_of = self._resolve_epoch(epoch)
        program = self.load_program(as_of)
        graph = self.load_graph(as_of)
        system = system_cls.warm_start(
            program, graph, graph.probability_map(), epoch=as_of,
            config=config)
        polynomials = self.load_polynomials(as_of)
        if polynomials:
            executor = system.executor()
            for (root, hop_limit) in sorted(
                    polynomials, key=lambda item: (item[0], repr(item[1]))):
                executor.prime_polynomial(
                    root, hop_limit, polynomials[(root, hop_limit)])
        return system

    # -- persisted polynomials ---------------------------------------------------

    def save_polynomial(self, key: str, hop_limit: Optional[int],
                        polynomial: Polynomial, epoch: int) -> None:
        """Persist one extracted polynomial under ``epoch``.

        Normalized like the session format: monomials as ordered literal
        rows.  Saving the same (root, hop, epoch) again replaces it.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT id FROM tuples WHERE key = ?", (key,)).fetchone()
            if row is None:
                raise StoreError(
                    "Cannot persist a polynomial for unknown tuple %r"
                    % key)
            root_id = row[0]
            try:
                self._connection.execute(
                    "DELETE FROM polynomials WHERE root_id = ? AND "
                    "IFNULL(hop_limit, -1) = IFNULL(?, -1) AND epoch = ?",
                    (root_id, hop_limit, epoch))
                cursor = self._connection.execute(
                    "INSERT INTO polynomials (root_id, hop_limit, epoch) "
                    "VALUES (?, ?, ?)", (root_id, hop_limit, epoch))
                polynomial_id = cursor.lastrowid
                monomials = sorted(
                    (tuple(sorted(monomial.literals))
                     for monomial in polynomial.monomials),
                    key=repr)
                for ordinal, literals in enumerate(monomials):
                    cursor = self._connection.execute(
                        "INSERT INTO monomials (polynomial_id, ordinal) "
                        "VALUES (?, ?)", (polynomial_id, ordinal))
                    self._connection.executemany(
                        "INSERT INTO monomial_literals (monomial_id, "
                        "position, kind, key) VALUES (?, ?, ?, ?)",
                        [(cursor.lastrowid, position, literal.kind,
                          literal.key)
                         for position, literal in enumerate(literals)])
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                raise

    def load_polynomials(self, epoch: Optional[int] = None
                         ) -> Dict[Tuple[str, Optional[int]], Polynomial]:
        """Polynomials persisted at exactly ``epoch``.

        Only the requested epoch's polynomials are returned: a
        polynomial captured under an older graph may have fewer
        derivations than the current graph supports, so priming it into
        a newer epoch's cache would serve stale provenance.
        """
        with self._lock:
            as_of = self._resolve_epoch(epoch)
            loaded: Dict[Tuple[str, Optional[int]], Polynomial] = {}
            rows = self._connection.execute(
                "SELECT p.id, t.key, p.hop_limit FROM polynomials p "
                "JOIN tuples t ON t.id = p.root_id WHERE p.epoch = ?",
                (as_of,)).fetchall()
            for polynomial_id, root, hop_limit in rows:
                monomials = []
                for (monomial_id,) in self._connection.execute(
                        "SELECT id FROM monomials WHERE polynomial_id = ? "
                        "ORDER BY ordinal", (polynomial_id,)):
                    literals = [
                        Literal(kind, key)
                        for kind, key in self._connection.execute(
                            "SELECT kind, key FROM monomial_literals "
                            "WHERE monomial_id = ? ORDER BY position",
                            (monomial_id,))
                    ]
                    monomials.append(Monomial(literals))
                loaded[(root, hop_limit)] = Polynomial(monomials)
        return loaded

    def __repr__(self) -> str:
        return "ProvenanceStore(%r)" % self.path
