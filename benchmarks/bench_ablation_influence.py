"""Ablation — influence backends: exact vs sequential MC vs vectorized MC.

DESIGN.md §6: error/time tradeoff for Definition 4.1.  On the Acquaintance
polynomial all three are compared against exact ground truth; the large-
polynomial comparison lives in bench_table8_parallel_influence.
"""

import time

from repro import P3
from repro.data import acquaintance_program
from repro.queries.influence import influence_query

from reporting import record_table

SAMPLES = 20000


def test_ablation_influence_backends(benchmark):
    p3 = P3(acquaintance_program())
    p3.evaluate()
    poly = p3.polynomial_of("know", "Ben", "Elena")
    probs = p3.probabilities

    start = time.perf_counter()
    exact = influence_query(poly, probs, method="exact")
    exact_time = time.perf_counter() - start
    truth = {str(s.literal): s.influence for s in exact}

    rows = [["exact", 0.0, 1000 * exact_time, "r3"]]
    for method in ("mc", "parallel"):
        start = time.perf_counter()
        report = influence_query(poly, probs, method=method,
                                 samples=SAMPLES, seed=2)
        elapsed = time.perf_counter() - start
        worst = max(abs(s.influence - truth[str(s.literal)])
                    for s in report)
        top = str(report.top(1)[0].literal)
        rows.append([method, worst, 1000 * elapsed, top])
        assert worst < 0.02
        assert top == "r3"

    record_table(
        "ablation_influence",
        "Ablation: influence backends on know(Ben,Elena) "
        "(%d literals, %d samples)" % (len(poly.literals()), SAMPLES),
        ["backend", "max abs error", "time (ms)", "top literal"],
        rows,
    )

    benchmark.pedantic(
        influence_query, args=(poly, probs),
        kwargs={"method": "exact"}, rounds=5, iterations=1)
