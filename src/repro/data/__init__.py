"""Workloads: bundled paper programs and synthetic data substrates."""

from .bitcoin_otc import (
    TrustEdge,
    TrustNetwork,
    generate_network,
    paper_fragment,
    rescale_weight,
)
from .programs import (
    ACQUAINTANCE,
    TRUST_RULES,
    VQA_RULES,
    acquaintance_program,
    trust_rules_program,
    vqa_rules_program,
)
from .vqa import (
    DICTIONARY_WORDS,
    FIXED_CHURCH_CROSS_SIMILARITY,
    IMAGE_ID,
    VQAScene,
    fixed_scene,
    modified_scene,
    original_scene,
)

__all__ = [
    "ACQUAINTANCE",
    "DICTIONARY_WORDS",
    "FIXED_CHURCH_CROSS_SIMILARITY",
    "IMAGE_ID",
    "TRUST_RULES",
    "TrustEdge",
    "TrustNetwork",
    "VQAScene",
    "VQA_RULES",
    "acquaintance_program",
    "fixed_scene",
    "generate_network",
    "modified_scene",
    "original_scene",
    "paper_fragment",
    "rescale_weight",
    "trust_rules_program",
    "vqa_rules_program",
]
