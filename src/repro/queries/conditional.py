"""Conditional success probability under evidence.

ProbLog programs are routinely queried *given evidence*: P(q | e₁, ¬e₂, …)
— the probability that ``q`` holds in a possible world conditioned on some
tuples being observed true and others observed false.  With provenance
polynomials in hand this is pure algebra over the same monotone DNFs:

    P(q | E⁺, E⁻) = P(λ_q ∧ ⋀λ_e ∧ ⋀¬λ_f) / P(⋀λ_e ∧ ⋀¬λ_f)

Positive evidence conjoins polynomials (``·``).  Negated *derived* tuples
are not expressible in a monotone DNF, so the negative part is handled by
inclusion–exclusion over evidence subsets:

    P(A ∧ ⋀ᵢ¬Bᵢ) = Σ_{S ⊆ E⁻} (−1)^{|S|} · P(A · Πᵢ∈S Bᵢ)

which costs 2^{|E⁻|} probability evaluations — fine for the handful of
observations typical of debugging sessions, and guarded by a limit.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Sequence

from .. import telemetry
from ..inference.exact import exact_probability
from ..provenance.polynomial import Polynomial, ProbabilityMap

#: Inclusion–exclusion blows up exponentially; refuse past this many
#: negative observations.
MAX_NEGATIVE_EVIDENCE = 16

Evaluator = Callable[[Polynomial, ProbabilityMap], float]


class InconsistentEvidenceError(ValueError):
    """Raised when the evidence itself has probability zero."""


def probability_with_negations(base: Polynomial,
                               negatives: Sequence[Polynomial],
                               probabilities: ProbabilityMap,
                               evaluator: Optional[Evaluator] = None
                               ) -> float:
    """P[base ∧ ⋀¬negativeᵢ] by inclusion–exclusion over the negatives."""
    if evaluator is None:
        evaluator = exact_probability
    if len(negatives) > MAX_NEGATIVE_EVIDENCE:
        raise ValueError(
            "Inclusion-exclusion over %d negative observations exceeds the "
            "limit of %d" % (len(negatives), MAX_NEGATIVE_EVIDENCE))
    total = 0.0
    for size in range(len(negatives) + 1):
        sign = -1.0 if size % 2 else 1.0
        for subset in itertools.combinations(negatives, size):
            joint = base
            for polynomial in subset:
                joint = joint * polynomial
                if joint.is_zero:
                    break
            if joint.is_zero:
                continue
            total += sign * evaluator(joint, probabilities)
    return max(0.0, min(1.0, total))


def conditional_probability(target: Polynomial,
                            probabilities: ProbabilityMap,
                            positive: Sequence[Polynomial] = (),
                            negative: Sequence[Polynomial] = (),
                            evaluator: Optional[Evaluator] = None) -> float:
    """P[target | positive evidence true, negative evidence false].

    All arguments are provenance polynomials over the same literal space.
    Raises :class:`InconsistentEvidenceError` when the evidence has zero
    probability (conditioning is undefined).
    """
    rt = telemetry.runtime()
    if not rt.enabled:
        return _conditional_probability(
            target, probabilities, positive, negative, evaluator)
    with rt.tracer.span("query.conditional",
                        positive=len(positive),
                        negative=len(negative)) as span:
        value = _conditional_probability(
            target, probabilities, positive, negative, evaluator)
        span.set_attribute("value", value)
    return value


def _conditional_probability(target: Polynomial,
                             probabilities: ProbabilityMap,
                             positive: Sequence[Polynomial],
                             negative: Sequence[Polynomial],
                             evaluator: Optional[Evaluator]) -> float:
    if evaluator is None:
        evaluator = exact_probability

    evidence_base = Polynomial.one()
    for polynomial in positive:
        evidence_base = evidence_base * polynomial

    denominator = probability_with_negations(
        evidence_base, list(negative), probabilities, evaluator)
    if denominator <= 0.0:
        raise InconsistentEvidenceError(
            "Evidence has probability zero; conditional probability is "
            "undefined")

    numerator = probability_with_negations(
        target * evidence_base, list(negative), probabilities, evaluator)
    return max(0.0, min(1.0, numerator / denominator))


def evidence_impact(target: Polynomial,
                    probabilities: ProbabilityMap,
                    positive: Sequence[Polynomial] = (),
                    negative: Sequence[Polynomial] = (),
                    evaluator: Optional[Evaluator] = None
                    ) -> Dict[str, float]:
    """Prior, posterior, and their difference — the observation's pull."""
    if evaluator is None:
        evaluator = exact_probability
    prior = evaluator(target, probabilities)
    posterior = conditional_probability(
        target, probabilities, positive, negative, evaluator)
    return {
        "prior": prior,
        "posterior": posterior,
        "delta": posterior - prior,
    }
