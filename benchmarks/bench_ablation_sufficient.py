"""Ablation — sufficient-provenance algorithms: naive vs match/group vs
union-bound vs incremental naive-MC.

DESIGN.md §6: size/time tradeoff.  On the small exact-friendly polynomial
all four run with exact error accounting; on the large one, the two
scalable variants (union-bound and naive-mc) are compared.
"""

import time

from repro import P3
from repro.data import paper_fragment
from repro.inference.parallel_mc import parallel_probability
from repro.queries.derivation import derivation_query

from reporting import record_table
from workloads import query_workload

EPSILON_SMALL = 0.02


def _time_query(poly, probs, epsilon, method, **kwargs):
    start = time.perf_counter()
    result = derivation_query(poly, probs, epsilon, method=method, **kwargs)
    return result, time.perf_counter() - start


def test_ablation_sufficient_small(benchmark):
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    poly = p3.polynomial_of("mutualTrustPath", 1, 6)
    probs = p3.probabilities

    rows = []
    for method in ("naive", "match-group", "union-bound", "naive-mc"):
        result, elapsed = _time_query(poly, probs, EPSILON_SMALL, method)
        rows.append([method, len(result.original), len(result.sufficient),
                     result.error, 1000 * elapsed])
        assert result.error <= EPSILON_SMALL + 0.02  # MC slack for naive-mc

    record_table(
        "ablation_sufficient_small",
        "Ablation: sufficient-provenance algorithms on mutualTrustPath(1,6)"
        " (eps = %.2f)" % EPSILON_SMALL,
        ["method", "monomials", "kept", "measured error", "time (ms)"],
        rows,
    )
    benchmark.pedantic(derivation_query, args=(poly, probs, EPSILON_SMALL),
                       kwargs={"method": "naive"}, rounds=5, iterations=1)


def test_ablation_sufficient_large(benchmark):
    p3, key, poly = query_workload()
    probs = p3.probabilities
    probability = parallel_probability(poly, probs, 20000, seed=1).value
    epsilon = 0.05 * probability

    def mc_evaluator(candidate, candidate_probs):
        return parallel_probability(
            candidate, candidate_probs, 20000, seed=1).value

    rows = []
    results = {}
    for method in ("union-bound", "naive-mc"):
        result, elapsed = _time_query(poly, probs, epsilon, method,
                                      evaluator=mc_evaluator)
        results[method] = result
        rows.append([method, len(result.original), len(result.sufficient),
                     1000 * elapsed])

    record_table(
        "ablation_sufficient_large",
        "Ablation: scalable sufficient-provenance variants on %s "
        "(eps = 5%% of P)" % key,
        ["method", "monomials", "kept", "time (ms)"],
        rows,
    )

    # The incremental MC variant compresses far better than the (sound but
    # conservative) union bound, at comparable cost.
    assert len(results["naive-mc"].sufficient) < \
        len(results["union-bound"].sufficient)

    benchmark.pedantic(derivation_query, args=(poly, probs, epsilon),
                       kwargs={"method": "naive-mc"}, rounds=2, iterations=1)
