"""Backend fallback ladders: declarative chains of inference backends.

A ladder is an ordered list of :class:`FallbackRung` entries — e.g.
``exact → bdd → parallel`` — driven through
:mod:`repro.inference.registry`.  :meth:`FallbackLadder.run` walks the
rungs until one produces a :class:`~repro.inference.registry.BackendReading`:

- a rung whose backend does not support the polynomial, whose circuit
  breaker is open, or whose per-rung timeout already exceeds the
  remaining query deadline is **skipped without being started** (the
  record says why);
- a started rung is retried per its :class:`~repro.resilience.retry.RetryPolicy`
  — but only for transient failures; permanent errors and timeouts fall
  through to the next rung immediately;
- every attempt and skip lands in a :class:`ResilienceRecord`, which
  rides on the final answer so callers (and the serialized
  ``QueryResult``) can see which rung answered, how many attempts it
  took, and whether accuracy was downgraded (exact requested, sampling
  answered).

When every rung is exhausted the ladder raises
:class:`LadderExhaustedError` carrying the record, so even total failure
is diagnosable.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import warnings

from .. import telemetry
from ..core.errors import InferenceError
from .breaker import BreakerBoard, CircuitOpenError
from .retry import RetryPolicy

if False:  # pragma: no cover — type-checking only
    from ..inference.registry import BackendReading
    from ..inference.request import InferenceRequest


def _get_backend(name: str):
    # Imported lazily: provenance extraction consults the ambient budget
    # meter (repro.resilience.budgets), and a module-level registry import
    # here would close the cycle extraction → resilience → ladder →
    # inference → bounded → extraction.
    from ..inference.registry import get_backend
    return get_backend(name)

#: Failure classes a ladder absorbs and converts into fall-through.
#: Anything else (programming errors, unknown tuples) propagates raw.
ABSORBED_CLASSES = (InferenceError, OSError, TimeoutError, ValueError,
                    ZeroDivisionError, MemoryError, NotImplementedError)


class RungTimeoutError(InferenceError, TimeoutError):
    """A single ladder rung exceeded its per-rung timeout.

    A ``TimeoutError``, so :func:`repro.core.errors.is_transient` answers
    False: the time already spent is evidence the backend is too slow for
    this input, and the remaining deadline is better spent on the next
    rung than on a retry.
    """

    def __init__(self, backend: str, timeout: float) -> None:
        super().__init__(
            "Backend %r exceeded its rung timeout of %.3fs"
            % (backend, timeout))
        self.backend = backend
        self.timeout = timeout


class LadderExhaustedError(InferenceError):
    """Every rung of a fallback ladder failed or was skipped.

    Carries the :class:`ResilienceRecord` (``.record``) so callers can
    report exactly what was tried and why each rung did not answer.
    """

    def __init__(self, record: "ResilienceRecord") -> None:
        parts = []
        for entry in record.attempts:
            if entry.get("error"):
                parts.append("%s: %s" % (entry["backend"], entry["error"]))
        for entry in record.skipped:
            parts.append("%s skipped (%s)" % (entry["backend"],
                                              entry["reason"]))
        detail = "; ".join(parts) or "no rungs were eligible"
        super().__init__("All fallback rungs failed: %s" % detail)
        self.record = record


class FallbackRung:
    """One step of a ladder: a backend plus per-rung overrides."""

    __slots__ = ("method", "timeout", "samples", "retry", "isolation")

    def __init__(self, method: str,
                 timeout: Optional[float] = None,
                 samples: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 isolation: Optional[str] = None) -> None:
        if not method:
            raise ValueError("A fallback rung needs a backend name")
        if timeout is not None and timeout <= 0:
            raise ValueError("rung timeout must be positive or None")
        if samples is not None and samples <= 0:
            raise ValueError("rung samples must be positive or None")
        if isolation not in (None, "thread", "process"):
            raise ValueError(
                "rung isolation must be 'thread', 'process', or None, "
                "got %r" % (isolation,))
        self.method = method
        self.timeout = timeout
        self.samples = samples
        self.retry = retry
        self.isolation = isolation

    @classmethod
    def coerce(cls, value: object) -> "FallbackRung":
        """Accept a rung, a backend name, or a ``{"method": ...}`` dict."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(value)
        if isinstance(value, dict):
            unknown = set(value) - {"method", "timeout", "samples", "retry",
                                    "isolation"}
            if unknown:
                raise ValueError(
                    "Unknown fallback rung fields: %s"
                    % ", ".join(sorted(unknown)))
            retry = value.get("retry")
            if isinstance(retry, dict):
                retry = RetryPolicy(**retry)
            return cls(value["method"], timeout=value.get("timeout"),
                       samples=value.get("samples"), retry=retry,
                       isolation=value.get("isolation"))
        raise TypeError("Cannot coerce %r to a FallbackRung" % (value,))

    def to_dict(self) -> dict:
        document: Dict[str, object] = {"method": self.method}
        if self.timeout is not None:
            document["timeout"] = self.timeout
        if self.samples is not None:
            document["samples"] = self.samples
        if self.retry is not None:
            document["retry"] = self.retry.to_dict()
        if self.isolation is not None:
            document["isolation"] = self.isolation
        return document

    def __repr__(self) -> str:
        return "FallbackRung(%r)" % self.method


class ResilienceRecord:
    """What the resilience layer did while answering one query.

    Attached to :class:`~repro.exec.executor.QueryOutcome` (and therefore
    serialized with the batch) whenever a fallback ladder ran.
    """

    __slots__ = ("requested", "answered_by", "attempts", "skipped",
                 "retries", "downgraded", "stderr", "exact")

    def __init__(self, requested: Optional[str] = None) -> None:
        self.requested = requested
        self.answered_by: Optional[str] = None
        self.attempts: List[Dict[str, Any]] = []
        self.skipped: List[Dict[str, Any]] = []
        self.retries = 0
        self.downgraded = False
        self.stderr: Optional[float] = None
        self.exact: Optional[bool] = None

    @property
    def used_fallback(self) -> bool:
        return (self.answered_by is not None
                and self.requested is not None
                and self.answered_by != self.requested)

    def record_skip(self, backend: str, reason: str) -> None:
        self.skipped.append({"backend": backend, "reason": reason})

    def record_attempt(self, backend: str, attempt: int, seconds: float,
                       error: Optional[BaseException] = None) -> None:
        entry: Dict[str, Any] = {
            "backend": backend, "attempt": attempt,
            "seconds": round(seconds, 6),
        }
        if error is not None:
            entry["error"] = "%s: %s" % (type(error).__name__, error)
        self.attempts.append(entry)

    def mark_answer(self, backend: str, reading: BackendReading,
                    requested_exact: bool) -> None:
        self.answered_by = backend
        self.stderr = reading.stderr
        self.exact = reading.exact
        self.downgraded = requested_exact and not reading.exact

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "answered_by": self.answered_by,
            "used_fallback": self.used_fallback,
            "downgraded": self.downgraded,
            "exact": self.exact,
            "stderr": self.stderr,
            "retries": self.retries,
            "attempts": list(self.attempts),
            "skipped": list(self.skipped),
        }

    def __repr__(self) -> str:
        return "ResilienceRecord(requested=%r, answered_by=%r, %d attempts)" \
            % (self.requested, self.answered_by, len(self.attempts))


class FallbackLadder:
    """Walk a chain of backends until one answers.

    Parameters
    ----------
    rungs:
        The chain, top rung first.  Each entry may be a
        :class:`FallbackRung`, a backend name, or a dict.
    retry:
        Default retry policy for rungs without their own.
    breakers:
        A shared :class:`~repro.resilience.breaker.BreakerBoard`; omit to
        run without circuit breaking.
    rng / sleep / clock:
        Injectable randomness (backoff jitter), sleeper, and monotonic
        clock — deterministic tests override all three.
    dispatch:
        Optional process-isolation dispatcher,
        ``dispatch(method, polynomial, probabilities, request, timeout)
        -> BackendReading``.  Rungs whose effective isolation is
        ``"process"`` run through it (wedged workers are SIGKILLed, not
        abandoned); without a dispatcher such rungs fall back to the
        in-thread watchdog.
    default_isolation:
        Isolation for rungs that do not set their own (``"thread"`` or
        ``"process"``).
    """

    def __init__(self, rungs: Sequence[object],
                 retry: Optional[RetryPolicy] = None,
                 breakers: Optional[BreakerBoard] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 dispatch: Optional[Callable[..., "BackendReading"]] = None,
                 default_isolation: str = "thread") -> None:
        self.rungs: Tuple[FallbackRung, ...] = tuple(
            FallbackRung.coerce(rung) for rung in rungs)
        if not self.rungs:
            raise ValueError("A fallback ladder needs at least one rung")
        if default_isolation not in ("thread", "process"):
            raise ValueError(
                "default_isolation must be 'thread' or 'process', got %r"
                % (default_isolation,))
        self.retry = retry if retry is not None else RetryPolicy()
        self.breakers = breakers
        self.dispatch = dispatch
        self.default_isolation = default_isolation
        self._rng = rng
        self._sleep = sleep
        self._clock = clock

    def rungs_for(self, requested: Optional[str]) -> Tuple[FallbackRung, ...]:
        """The chain with ``requested`` promoted to the top rung.

        A requested method already on the ladder is hoisted (keeping its
        configured overrides); an unknown one is prepended with defaults,
        so an explicit ``method=`` always gets first shot.
        """
        if requested is None:
            return self.rungs
        for index, rung in enumerate(self.rungs):
            if rung.method == requested:
                return (rung,) + self.rungs[:index] + self.rungs[index + 1:]
        return (FallbackRung(requested),) + self.rungs

    def run(self, polynomial, probabilities,
            request: "Optional[InferenceRequest]" = None,
            requested: Optional[str] = None,
            deadline: Optional[float] = None,
            samples: Optional[int] = None,
            seed: Optional[int] = None
            ) -> Tuple[BackendReading, ResilienceRecord]:
        """Answer P[λ] through the ladder.

        ``request`` carries the sampling parameters
        (:class:`~repro.inference.request.InferenceRequest`) handed to
        each rung's backend; per-rung ``samples`` overrides are applied
        on top.  The legacy ``samples=`` / ``seed=`` keywords still work
        but emit :class:`DeprecationWarning`.

        ``deadline`` is an *absolute* monotonic-clock instant (matching
        the injectable ``clock``); rungs that cannot fit in the remaining
        time are skipped, and the ladder never sleeps past it.  It stays
        a ladder-level argument — not a request field — because it is
        interpreted against the injectable clock, while
        ``request.deadline`` is interpreted by the sampling kernel
        against the real monotonic clock.

        Returns ``(reading, record)``; raises
        :class:`LadderExhaustedError` when no rung answers.
        """
        from ..inference.registry import _DEFAULT_REQUEST  # lazy: see _get_backend
        if samples is not None or seed is not None:
            warnings.warn(
                "FallbackLadder.run(samples=..., seed=...) is deprecated; "
                "pass request=InferenceRequest(samples=..., seed=...)",
                DeprecationWarning, stacklevel=2)
            base = request if request is not None else _DEFAULT_REQUEST
            changes: Dict[str, Any] = {}
            if samples is not None:
                changes["samples"] = samples
            if seed is not None:
                changes["seed"] = seed
            request = base.replace(**changes)
        elif request is None:
            request = _DEFAULT_REQUEST
        rungs = self.rungs_for(requested)
        record = ResilienceRecord(requested or rungs[0].method)
        requested_exact = self._is_exact(record.requested)
        rt = telemetry.runtime()
        with rt.tracer.span("resilience.ladder",
                            requested=record.requested,
                            rungs=len(rungs)) as span:
            for rung in rungs:
                reading = self._run_rung(
                    rung, polynomial, probabilities, request, deadline,
                    record)
                if reading is not None:
                    record.mark_answer(rung.method, reading, requested_exact)
                    self._note_answer(span, record)
                    return reading, record
            span.set_attribute("exhausted", True)
        raise LadderExhaustedError(record)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _is_exact(method: Optional[str]) -> bool:
        if method is None:
            return False
        try:
            return _get_backend(method).deterministic
        except ValueError:
            return False

    def _remaining(self, deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return deadline - self._clock()

    def _run_rung(self, rung: FallbackRung, polynomial, probabilities,
                  request: "InferenceRequest",
                  deadline: Optional[float],
                  record: ResilienceRecord) -> Optional[BackendReading]:
        """One rung: eligibility checks, then the attempt/retry loop.

        Returns the reading on success, None to fall through to the next
        rung.  Non-absorbed exceptions propagate.
        """
        remaining = self._remaining(deadline)
        if remaining is not None and remaining <= 0:
            record.record_skip(rung.method, "deadline-exhausted")
            return None
        # The critical deadline/fallback interaction: a rung whose own
        # timeout cannot fit in the remaining budget is skipped, not
        # started — starting it would guarantee a wasted partial run.
        if (rung.timeout is not None and remaining is not None
                and rung.timeout > remaining):
            record.record_skip(rung.method, "insufficient-deadline")
            return None
        try:
            backend = _get_backend(rung.method)
        except ValueError:
            record.record_skip(rung.method, "unknown-backend")
            return None
        if not backend.supports(polynomial):
            record.record_skip(rung.method, "unsupported")
            return None

        breaker = (self.breakers.breaker(rung.method)
                   if self.breakers is not None else None)
        retry = rung.retry if rung.retry is not None else self.retry
        rung_request = (request.replace(samples=rung.samples)
                        if rung.samples is not None else request)

        attempt = 0
        while True:
            attempt += 1
            if breaker is not None:
                try:
                    breaker.before_call()
                except CircuitOpenError as refusal:
                    record.record_skip(rung.method, "breaker-open")
                    self._count("p3_resilience_breaker_skips_total",
                                "Rungs skipped because the breaker was open",
                                rung.method)
                    if attempt > 1:
                        # The breaker tripped mid-retry-loop; surface the
                        # refusal in the attempt log too.
                        record.record_attempt(
                            rung.method, attempt, 0.0, error=refusal)
                    return None
            started = self._clock()
            try:
                reading = self._call_with_timeout(
                    backend, rung, polynomial, probabilities,
                    rung_request, deadline)
            except ABSORBED_CLASSES as exc:
                elapsed = self._clock() - started
                record.record_attempt(rung.method, attempt, elapsed,
                                      error=exc)
                if breaker is not None:
                    breaker.record_failure()
                if not retry.should_retry(exc, attempt):
                    return None
                delay = retry.delay(attempt, self._rng)
                remaining = self._remaining(deadline)
                if remaining is not None:
                    if remaining <= 0:
                        record.record_skip(rung.method, "deadline-exhausted")
                        return None
                    delay = min(delay, remaining)
                record.retries += 1
                self._count("p3_resilience_retries_total",
                            "Backend retries, by backend", rung.method)
                if delay > 0:
                    self._sleep(delay)
                continue
            elapsed = self._clock() - started
            record.record_attempt(rung.method, attempt, elapsed)
            if breaker is not None:
                breaker.record_success()
            return reading

    def _call_with_timeout(self, backend, rung: FallbackRung,
                           polynomial, probabilities,
                           request: "InferenceRequest",
                           deadline: Optional[float]) -> BackendReading:
        """Run the backend, bounded by the rung timeout if one is set.

        The per-rung watchdog mirrors the executor's deadline thread: the
        call runs on a daemon thread and is abandoned on timeout (Python
        cannot interrupt it), which is safe because backends are pure
        functions of their inputs.  Rungs whose effective isolation is
        ``"process"`` (and a dispatcher is installed) skip the watchdog
        entirely: the subprocess worker enforces the same relative
        timeout with an actual SIGKILL, so nothing is abandoned.
        """
        timeout = rung.timeout
        remaining = self._remaining(deadline)
        if timeout is None and remaining is not None:
            timeout = remaining
        isolation = rung.isolation or self.default_isolation
        if isolation == "process" and self.dispatch is not None:
            # Relative timeout on purpose: ``deadline`` is read against
            # the injectable clock, which the worker pool cannot see.
            return self.dispatch(rung.method, polynomial, probabilities,
                                 request, timeout)
        if timeout is None:
            return backend.run(polynomial, probabilities, request)

        box: Dict[str, Any] = {}
        done = threading.Event()

        def work() -> None:
            try:
                box["result"] = backend.run(polynomial, probabilities,
                                            request)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=work, name="p3-rung", daemon=True)
        thread.start()
        if not done.wait(timeout):
            raise RungTimeoutError(rung.method, timeout)
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _note_answer(self, span, record: ResilienceRecord) -> None:
        span.set_attribute("answered_by", record.answered_by)
        span.set_attribute("attempts", len(record.attempts))
        if record.used_fallback:
            span.set_attribute("fallback", True)
            self._count("p3_resilience_fallbacks_total",
                        "Queries answered by a fallback rung, by backend",
                        record.answered_by)
        if record.downgraded:
            span.set_attribute("downgraded", True)

    @staticmethod
    def _count(name: str, help_text: str, backend: str) -> None:
        rt = telemetry.runtime()
        if rt.enabled:
            rt.metrics.counter(
                name, help=help_text,
                labelnames=("backend",)).inc(backend=backend)

    def to_dict(self) -> dict:
        return {
            "rungs": [rung.to_dict() for rung in self.rungs],
            "retry": self.retry.to_dict(),
        }

    def __repr__(self) -> str:
        return "FallbackLadder(%s)" % " -> ".join(
            rung.method for rung in self.rungs)
