"""The example scripts must run cleanly end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    return subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=600, check=False)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Query 4 (Modification)" in result.stdout
        assert "new P = 0.50000" in result.stdout

    def test_social_trust(self):
        result = run_example("social_trust.py")
        assert result.returncode == 0, result.stderr
        assert "greedy wins" in result.stdout

    def test_vqa_debugging(self):
        result = run_example("vqa_debugging.py")
        assert result.returncode == 0, result.stderr
        assert "Predicted answer: church (fixed!)" in result.stdout

    def test_what_if_analysis(self):
        result = run_example("what_if_analysis.py")
        assert result.returncode == 0, result.stderr
        assert "Top-3 most probable derivations" in result.stdout
        assert "UNDERIVABLE" in result.stdout

    def test_weight_learning(self):
        result = run_example("weight_learning.py")
        assert result.returncode == 0, result.stderr
        assert "Recovered the hidden parameters." in result.stdout

    def test_provenance_toolbox(self):
        result = run_example("provenance_toolbox.py")
        assert result.returncode == 0, result.stderr
        assert "Why-not provenance" in result.stdout
        assert "reloaded without re-evaluation: P = 0.3549" in result.stdout
