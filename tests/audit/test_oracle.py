"""Unit tests for the differential oracle."""

import pytest

from repro.audit.generator import AuditCase, corpus_cases, generate_cases
from repro.audit.oracle import (
    _mix_seed,
    _sampling_floor,
    audit_case,
    audit_polynomial_case,
    audit_program_case,
    reference_probability,
)
from repro.inference.registry import (
    BackendReading,
    override_backend,
)
from repro.provenance.polynomial import (
    Monomial,
    Polynomial,
    tuple_literal,
)


def _case(groups, probabilities, name="t"):
    poly = Polynomial.from_monomials(
        Monomial(tuple_literal(k) for k in group) for group in groups)
    return AuditCase(name, poly,
                     {tuple_literal(k): v
                      for k, v in probabilities.items()})


class TestSeedMixing:
    def test_distinct_tags_distinct_seeds(self):
        seeds = {_mix_seed(0, "case:%s:%d" % (backend, repeat))
                 for backend in ("mc", "parallel", "karp-luby")
                 for repeat in range(50)}
        assert len(seeds) == 150

    def test_deterministic(self):
        assert _mix_seed(3, "x") == _mix_seed(3, "x")

    def test_non_negative_31_bit(self):
        for seed in (0, 1, 2**31, -5 & 0xFFFFFFFF):
            mixed = _mix_seed(seed, "tag")
            assert 0 <= mixed < 2**31


class TestReference:
    def test_prefers_brute_force(self):
        case = _case([("a", "b")], {"a": 0.5, "b": 0.5})
        assert reference_probability(case).backend == "brute-force"

    def test_falls_back_to_exact_on_large_cases(self):
        wide = [("x%d" % i,) for i in range(25)]
        case = _case(wide, {"x%d" % i: 0.01 for i in range(25)})
        assert reference_probability(case).backend == "exact"


class TestPolynomialOracle:
    def test_clean_case_all_agree(self):
        case = _case([("a", "b"), ("c",)],
                     {"a": 0.4, "b": 0.6, "c": 0.3})
        verdict = audit_polynomial_case(case, samples=3000, seed=0)
        assert verdict.ok
        names = {reading.backend for reading in verdict.readings}
        assert {"brute-force", "exact", "bdd", "mc", "parallel",
                "karp-luby"} <= names

    def test_read_once_skipped_when_unsupported(self):
        diamond = _case([("a", "b"), ("b", "c"), ("c", "d")],
                        {k: 0.5 for k in "abcd"})
        verdict = audit_polynomial_case(diamond, samples=2000, seed=0)
        assert verdict.ok
        assert "read-once" not in {r.backend for r in verdict.readings}

    def test_backend_subset(self):
        case = _case([("a",)], {"a": 0.5})
        verdict = audit_polynomial_case(case, backends=["exact", "bdd"])
        assert {r.backend for r in verdict.readings} == {
            "brute-force", "exact", "bdd"}

    def test_exact_disagreement_flagged(self):
        case = _case([("a", "b")], {"a": 0.5, "b": 0.5})

        def skewed(polynomial, probabilities, request):
            return BackendReading("bdd", 0.2501)

        with override_backend("bdd", skewed):
            verdict = audit_polynomial_case(case)
        assert not verdict.ok
        [disagreement] = verdict.disagreements
        assert disagreement.channel == "backend:bdd"
        assert disagreement.deviation == pytest.approx(1e-4)

    def test_sampling_within_band_passes(self):
        case = _case([("a", "b"), ("b", "c")],
                     {"a": 0.3, "b": 0.7, "c": 0.4})
        verdict = audit_polynomial_case(case, samples=2000, seed=1,
                                        repeats=3)
        assert verdict.ok
        sampling = [r for r in verdict.readings if not r.exact]
        assert all(r.stderr > 0 for r in sampling)

    def test_sampling_gross_bias_flagged(self):
        case = _case([("a",)], {"a": 0.5})

        def biased(polynomial, probabilities, request):
            return BackendReading("mc", 0.9, stderr=0.001, exact=False)

        with override_backend("mc", biased):
            verdict = audit_polynomial_case(case, backends=["mc"])
        assert not verdict.ok
        assert verdict.disagreements[0].channel == "backend:mc"

    def test_zero_hit_case_tolerated_by_floor(self):
        # True probability 1e-6: runs report 0 hits and stderr 0; without
        # the Agresti-Coull floor the band would have zero width and the
        # (correct) backends would be flagged.
        case = _case([("a", "b", "c")], {k: 0.01 for k in "abc"})
        verdict = audit_polynomial_case(case, samples=1000, seed=0,
                                        repeats=2)
        assert verdict.ok

    def test_floor_positive_and_decreasing_in_samples(self):
        assert _sampling_floor(100, 5.0) > _sampling_floor(10000, 5.0) > 0

    def test_verdict_to_dict(self):
        case = _case([("a",)], {"a": 0.5})
        document = audit_polynomial_case(case).to_dict()
        assert document["ok"] is True
        assert document["reference_backend"] == "brute-force"
        assert document["disagreements"] == []


class TestProgramOracle:
    @pytest.fixture(scope="class")
    def program_case(self):
        return next(case for case in corpus_cases()
                    if case.name == "corpus-diamond")

    def test_clean_program_case(self, program_case):
        verdict = audit_program_case(program_case)
        assert verdict.ok, verdict.disagreements

    def test_cycle_program_case(self):
        cycle = next(case for case in corpus_cases()
                     if case.name == "corpus-cycle")
        verdict = audit_program_case(cycle)
        assert verdict.ok, verdict.disagreements

    def test_rejects_polynomial_only_cases(self):
        case = _case([("a",)], {"a": 0.5})
        with pytest.raises(ValueError):
            audit_program_case(case)

    def test_audit_case_merges_channels(self, program_case):
        verdict = audit_case(program_case, samples=1500, seed=0)
        backends = {r.backend for r in verdict.readings}
        assert "program-exact" in backends
        assert "exact" in backends

    def test_generated_program_cases_pass(self):
        cases = [case for case in generate_cases(40, seed=11)
                 if case.origin == "program"]
        assert cases
        for case in cases[:3]:
            verdict = audit_program_case(case)
            assert verdict.ok, verdict.disagreements
