"""Unit tests for terms, atoms, and unification."""

import pytest

from repro.datalog.terms import (
    Atom,
    Constant,
    Variable,
    atom,
    unify_atom,
)


class TestConstant:
    def test_wraps_string(self):
        assert Constant("Steve").value == "Steve"

    def test_wraps_int(self):
        assert Constant(3).value == 3

    def test_wraps_float(self):
        assert Constant(0.5).value == 0.5

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            Constant(["list"])

    def test_is_ground(self):
        assert Constant("x").is_ground

    def test_equality(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_type_sensitive_equality(self):
        assert Constant(1) != Constant("1")

    def test_bool_like_ints_hash_consistently(self):
        assert Constant(1) == Constant(1)
        assert hash(Constant(1)) == hash(Constant(1))

    def test_immutable(self):
        constant = Constant("a")
        with pytest.raises(AttributeError):
            constant.value = "b"

    def test_str_quotes_strings(self):
        assert str(Constant("DC")) == '"DC"'

    def test_str_bare_numbers(self):
        assert str(Constant(5)) == "5"
        assert str(Constant(2.5)) == "2.5"

    def test_usable_in_sets(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2


class TestVariable:
    def test_name(self):
        assert Variable("X").name == "X"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_not_ground(self):
        assert not Variable("X").is_ground

    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_not_equal_to_constant(self):
        assert Variable("X") != Constant("X")

    def test_immutable(self):
        variable = Variable("X")
        with pytest.raises(AttributeError):
            variable.name = "Y"

    def test_str(self):
        assert str(Variable("P1")) == "P1"


class TestAtom:
    def test_relation_and_args(self):
        a = Atom("live", (Constant("Steve"), Constant("DC")))
        assert a.relation == "live"
        assert a.arity == 2

    def test_rejects_empty_relation(self):
        with pytest.raises(ValueError):
            Atom("", ())

    def test_rejects_non_term_args(self):
        with pytest.raises(TypeError):
            Atom("p", ("raw",))

    def test_nullary(self):
        a = Atom("flag")
        assert a.arity == 0
        assert a.is_ground
        assert str(a) == "flag"

    def test_groundness(self):
        assert Atom("p", (Constant(1),)).is_ground
        assert not Atom("p", (Variable("X"),)).is_ground

    def test_variables_in_order(self):
        a = Atom("p", (Variable("X"), Constant(1), Variable("Y"), Variable("X")))
        assert [v.name for v in a.variables()] == ["X", "Y", "X"]

    def test_substitute(self):
        a = Atom("p", (Variable("X"), Constant(1)))
        ground = a.substitute({Variable("X"): Constant("v")})
        assert ground == Atom("p", (Constant("v"), Constant(1)))

    def test_substitute_missing_variable_kept(self):
        a = Atom("p", (Variable("X"),))
        assert a.substitute({}) == a

    def test_as_values(self):
        assert atom("p", "a", 1).as_values() == ("a", 1)

    def test_as_values_rejects_nonground(self):
        with pytest.raises(ValueError):
            Atom("p", (Variable("X"),)).as_values()

    def test_str_rendering(self):
        assert str(atom("live", "Steve", "DC")) == 'live("Steve","DC")'
        assert str(atom("trust", 1, 2)) == "trust(1,2)"

    def test_equality_and_hash(self):
        assert atom("p", 1) == atom("p", 1)
        assert atom("p", 1) != atom("p", 2)
        assert atom("p", 1) != atom("q", 1)
        assert len({atom("p", 1), atom("p", 1)}) == 1

    def test_immutable(self):
        a = atom("p", 1)
        with pytest.raises(AttributeError):
            a.relation = "q"


class TestAtomHelper:
    def test_wraps_raw_values(self):
        a = atom("p", "x", 3, 0.5)
        assert all(isinstance(arg, Constant) for arg in a.args)

    def test_passes_terms_through(self):
        variable = Variable("X")
        a = atom("p", variable)
        assert a.args[0] is variable


class TestUnifyAtom:
    def test_ground_match(self):
        assert unify_atom(atom("p", 1), atom("p", 1)) == {}

    def test_ground_mismatch(self):
        assert unify_atom(atom("p", 1), atom("p", 2)) is None

    def test_relation_mismatch(self):
        assert unify_atom(atom("p", 1), atom("q", 1)) is None

    def test_arity_mismatch(self):
        assert unify_atom(atom("p", 1), atom("p", 1, 2)) is None

    def test_binds_variable(self):
        x = Variable("X")
        result = unify_atom(Atom("p", (x,)), atom("p", "v"))
        assert result == {x: Constant("v")}

    def test_repeated_variable_consistent(self):
        x = Variable("X")
        pattern = Atom("p", (x, x))
        assert unify_atom(pattern, atom("p", 1, 1)) == {x: Constant(1)}
        assert unify_atom(pattern, atom("p", 1, 2)) is None

    def test_respects_existing_substitution(self):
        x = Variable("X")
        pattern = Atom("p", (x,))
        assert unify_atom(pattern, atom("p", 2), {x: Constant(1)}) is None
        assert unify_atom(pattern, atom("p", 1), {x: Constant(1)}) == {
            x: Constant(1)
        }

    def test_does_not_mutate_input_substitution(self):
        x = Variable("X")
        base = {}
        unify_atom(Atom("p", (x,)), atom("p", 1), base)
        assert base == {}

    def test_mixed_constant_and_variable(self):
        x = Variable("X")
        pattern = Atom("p", (Constant("fixed"), x))
        assert unify_atom(pattern, atom("p", "fixed", "free")) == {
            x: Constant("free")
        }
        assert unify_atom(pattern, atom("p", "other", "free")) is None
