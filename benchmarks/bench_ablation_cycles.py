"""Ablation — cycle handling: ancestor-blocking λ⁰ vs bounded unrolling λᵏ.

DESIGN.md §6 calls out the cycle-handling design choice.  The Section 3.3
theorem says P[λ⁰] = P[λᵏ]; this ablation measures what the theorem buys:
unrolling inflates extraction time (and intermediate polynomial size grows
before absorption collapses it) while the probability never moves.
"""

import time

import pytest

from repro import P3
from repro.data import paper_fragment
from repro.inference.exact import exact_probability
from repro.provenance.extraction import extract_polynomial, extract_unrolled

from reporting import record_table


def test_ablation_cycle_handling(benchmark):
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    key = "mutualTrustPath(1,6)"
    probabilities = p3.probabilities

    rows = []
    baseline_value = None
    for rounds in (0, 1, 2, 3):
        start = time.perf_counter()
        if rounds == 0:
            poly = extract_polynomial(p3.graph, key)
        else:
            poly = extract_unrolled(p3.graph, key, rounds)
        elapsed = time.perf_counter() - start
        value = exact_probability(poly, probabilities)
        if baseline_value is None:
            baseline_value = value
        assert value == pytest.approx(baseline_value)
        rows.append(["lambda^%d" % rounds, len(poly),
                     1000 * elapsed, value])

    record_table(
        "ablation_cycles",
        "Ablation: cycle handling on %s — unrolling never changes the "
        "probability (Sec. 3.3 theorem), only the cost" % key,
        ["extraction", "monomials (absorbed)", "time (ms)", "P"],
        rows,
    )

    # Unrolling costs strictly more than ancestor blocking.
    assert rows[-1][2] >= rows[0][2]

    benchmark.pedantic(extract_polynomial, args=(p3.graph, key),
                       rounds=5, iterations=1)
