"""Probability backends for provenance polynomials.

Five interchangeable methods, all taking ``(polynomial, probabilities)``:

================  =============================================  ==========
method            implementation                                 result
================  =============================================  ==========
``exact``         memoised Shannon expansion                     exact float
``bdd``           ROBDD compile + weighted model count           exact float
``mc``            sequential Monte-Carlo (paper's default)       estimate
``parallel``      numpy-vectorized Monte-Carlo (Table 8)         estimate
``karp-luby``     Karp–Luby union sampler [14]                   estimate
================  =============================================  ==========

:func:`probability` is the uniform front door used by the query layer.
"""

from __future__ import annotations

from typing import Optional

from ..provenance.polynomial import Polynomial, ProbabilityMap
from .bdd import BDD, ONE, ZERO, bdd_probability, from_polynomial
from .bounded import BoundedResult, bounded_probability
from .exact import (
    ExactLimitError,
    brute_force_probability,
    exact_probability,
    monomial_probabilities,
)
from .karp_luby import karp_luby_probability, union_bound
from .montecarlo import (
    MonteCarloEstimate,
    adaptive_probability,
    conditioned_probability,
    monte_carlo_probability,
    sample_assignment,
)
from .parallel_mc import (
    CompiledPolynomial,
    batch_parallel_probability,
    parallel_conditioned_pair,
    parallel_probability,
)

#: Methods accepted by :func:`probability`.
METHODS = ("exact", "bdd", "mc", "parallel", "karp-luby")


def probability(polynomial: Polynomial, probabilities: ProbabilityMap,
                method: str = "exact",
                samples: int = 10000,
                seed: Optional[int] = None) -> float:
    """Compute or estimate P[λ] with the chosen backend; returns a float.

    Estimation backends discard the error information — call the specific
    estimator directly when the standard error matters.
    """
    if method == "exact":
        return exact_probability(polynomial, probabilities)
    if method == "bdd":
        return bdd_probability(polynomial, probabilities)
    if method == "mc":
        return monte_carlo_probability(
            polynomial, probabilities, samples=samples, seed=seed).value
    if method == "parallel":
        return parallel_probability(
            polynomial, probabilities, samples=samples, seed=seed).value
    if method == "karp-luby":
        return karp_luby_probability(
            polynomial, probabilities, samples=samples, seed=seed).value
    raise ValueError(
        "Unknown probability method %r (expected one of %s)"
        % (method, ", ".join(METHODS))
    )


__all__ = [
    "BDD",
    "BoundedResult",
    "CompiledPolynomial",
    "ExactLimitError",
    "METHODS",
    "MonteCarloEstimate",
    "ONE",
    "ZERO",
    "adaptive_probability",
    "bdd_probability",
    "bounded_probability",
    "brute_force_probability",
    "batch_parallel_probability",
    "conditioned_probability",
    "exact_probability",
    "from_polynomial",
    "karp_luby_probability",
    "monomial_probabilities",
    "monte_carlo_probability",
    "parallel_conditioned_pair",
    "parallel_probability",
    "probability",
    "sample_assignment",
    "union_bound",
]
