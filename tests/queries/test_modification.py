"""Unit tests for the Modification Query."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference.exact import exact_probability
from repro.provenance.polynomial import rule_literal, tuple_literal
from repro.queries.modification import (
    ModificationError,
    greedy_strategy,
    modification_query,
    random_strategy,
)


class TestSection44:
    """The paper's Section 4.4 example: raise know(Ben,Elena) to 0.5."""

    def test_single_step_on_r3(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        plan = greedy_strategy(poly, acquaintance.probabilities, 0.5)
        assert plan.reached
        assert len(plan.steps) == 1
        step = plan.steps[0]
        assert step.literal == rule_literal("r3")
        # Exact influence gives p* = 0.5/0.8192 ≈ 0.6104 (the paper's 0.56
        # came from its approximate influence value).
        assert step.new_probability == pytest.approx(0.5 / 0.8192, abs=1e-6)

    def test_plan_actually_achieves_target(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        plan = greedy_strategy(poly, acquaintance.probabilities, 0.5)
        updated = plan.updated_probabilities(acquaintance.probabilities)
        assert exact_probability(poly, updated) == pytest.approx(0.5)


class TestTable6:
    """Query 2C: the trust fragment's optimal strategy (Table 6)."""

    def test_greedy_plan_matches_paper(self, trust_fragment):
        poly = trust_fragment.polynomial_of("mutualTrustPath", 1, 6)
        plan = greedy_strategy(
            poly, trust_fragment.probabilities, 0.7,
            modifiable=lambda lit: lit.is_tuple)
        assert plan.reached
        literals = [str(step.literal) for step in plan.steps]
        assert literals == ["trust(6,2)", "trust(2,6)", "trust(2,1)"]
        # Steps 1-2 saturate at 1.0; step 3 is fractional (paper: 0.93).
        assert plan.steps[0].new_probability == 1.0
        assert plan.steps[1].new_probability == 1.0
        assert plan.steps[2].new_probability == pytest.approx(0.93, abs=0.005)
        # Total change: paper reports 0.58.
        assert plan.total_cost == pytest.approx(0.58, abs=0.005)

    def test_greedy_beats_random(self, trust_fragment):
        poly = trust_fragment.polynomial_of("mutualTrustPath", 1, 6)
        greedy = greedy_strategy(
            poly, trust_fragment.probabilities, 0.7,
            modifiable=lambda lit: lit.is_tuple)
        worse = 0
        for seed in range(8):
            rand = random_strategy(
                poly, trust_fragment.probabilities, 0.7,
                modifiable=lambda lit: lit.is_tuple, seed=seed)
            if not rand.reached or rand.total_cost >= greedy.total_cost - 1e-9:
                worse += 1
        # Greedy should beat (or tie) random in essentially every trial.
        assert worse >= 7


class TestGreedyBehaviour:
    def test_decrease_target(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.8 for lit in poly.literals()}
        initial = exact_probability(poly, probs)
        plan = greedy_strategy(poly, probs, 0.4)
        assert plan.initial_probability == pytest.approx(initial)
        assert plan.reached
        assert plan.final_probability == pytest.approx(0.4)
        assert all(step.new_probability < step.old_probability
                   for step in plan.steps)

    def test_unreachable_target_reports_not_reached(self):
        poly = make_polynomial(("a", "b"))
        a, b = sorted(poly.literals())
        # Even p(a)=p(b)=1 gives P=1·0.5 when only a is modifiable.
        plan = greedy_strategy(
            poly, {a: 0.5, b: 0.5}, 0.9,
            modifiable=lambda lit: lit == a)
        assert not plan.reached
        assert plan.final_probability == pytest.approx(0.5)

    def test_already_at_target_no_steps(self):
        poly = make_polynomial(("a",))
        a = tuple_literal("a")
        plan = greedy_strategy(poly, {a: 0.5}, 0.5)
        assert plan.reached
        assert plan.steps == ()
        assert plan.total_cost == 0.0

    def test_max_steps_respected(self):
        poly = make_polynomial(("a",), ("b",), ("c",))
        probs = {lit: 0.1 for lit in poly.literals()}
        plan = greedy_strategy(poly, probs, 0.99, max_steps=1)
        assert len(plan.steps) <= 1

    def test_invalid_target_rejected(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ModificationError):
            greedy_strategy(poly, {tuple_literal("a"): 0.5}, 1.5)

    def test_modifiable_filter_respected(self):
        poly = make_polynomial(("r1", "a"))
        plan = greedy_strategy(
            poly,
            {rule_literal("r1"): 0.5, tuple_literal("a"): 0.5},
            0.7,
            modifiable=lambda lit: lit.is_tuple)
        assert all(step.literal.is_tuple for step in plan.steps)

    def test_cost_is_sum_of_changes(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.1 for lit in poly.literals()}
        plan = greedy_strategy(poly, probs, 0.9)
        assert plan.total_cost == pytest.approx(
            sum(abs(s.new_probability - s.old_probability)
                for s in plan.steps))


class TestRandomStrategy:
    def test_reaches_reachable_target(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.2 for lit in poly.literals()}
        plan = random_strategy(poly, probs, 0.6, seed=1)
        assert plan.reached
        updated = plan.updated_probabilities(probs)
        assert exact_probability(poly, updated) == pytest.approx(0.6)

    def test_seed_reproducible(self):
        poly = make_polynomial(("a",), ("b",), ("c",))
        probs = {lit: 0.2 for lit in poly.literals()}
        first = random_strategy(poly, probs, 0.7, seed=5)
        second = random_strategy(poly, probs, 0.7, seed=5)
        assert [str(s.literal) for s in first.steps] == [
            str(s.literal) for s in second.steps]

    def test_final_step_fractional_on_overshoot(self):
        poly = make_polynomial(("a",), ("b",))
        probs = {lit: 0.2 for lit in poly.literals()}
        plan = random_strategy(poly, probs, 0.5, seed=0)
        if plan.steps:
            last = plan.steps[-1]
            assert 0.0 <= last.new_probability <= 1.0

    def test_invalid_target_rejected(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ModificationError):
            random_strategy(poly, {tuple_literal("a"): 0.5}, -0.1)


class TestDispatch:
    def test_strategy_selection(self):
        poly = make_polynomial(("a",))
        probs = {tuple_literal("a"): 0.3}
        greedy = modification_query(poly, probs, 0.6, strategy="greedy")
        rand = modification_query(poly, probs, 0.6, strategy="random", seed=1)
        assert greedy.strategy == "greedy"
        assert rand.strategy == "random"

    def test_unknown_strategy(self):
        poly = make_polynomial(("a",))
        with pytest.raises(ValueError):
            modification_query(poly, {tuple_literal("a"): 0.5}, 0.5,
                               strategy="nope")


class TestPlanObject:
    def test_to_text(self):
        poly = make_polynomial(("a",))
        plan = greedy_strategy(poly, {tuple_literal("a"): 0.3}, 0.6)
        text = plan.to_text()
        assert "Step 1" in text
        assert "total change" in text

    def test_updated_probabilities_does_not_mutate(self):
        poly = make_polynomial(("a",))
        probs = {tuple_literal("a"): 0.3}
        plan = greedy_strategy(poly, probs, 0.6)
        plan.updated_probabilities(probs)
        assert probs[tuple_literal("a")] == 0.3


class TestPropertyStyle:
    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_reaches_or_saturates(self, seed):
        poly = make_polynomial(("a", "b"), ("b", "c"), ("d",))
        probs = random_probabilities(poly, seed=seed)
        current = exact_probability(poly, probs)
        target = min(0.95, current + 0.2)
        plan = greedy_strategy(poly, probs, target)
        updated = plan.updated_probabilities(probs)
        achieved = exact_probability(poly, updated)
        if plan.reached:
            assert achieved == pytest.approx(target, abs=1e-6)
        else:
            # Not reached means every modifiable literal is saturated.
            assert all(updated[lit] == 1.0 or probs[lit] == updated[lit]
                       for lit in poly.literals())
