"""Unit tests for the probability front door."""

import pytest

from tests.conftest import make_polynomial, random_probabilities

from repro.inference import METHODS, probability
from repro.inference.exact import exact_probability


POLY = make_polynomial(("a", "b"), ("b", "c"), ("d",))
PROBS = random_probabilities(POLY, seed=1)
TRUTH = exact_probability(POLY, PROBS)


class TestDispatch:
    def test_exact_methods_agree(self):
        assert probability(POLY, PROBS, method="exact") == pytest.approx(TRUTH)
        assert probability(POLY, PROBS, method="bdd") == pytest.approx(TRUTH)

    @pytest.mark.parametrize("method", ["mc", "parallel", "karp-luby"])
    def test_estimators_near_truth(self, method):
        value = probability(POLY, PROBS, method=method,
                            samples=40000, seed=5)
        assert value == pytest.approx(TRUTH, abs=0.02)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            probability(POLY, PROBS, method="magic")

    def test_methods_constant_lists_all(self):
        assert set(METHODS) == {"brute-force", "exact", "bdd", "read-once",
                                "mc", "parallel", "karp-luby"}

    def test_brute_force_method_agrees(self):
        assert probability(POLY, PROBS, method="brute-force") == \
            pytest.approx(TRUTH, abs=1e-12)

    def test_read_once_method_on_read_once_input(self):
        poly = make_polynomial(("a",), ("b", "c"))
        probs = random_probabilities(poly, seed=3)
        assert probability(poly, probs, method="read-once") == pytest.approx(
            exact_probability(poly, probs), abs=1e-12)
