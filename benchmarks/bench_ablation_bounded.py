"""Extension bench — anytime bounded approximation (iterative deepening).

ProbLog's lower/upper-bound anytime inference on our provenance graphs:
the interval brackets the true probability at every depth and collapses
onto the exact value once every derivation fits inside the hop limit.
"""

import pytest

from repro import P3
from repro.data import paper_fragment
from repro.inference.bounded import bounded_probability

from reporting import record_table
from workloads import query_workload


def test_bounded_anytime_fragment(benchmark):
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    key = "mutualTrustPath(1,6)"
    exact = p3.probability_of(key)

    result = benchmark.pedantic(
        bounded_probability,
        args=(p3.graph, key, p3.probabilities),
        kwargs={"epsilon": 1e-6}, rounds=3, iterations=1)

    assert result.converged
    assert result.lower == pytest.approx(exact, abs=1e-9)
    record_table(
        "ablation_bounded",
        "Extension: anytime bounds on %s (exact P = %.6f)" % (key, exact),
        ["hop limit", "lower", "upper", "gap"],
        [[hop, low, up, up - low] for hop, low, up in result.history],
    )


def test_bounded_anytime_large(benchmark):
    # On the 1199-monomial workload, a loose epsilon stops well before the
    # full hop-6 extraction while still bracketing its probability.
    from repro.inference.parallel_mc import parallel_probability

    p3, key, poly = query_workload()

    def mc_evaluator(candidate, probs):
        return parallel_probability(candidate, probs, 20000, seed=1).value

    reference = mc_evaluator(poly, p3.probabilities)
    result = bounded_probability(
        p3.graph, key, p3.probabilities, epsilon=0.05,
        initial_hop_limit=2, max_hop_limit=6, evaluator=mc_evaluator)

    # The interval must bracket the hop-6 reference (within MC noise).
    assert result.lower - 0.02 <= reference
    record_table(
        "ablation_bounded_large",
        "Extension: anytime bounds on %s (hop-6 MC reference %.4f)"
        % (key, reference),
        ["hop limit", "lower", "upper", "gap"],
        [[hop, low, up, up - low] for hop, low, up in result.history],
    )

    benchmark.pedantic(
        bounded_probability,
        args=(p3.graph, key, p3.probabilities),
        kwargs={"epsilon": 0.2, "initial_hop_limit": 2, "max_hop_limit": 4,
                "evaluator": mc_evaluator},
        rounds=2, iterations=1)
