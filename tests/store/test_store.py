"""Unit tests for the durable provenance store (snapshot, incremental
append, warm-start, crash recovery)."""

import sqlite3

import pytest

from repro import P3, P3Config
from repro.store import (
    ProvenanceStore,
    StoreCrashError,
    StoreError,
    StoreVersionError,
)

PROGRAM = """
0.9::edge(a,b).
0.8::edge(b,c).
0.7::edge(a,c).
0.5::edge(c,d).
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
query(path(a,c)).
"""

KEY = 'path("a","c")'
UPDATE = "0.6::edge(c,e)."


@pytest.fixture()
def evaluated():
    p3 = P3.from_source(PROGRAM)
    p3.evaluate()
    return p3


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "prov.db")


def snapshot(p3, path):
    store = ProvenanceStore(path)
    p3.attach_store(store)
    return store


class TestSnapshot:
    def test_graph_round_trip(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            again = store.load_graph()
        assert again.tuple_keys() == evaluated.graph.tuple_keys()
        assert again.executions() == evaluated.graph.executions()
        assert again.probability_map() == evaluated.graph.probability_map()

    def test_program_round_trip(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            program = store.load_program()
        assert str(program) == str(evaluated.program)

    def test_epoch_spine(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            spine = store.epochs()
        assert [entry["epoch"] for entry in spine] == [0]
        assert spine[0]["tuples"] == len(evaluated.graph.tuple_keys())
        assert spine[0]["firings"] == len(evaluated.graph.executions())

    def test_sync_is_idempotent(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            assert store.sync(evaluated) == 0
            assert [entry["epoch"] for entry in store.epochs()] == [0]

    def test_missing_store_rejected(self, store_path):
        with pytest.raises(StoreError):
            ProvenanceStore(store_path, create=False)


class TestIncrementalAppend:
    def test_update_lands_as_new_epoch(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            evaluated.add_facts(UPDATE)
            assert [entry["epoch"] for entry in store.epochs()] == [0, 1]
            assert 'edge("c","e")' in store.load_graph().tuple_keys()

    def test_as_of_epoch_excludes_later_facts(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            evaluated.add_facts(UPDATE)
            old = store.load_graph(epoch=0)
            assert 'edge("c","e")' not in old.tuple_keys()

    def test_load_program_grafts_update_facts(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            evaluated.add_facts(UPDATE)
            program = store.load_program()
        assert 'edge("c","e")' in {
            str(fact.atom) for fact in program.facts}

    def test_append_behind_head_rejected(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            evaluated.add_facts(UPDATE)
            evaluated.detach_store()
            stale = P3.from_source(PROGRAM)
            stale.evaluate()  # epoch 0 < store head 1
            with pytest.raises(StoreError):
                store.sync(stale)

    def test_out_of_range_epoch_rejected(self, evaluated, store_path):
        with snapshot(evaluated, store_path) as store:
            with pytest.raises(StoreError):
                store.load_graph(epoch=99)

    def test_empty_store_has_no_epochs(self, store_path):
        with ProvenanceStore(store_path) as store:
            with pytest.raises(StoreError):
                store.last_epoch()


class TestWarmStart:
    def test_from_store_skips_evaluation(self, evaluated, store_path):
        expected = evaluated.probability_of(KEY)
        snapshot(evaluated, store_path).close()
        p3 = P3.from_store(store_path, attach=False)
        assert p3.warm_started
        assert p3.evaluated
        # rounds == 0 is the tell: no fixpoint iteration ran.
        assert p3.evaluate().rounds == 0
        assert p3.probability_of(KEY) == pytest.approx(expected)

    def test_restored_epoch_threads_into_system(self, evaluated,
                                                store_path):
        with snapshot(evaluated, store_path):
            evaluated.add_facts(UPDATE)
        p3 = P3.from_store(store_path, attach=False)
        assert p3.epoch == 1

    def test_warm_start_at_historical_epoch(self, evaluated, store_path):
        with snapshot(evaluated, store_path):
            evaluated.add_facts(UPDATE)
        p3 = P3.from_store(store_path, epoch=0, attach=False)
        assert p3.epoch == 0
        assert 'edge("c","e")' not in p3.graph.tuple_keys()

    def test_attached_warm_start_appends_new_epochs(self, evaluated,
                                                    store_path):
        snapshot(evaluated, store_path).close()
        p3 = P3.from_store(store_path)
        try:
            p3.add_facts(UPDATE)
            assert [entry["epoch"] for entry in p3.store.epochs()] == [0, 1]
        finally:
            store = p3.store
            p3.detach_store()
            store.close()

    def test_warm_start_matches_cold_answers(self, evaluated, store_path):
        with snapshot(evaluated, store_path):
            evaluated.add_facts(UPDATE)
        cold = evaluated.probability_of('path("a","e")')
        warm = P3.from_store(store_path, attach=False)
        assert warm.probability_of('path("a","e")') == pytest.approx(cold)


class TestPolynomials:
    def test_round_trip(self, evaluated, store_path):
        poly = evaluated.executor().polynomial(KEY)
        with snapshot(evaluated, store_path) as store:
            store.save_polynomial(KEY, None, poly, epoch=0)
            loaded = store.load_polynomials(0)
        assert loaded[(KEY, None)] == poly

    def test_only_exact_epoch_is_primed(self, evaluated, store_path):
        poly = evaluated.executor().polynomial(KEY)
        with snapshot(evaluated, store_path) as store:
            store.save_polynomial(KEY, None, poly, epoch=0)
            evaluated.add_facts(UPDATE)
            # The epoch-0 polynomial is stale once the graph grew.
            assert store.load_polynomials(1) == {}

    def test_unknown_root_rejected(self, evaluated, store_path):
        poly = evaluated.executor().polynomial(KEY)
        with snapshot(evaluated, store_path) as store:
            with pytest.raises(StoreError):
                store.save_polynomial("nope(1)", None, poly, epoch=0)


class TestCrashRecovery:
    def test_reopen_drops_torn_epoch(self, evaluated, store_path):
        store = snapshot(evaluated, store_path)
        store.fail_before_commit = True
        with pytest.raises(StoreCrashError):
            evaluated.add_facts(UPDATE)
        evaluated.detach_store()
        store.close()
        # The torn batch is on disk, uncommitted.
        raw = sqlite3.connect(store_path)
        assert raw.execute(
            "SELECT COUNT(*) FROM epochs WHERE committed = 0"
        ).fetchone()[0] == 1
        raw.close()
        with ProvenanceStore(store_path) as reopened:
            assert [e["epoch"] for e in reopened.epochs()] == [0]
            assert 'edge("c","e")' not in reopened.load_graph().tuple_keys()

    def test_recovered_store_accepts_new_appends(self, evaluated,
                                                 store_path):
        store = snapshot(evaluated, store_path)
        store.fail_before_commit = True
        with pytest.raises(StoreCrashError):
            evaluated.add_facts(UPDATE)
        evaluated.detach_store()
        store.close()
        fresh = P3.from_store(store_path)
        try:
            fresh.add_facts(UPDATE)
            assert [e["epoch"] for e in fresh.store.epochs()] == [0, 1]
        finally:
            reopened = fresh.store
            fresh.detach_store()
            reopened.close()


class TestVersioning:
    def test_incompatible_store_rejected(self, evaluated, store_path):
        snapshot(evaluated, store_path).close()
        raw = sqlite3.connect(store_path)
        raw.execute("UPDATE meta SET value = '99' "
                    "WHERE key = 'store_format'")
        raw.commit()
        raw.close()
        with pytest.raises(StoreVersionError) as info:
            ProvenanceStore(store_path)
        document = info.value.to_dict()
        assert document["found_version"] == 99
        assert 1 in document["expected_versions"]


class TestTenantWarmStart:
    def test_store_backed_tenant(self, evaluated, store_path):
        from repro.exec.specs import QuerySpec
        from repro.serve.tenants import TenantRegistry
        expected = evaluated.probability_of(KEY)
        snapshot(evaluated, store_path).close()
        registry = TenantRegistry(base_config=P3Config())
        try:
            tenant = registry.create("warm", store=store_path,
                                     persist=True)
            assert tenant.system.warm_started
            batch = tenant.run_batch([QuerySpec.probability(KEY)])
            assert batch[0].value == pytest.approx(expected)
            tenant.add_facts(UPDATE)
            assert [e["epoch"] for e in tenant.system.store.epochs()] \
                == [0, 1]
        finally:
            registry.close()

    def test_session_backed_tenant(self, evaluated, tmp_path):
        from repro.io.serialize import save_session
        from repro.serve.tenants import TenantRegistry
        session_path = str(tmp_path / "session.json")
        save_session(evaluated.program, evaluated.graph, session_path,
                     epoch=evaluated.epoch)
        registry = TenantRegistry(base_config=P3Config())
        try:
            tenant = registry.create("sess", session=session_path)
            assert tenant.system.warm_started
        finally:
            registry.close()

    def test_exactly_one_source_enforced(self, store_path):
        from repro.serve.tenants import TenantRegistry
        registry = TenantRegistry(base_config=P3Config())
        try:
            with pytest.raises(ValueError):
                registry.create("bad", source="p(1).", store=store_path)
            with pytest.raises(ValueError):
                registry.create("bad", source="p(1).", persist=True)
        finally:
            registry.close()
