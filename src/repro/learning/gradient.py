"""Gradient-based parameter learning over provenance polynomials.

Section 8 of the paper lists "machine-learning style inference" as future
work.  Provenance polynomials make the first step — differentiation —
exact and cheap: because P[λ] is *multilinear* in the literal
probabilities, the partial derivative with respect to p(x) is precisely
the influence of Definition 4.1,

    ∂P[λ]/∂p(x) = P[λ|x=1] − P[λ|x=0] = Inf_x(λ),

so the influence machinery doubles as an exact gradient oracle.  On top of
it this module implements **learning from probabilistic examples** (the
simplest ProbLog-style parameter learning): given derived tuples with
target probabilities, fit the modifiable literal probabilities (typically
rule weights) by projected gradient descent on the squared loss

    L(θ) = Σᵢ (P[λᵢ](θ) − targetᵢ)²,   θ ∈ [0,1]^modifiable.

The loss is generally non-convex, but each P[λᵢ] is multilinear and the
box projection keeps parameters valid; in practice (and in the tests) the
procedure recovers planted weights on the paper's programs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..inference.exact import exact_probability
from ..provenance.polynomial import Literal, Polynomial, ProbabilityMap
from ..queries.influence import exact_influence

Evaluator = Callable[[Polynomial, ProbabilityMap], float]


def gradient(polynomial: Polynomial,
             probabilities: ProbabilityMap,
             literals: Optional[Sequence[Literal]] = None,
             evaluator: Optional[Evaluator] = None) -> Dict[Literal, float]:
    """Exact ∂P[λ]/∂p(x) for each requested literal (defaults to all).

    This IS the influence vector; provided under its calculus name so
    learning code reads naturally.
    """
    if literals is None:
        literals = sorted(polynomial.literals())
    if evaluator is None:
        return {
            literal: exact_influence(polynomial, probabilities, literal)
            for literal in literals
        }
    result: Dict[Literal, float] = {}
    for literal in literals:
        high = evaluator(polynomial.restrict(literal, True), probabilities)
        low = evaluator(polynomial.restrict(literal, False), probabilities)
        result[literal] = high - low
    return result


class TrainingExample:
    """One supervision signal: a tuple's polynomial and target probability."""

    __slots__ = ("polynomial", "target", "weight")

    def __init__(self, polynomial: Polynomial, target: float,
                 weight: float = 1.0) -> None:
        if not 0.0 <= target <= 1.0:
            raise ValueError("Target probability must be in [0, 1]")
        if weight <= 0.0:
            raise ValueError("Example weight must be positive")
        self.polynomial = polynomial
        self.target = target
        self.weight = weight

    def __repr__(self) -> str:
        return "TrainingExample(<%d monomials>, target=%.4f)" % (
            len(self.polynomial), self.target)


class FitResult:
    """Outcome of :func:`fit_probabilities`."""

    def __init__(self, probabilities: Dict[Literal, float],
                 loss_history: List[float], converged: bool,
                 iterations: int) -> None:
        self.probabilities = probabilities
        self.loss_history = loss_history
        self.converged = converged
        self.iterations = iterations

    @property
    def initial_loss(self) -> float:
        return self.loss_history[0]

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1]

    def __repr__(self) -> str:
        return "FitResult(loss %.6f -> %.6f, %d iterations%s)" % (
            self.initial_loss, self.final_loss, self.iterations,
            ", converged" if self.converged else "",
        )


def squared_loss(examples: Sequence[TrainingExample],
                 probabilities: ProbabilityMap,
                 evaluator: Optional[Evaluator] = None) -> float:
    """Weighted squared loss over the training examples."""
    if evaluator is None:
        evaluator = exact_probability
    total = 0.0
    for example in examples:
        predicted = evaluator(example.polynomial, probabilities)
        total += example.weight * (predicted - example.target) ** 2
    return total


def fit_probabilities(examples: Sequence[TrainingExample],
                      probabilities: ProbabilityMap,
                      modifiable: Sequence[Literal],
                      learning_rate: float = 0.5,
                      max_iterations: int = 200,
                      tolerance: float = 1e-8,
                      evaluator: Optional[Evaluator] = None,
                      clamp: Tuple[float, float] = (0.0, 1.0)) -> FitResult:
    """Projected gradient descent on the squared loss.

    Only ``modifiable`` literals move; everything else stays fixed.
    ``clamp`` restricts the feasible box (e.g. ``(0.01, 0.99)`` to keep
    every possible world alive).  Uses a simple halving line search so a
    too-large ``learning_rate`` cannot diverge.
    """
    if not examples:
        raise ValueError("Need at least one training example")
    if not modifiable:
        raise ValueError("Need at least one modifiable literal")
    if evaluator is None:
        evaluator = exact_probability
    low, high = clamp
    if not 0.0 <= low < high <= 1.0:
        raise ValueError("clamp must satisfy 0 <= low < high <= 1")

    theta: Dict[Literal, float] = dict(probabilities)
    loss_history = [squared_loss(examples, theta, evaluator)]
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        # Full-batch gradient of the squared loss.
        grad: Dict[Literal, float] = {literal: 0.0 for literal in modifiable}
        for example in examples:
            predicted = evaluator(example.polynomial, theta)
            residual = 2.0 * example.weight * (predicted - example.target)
            if residual == 0.0:
                continue
            partials = gradient(example.polynomial, theta,
                                literals=[l for l in modifiable
                                          if l in example.polynomial.literals()],
                                evaluator=evaluator)
            for literal, partial in partials.items():
                grad[literal] += residual * partial

        if all(abs(g) < tolerance for g in grad.values()):
            converged = True
            break

        # Backtracking line search on the projected step.
        step = learning_rate
        current_loss = loss_history[-1]
        improved = False
        for _ in range(20):
            candidate = dict(theta)
            for literal in modifiable:
                value = theta[literal] - step * grad[literal]
                candidate[literal] = min(high, max(low, value))
            candidate_loss = squared_loss(examples, candidate, evaluator)
            if candidate_loss < current_loss - 1e-15:
                theta = candidate
                loss_history.append(candidate_loss)
                improved = True
                break
            step /= 2.0
        if not improved:
            converged = True
            break
        if abs(loss_history[-2] - loss_history[-1]) < tolerance:
            converged = True
            break

    return FitResult(theta, loss_history, converged, iterations)
