"""P3 system facade."""

from .config import P3Config
from .errors import (
    NotEvaluatedError,
    P3Error,
    UnknownLiteralError,
    UnknownTupleError,
)
from .goal import GoalDirectedResult, goal_directed_query
from .system import P3

__all__ = [
    "GoalDirectedResult",
    "NotEvaluatedError",
    "P3",
    "P3Config",
    "P3Error",
    "goal_directed_query",
    "UnknownLiteralError",
    "UnknownTupleError",
]
