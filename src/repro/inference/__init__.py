"""Probability backends for provenance polynomials.

Seven interchangeable methods, all registered in
:mod:`repro.inference.registry` and all callable through one typed
parameter object (:class:`~repro.inference.request.InferenceRequest`):

===============  ==============================================  ==========
method           implementation                                  result
===============  ==============================================  ==========
``exact``        memoised Shannon expansion                      exact float
``bdd``          ROBDD compile + weighted model count            exact float
``brute-force``  2ⁿ enumeration (small polynomials; oracle)      exact float
``read-once``    linear pass over a read-once factorization      exact float
``mc``           bitset-kernel Monte-Carlo (single stream)       estimate
``parallel``     bitset-kernel Monte-Carlo, worker-sharded       estimate
``karp-luby``    Karp–Luby union sampler [14]                    estimate
===============  ==============================================  ==========

All sampling backends share the bitset-packed kernel
(:mod:`repro.inference.kernel`): the sample matrix is drawn per literal
at once, packed into ``uint64`` words, and every monomial is one packed
mask comparison over the batch, with :class:`CompiledPolynomial` as the
single compiled evaluation path.

:func:`probability` is the uniform front door used by the query layer; it
dispatches through the registry, which the differential audit harness
(:mod:`repro.audit`) also uses to cross-check every backend against every
other.  Every backend result satisfies the :class:`Estimate` protocol
(``value`` / ``stderr`` / ``exact`` / ``interval()``), so callers no
longer switch on result types.  See docs/INFERENCE.md.
"""

from __future__ import annotations

from typing import Optional

from ..provenance.polynomial import Polynomial, ProbabilityMap
from .bdd import BDD, ONE, ZERO, bdd_probability, from_polynomial
from .bounded import BoundedResult, bounded_probability
from .estimate import Estimate, ExactEstimate
from .exact import (
    ExactLimitError,
    brute_force_probability,
    exact_probability,
    monomial_probabilities,
)
from .karp_luby import karp_luby_probability, union_bound
from .kernel import CompiledPolynomial, kernel_karp_luby, kernel_probability
from .montecarlo import (
    MonteCarloEstimate,
    adaptive_probability,
    conditioned_probability,
    monte_carlo_probability,
    sample_assignment,
    sequential_probability,
)
from .parallel_mc import (
    batch_parallel_probability,
    parallel_conditioned_pair,
    parallel_probability,
)
from .registry import (
    BackendReading,
    InferenceBackend,
    available_backends,
    backend_names,
    exact_backend_names,
    get_backend,
    is_deterministic,
    register_backend,
    sampling_backend_names,
)
from .request import InferenceRequest

#: Methods accepted by :func:`probability` (the registered backend names).
METHODS = backend_names()


def probability(polynomial: Polynomial, probabilities: ProbabilityMap,
                method: str = "exact",
                samples: int = 10000,
                seed: Optional[int] = None,
                request: Optional[InferenceRequest] = None) -> float:
    """Compute or estimate P[λ] with the chosen backend; returns a float.

    Dispatches through the backend registry.  Sampling backends return
    their clamped value (the unbiased Karp–Luby estimate can exceed 1,
    but this front door promises a probability); they also discard the
    error information — call the specific estimator directly, or
    :meth:`InferenceBackend.run`, when the standard error matters.

    Pass ``request`` to control workers, deadline, or budget; the plain
    ``samples`` / ``seed`` keywords cover the common case (this
    convenience front door builds the request itself, so they are *not*
    deprecated here, unlike on :meth:`InferenceBackend.run`).
    """
    backend = get_backend(method)
    if request is None:
        request = InferenceRequest(samples=samples, seed=seed)
    reading = backend.run(polynomial, probabilities, request)
    if backend.deterministic:
        return reading.value
    return reading.value_clamped


__all__ = [
    "BDD",
    "BackendReading",
    "BoundedResult",
    "CompiledPolynomial",
    "Estimate",
    "ExactEstimate",
    "ExactLimitError",
    "InferenceBackend",
    "InferenceRequest",
    "METHODS",
    "MonteCarloEstimate",
    "ONE",
    "ZERO",
    "adaptive_probability",
    "available_backends",
    "backend_names",
    "bdd_probability",
    "bounded_probability",
    "brute_force_probability",
    "batch_parallel_probability",
    "conditioned_probability",
    "exact_backend_names",
    "exact_probability",
    "from_polynomial",
    "get_backend",
    "is_deterministic",
    "karp_luby_probability",
    "kernel_karp_luby",
    "kernel_probability",
    "monomial_probabilities",
    "monte_carlo_probability",
    "parallel_conditioned_pair",
    "parallel_probability",
    "probability",
    "register_backend",
    "sample_assignment",
    "sampling_backend_names",
    "sequential_probability",
    "union_bound",
]
