"""Unit tests for comparison guards."""

import pytest

from repro.datalog.builtins import Comparison, UnboundComparisonError
from repro.datalog.terms import Constant, Variable


X = Variable("X")
Y = Variable("Y")


class TestConstruction:
    def test_valid_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            Comparison(op, X, Y)

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            Comparison("<>", X, Y)

    def test_immutable(self):
        guard = Comparison("!=", X, Y)
        with pytest.raises(AttributeError):
            guard.op = "=="

    def test_str(self):
        assert str(Comparison("!=", X, Y)) == "X!=Y"

    def test_equality(self):
        assert Comparison("<", X, Y) == Comparison("<", X, Y)
        assert Comparison("<", X, Y) != Comparison("<=", X, Y)

    def test_variables(self):
        guard = Comparison("<", X, Constant(3))
        assert list(guard.variables()) == [X]


class TestEvaluation:
    def test_not_equal_true(self):
        guard = Comparison("!=", X, Y)
        assert guard.evaluate({X: Constant(1), Y: Constant(2)})

    def test_not_equal_false(self):
        guard = Comparison("!=", X, Y)
        assert not guard.evaluate({X: Constant(1), Y: Constant(1)})

    def test_equal(self):
        guard = Comparison("==", X, Constant("a"))
        assert guard.evaluate({X: Constant("a")})
        assert not guard.evaluate({X: Constant("b")})

    def test_ordering_operators(self):
        subst = {X: Constant(2), Y: Constant(5)}
        assert Comparison("<", X, Y).evaluate(subst)
        assert Comparison("<=", X, Y).evaluate(subst)
        assert not Comparison(">", X, Y).evaluate(subst)
        assert not Comparison(">=", X, Y).evaluate(subst)

    def test_boundary_le_ge(self):
        subst = {X: Constant(3), Y: Constant(3)}
        assert Comparison("<=", X, Y).evaluate(subst)
        assert Comparison(">=", X, Y).evaluate(subst)
        assert not Comparison("<", X, Y).evaluate(subst)

    def test_string_ordering(self):
        subst = {X: Constant("apple"), Y: Constant("banana")}
        assert Comparison("<", X, Y).evaluate(subst)

    def test_constant_only(self):
        assert Comparison("!=", Constant(1), Constant(2)).evaluate({})

    def test_unbound_variable_raises(self):
        guard = Comparison("!=", X, Y)
        with pytest.raises(UnboundComparisonError):
            guard.evaluate({X: Constant(1)})

    def test_mixed_types_ordered_comparison_false(self):
        subst = {X: Constant("a"), Y: Constant(3)}
        assert not Comparison("<", X, Y).evaluate(subst)
        assert not Comparison(">", X, Y).evaluate(subst)

    def test_mixed_types_not_equal_true(self):
        subst = {X: Constant("1"), Y: Constant(1)}
        assert Comparison("!=", X, Y).evaluate(subst)

    def test_int_float_comparison(self):
        subst = {X: Constant(1), Y: Constant(1.5)}
        assert Comparison("<", X, Y).evaluate(subst)
