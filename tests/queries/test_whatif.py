"""Unit tests for what-if deletion analysis."""

import pytest

from repro import P3
from repro.provenance.polynomial import rule_literal, tuple_literal
from repro.queries.whatif import (
    delete_from_polynomial,
    lost_tuples,
    surviving_tuples,
    what_if_deletion,
)


class TestSurvivingTuples:
    def test_no_deletion_everything_survives(self, acquaintance):
        surviving = surviving_tuples(acquaintance.graph, [])
        assert 'know("Ben","Elena")' in surviving
        assert 'live("Steve","DC")' in surviving

    def test_deleting_base_kills_dependents(self, acquaintance):
        surviving = surviving_tuples(
            acquaintance.graph,
            [tuple_literal('live("Steve","DC")'),
             tuple_literal('like("Steve","Veggies")')])
        # Both derivations of know(Steve,Elena) need Steve's tuples.
        assert 'know("Steve","Elena")' not in surviving
        assert 'know("Ben","Elena")' not in surviving
        # The untouched base tuples survive.
        assert 'live("Elena","DC")' in surviving

    def test_alternative_derivation_keeps_tuple_alive(self, acquaintance):
        surviving = surviving_tuples(
            acquaintance.graph, [tuple_literal('live("Steve","DC")')])
        # know(Steve,Elena) still derivable through the hobby rule.
        assert 'know("Steve","Elena")' in surviving

    def test_deleting_rule(self, acquaintance):
        surviving = surviving_tuples(
            acquaintance.graph, [rule_literal("r3")])
        assert 'know("Ben","Elena")' not in surviving
        assert 'know("Steve","Elena")' in surviving

    def test_lost_tuples_sorted(self, acquaintance):
        lost = lost_tuples(acquaintance.graph, [rule_literal("r3")])
        assert lost == sorted(lost)
        assert 'know("Ben","Elena")' in lost


class TestDeleteFromPolynomial:
    def test_restricts_to_false(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        conditioned = delete_from_polynomial(poly, [rule_literal("r2")])
        assert len(conditioned) == 1
        conditioned = delete_from_polynomial(poly, [rule_literal("r3")])
        assert conditioned.is_zero


class TestWhatIfReport:
    def test_full_report(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        report = what_if_deletion(
            acquaintance.graph, acquaintance.probabilities,
            [rule_literal("r2")],
            {'know("Ben","Elena")': poly})
        entry = report.target('know("Ben","Elena")')
        assert entry.old_probability == pytest.approx(0.16384)
        assert entry.new_probability == pytest.approx(0.2 * 0.8)
        assert entry.derivable
        assert entry.delta < 0

    def test_underivable_flag(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        report = what_if_deletion(
            acquaintance.graph, acquaintance.probabilities,
            [rule_literal("r3")],
            {'know("Ben","Elena")': poly})
        entry = report.target('know("Ben","Elena")')
        assert not entry.derivable
        assert entry.new_probability == 0.0

    def test_missing_target_raises(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        report = what_if_deletion(
            acquaintance.graph, acquaintance.probabilities, [],
            {'know("Ben","Elena")': poly})
        with pytest.raises(KeyError):
            report.target("nope(1)")

    def test_to_text(self, acquaintance):
        poly = acquaintance.polynomial_of("know", "Ben", "Elena")
        report = what_if_deletion(
            acquaintance.graph, acquaintance.probabilities,
            [rule_literal("r3")],
            {'know("Ben","Elena")': poly})
        text = report.to_text()
        assert "delete r3" in text
        assert "UNDERIVABLE" in text


class TestFacade:
    def test_what_if_via_p3(self, acquaintance):
        report = acquaintance.what_if(
            deleted=["r2", 'live("Steve","DC")'],
            targets=['know("Ben","Elena")'])
        entry = report.target('know("Ben","Elena")')
        assert not entry.derivable
        assert 'know("Ben","Elena")' in report.lost_tuples

    def test_unknown_deleted_literal(self, acquaintance):
        from repro.core.errors import UnknownLiteralError
        with pytest.raises(UnknownLiteralError):
            acquaintance.what_if(deleted=["ghost"], targets=[])

    def test_trust_fragment_scenario(self, trust_fragment):
        report = trust_fragment.what_if(
            deleted=["trust(6,2)"],
            targets=["mutualTrustPath(1,6)"])
        entry = report.target("mutualTrustPath(1,6)")
        # trust(6,2) is the only way back from 6, so the mutual path dies.
        assert not entry.derivable
