"""Schema and error types for the durable provenance store.

The store is one SQLite file with fully normalized tables — tuple
vertices, rule firings (with an ordered body join table), polynomial
monomials, epochs, and recorded query sessions.  No table embeds JSON:
every provenance fact is a row, so the chain of custody ("which facts
and firings produced this answer, under which epoch") is queryable with
plain SQL.

Epoch model
-----------

Every row that describes provenance carries the epoch it first appeared
in.  The ``epochs`` table is the append-only spine: one row per synced
system epoch, written ``committed=0`` first, flipped to ``1`` only after
the whole row batch landed.  Readers only see committed epochs, and
:meth:`repro.store.ProvenanceStore` deletes the rows of any uncommitted
epoch on open — so a crash mid-append always reopens to the last
complete epoch.  Loading "as of" epoch *e* selects rows with
``epoch <= e``, which is exactly the graph the system had then.
"""

from __future__ import annotations

from ..core.errors import P3Error

#: Version stamped into ``meta('store_format')``; bumped on any schema
#: change that an older reader could misinterpret.
STORE_FORMAT_VERSION = 1

#: Store versions this build can read.
COMPATIBLE_STORE_VERSIONS = frozenset({1})


class StoreError(P3Error):
    """Base class for durable-store failures (missing file, empty store,
    epoch conflicts, malformed rows)."""


class StoreVersionError(StoreError):
    """The store file was written by an incompatible format version.

    Carries structured detail that :func:`repro.io.serialize.error_to_json`
    folds into the CLI's ``--json`` error envelope.
    """

    def __init__(self, path: str, found: object) -> None:
        expected = sorted(COMPATIBLE_STORE_VERSIONS)
        super().__init__(
            "Store %s has format version %r (readable: %s)"
            % (path, found, ", ".join(map(str, expected))))
        self.path = path
        self.found = found
        self.expected = expected

    def to_dict(self) -> dict:
        return {
            "store_path": self.path,
            "found_version": self.found,
            "expected_versions": self.expected,
        }


class RecordingError(StoreError):
    """A recording could not be captured or found (unknown name,
    duplicate name, or a spec the normalized schema cannot hold)."""


#: Simulated crash raised by the test hook
#: (:attr:`repro.store.ProvenanceStore.fail_before_commit`): the epoch's
#: rows are on disk but its commit marker is not, exactly the torn state
#: a real crash between batch and marker would leave.
class StoreCrashError(StoreError):
    pass


SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS epochs (
    epoch          INTEGER PRIMARY KEY,
    committed      INTEGER NOT NULL DEFAULT 0,
    tuples_added   INTEGER NOT NULL DEFAULT 0,
    rules_added    INTEGER NOT NULL DEFAULT 0,
    firings_added  INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS tuples (
    id          INTEGER PRIMARY KEY,
    key         TEXT NOT NULL UNIQUE,
    is_base     INTEGER NOT NULL DEFAULT 0,
    probability REAL,
    label       TEXT,
    epoch       INTEGER NOT NULL REFERENCES epochs(epoch)
);
CREATE INDEX IF NOT EXISTS idx_tuples_epoch ON tuples(epoch);

CREATE TABLE IF NOT EXISTS rules (
    id          INTEGER PRIMARY KEY,
    label       TEXT NOT NULL UNIQUE,
    probability REAL NOT NULL,
    epoch       INTEGER NOT NULL REFERENCES epochs(epoch)
);

CREATE TABLE IF NOT EXISTS firings (
    id          INTEGER PRIMARY KEY,
    exec_id     TEXT NOT NULL UNIQUE,
    rule_id     INTEGER NOT NULL REFERENCES rules(id),
    head_id     INTEGER NOT NULL REFERENCES tuples(id),
    probability REAL NOT NULL,
    epoch       INTEGER NOT NULL REFERENCES epochs(epoch)
);
CREATE INDEX IF NOT EXISTS idx_firings_epoch ON firings(epoch);
CREATE INDEX IF NOT EXISTS idx_firings_head ON firings(head_id);

CREATE TABLE IF NOT EXISTS firing_body (
    firing_id INTEGER NOT NULL REFERENCES firings(id) ON DELETE CASCADE,
    position  INTEGER NOT NULL,
    tuple_id  INTEGER NOT NULL REFERENCES tuples(id),
    PRIMARY KEY (firing_id, position)
);

CREATE TABLE IF NOT EXISTS polynomials (
    id        INTEGER PRIMARY KEY,
    root_id   INTEGER NOT NULL REFERENCES tuples(id),
    hop_limit INTEGER,
    epoch     INTEGER NOT NULL REFERENCES epochs(epoch)
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_polynomials_identity
    ON polynomials(root_id, IFNULL(hop_limit, -1), epoch);

CREATE TABLE IF NOT EXISTS monomials (
    id            INTEGER PRIMARY KEY,
    polynomial_id INTEGER NOT NULL
                  REFERENCES polynomials(id) ON DELETE CASCADE,
    ordinal       INTEGER NOT NULL,
    UNIQUE (polynomial_id, ordinal)
);

CREATE TABLE IF NOT EXISTS monomial_literals (
    monomial_id INTEGER NOT NULL REFERENCES monomials(id) ON DELETE CASCADE,
    position    INTEGER NOT NULL,
    kind        TEXT NOT NULL CHECK (kind IN ('tuple', 'rule')),
    key         TEXT NOT NULL,
    PRIMARY KEY (monomial_id, position)
);

CREATE TABLE IF NOT EXISTS recordings (
    id                INTEGER PRIMARY KEY,
    name              TEXT NOT NULL UNIQUE,
    method            TEXT,
    influence_method  TEXT,
    derivation_method TEXT,
    samples           INTEGER,
    seed              INTEGER,
    hop_limit         INTEGER,
    query_count       INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS recorded_queries (
    id           INTEGER PRIMARY KEY,
    recording_id INTEGER NOT NULL REFERENCES recordings(id) ON DELETE CASCADE,
    seq          INTEGER NOT NULL,
    epoch        INTEGER NOT NULL,
    kind         TEXT NOT NULL,
    key          TEXT NOT NULL,
    envelope     TEXT NOT NULL,
    UNIQUE (recording_id, seq)
);

CREATE TABLE IF NOT EXISTS recorded_params (
    query_id   INTEGER NOT NULL
               REFERENCES recorded_queries(id) ON DELETE CASCADE,
    name       TEXT NOT NULL,
    value_type TEXT NOT NULL CHECK (value_type IN
                   ('int', 'float', 'str', 'bool')),
    value      TEXT NOT NULL,
    PRIMARY KEY (query_id, name)
);

CREATE TABLE IF NOT EXISTS recorded_evidence (
    query_id INTEGER NOT NULL
             REFERENCES recorded_queries(id) ON DELETE CASCADE,
    key      TEXT NOT NULL,
    observed INTEGER NOT NULL,
    PRIMARY KEY (query_id, key)
);
"""
