"""Durable provenance: an append-only SQLite store with record/replay.

See :mod:`repro.store.schema` for the normalized schema and epoch
model, :class:`ProvenanceStore` for snapshot / incremental append /
warm-start, and :mod:`repro.store.recording` for capturing query
sessions and replaying them byte-for-byte (``p3 record`` /
``p3 replay``).
"""

from .provenance import ProvenanceStore
from .recording import (
    Recording,
    RecordedQuery,
    ReplayMismatch,
    ReplayReport,
    list_recordings,
    load_recording,
    record_session,
    replay_recording,
    result_envelope,
    save_recording,
)
from .schema import (
    COMPATIBLE_STORE_VERSIONS,
    STORE_FORMAT_VERSION,
    RecordingError,
    StoreCrashError,
    StoreError,
    StoreVersionError,
)

__all__ = [
    "COMPATIBLE_STORE_VERSIONS",
    "ProvenanceStore",
    "Recording",
    "RecordedQuery",
    "RecordingError",
    "ReplayMismatch",
    "ReplayReport",
    "STORE_FORMAT_VERSION",
    "StoreCrashError",
    "StoreError",
    "StoreVersionError",
    "list_recordings",
    "load_recording",
    "record_session",
    "replay_recording",
    "result_envelope",
    "save_recording",
]
