"""Tests for the sweep runner, replay round-trip, and the audit CLI."""

import glob
import json
import os

import pytest

from repro.audit import inject_fault, run_audit
from repro.audit.runner import AuditReport, load_replay
from repro.cli import main
from repro.io.serialize import SerializationError, audit_report_to_json


class TestRunAudit:
    def test_clean_sweep(self):
        report = run_audit(cases=30, seed=0, samples=1500)
        assert report.ok
        assert report.cases_run == 30
        assert report.disagreement_count == 0
        assert set(report.origins) == {"corpus", "program", "random"}
        assert "all agree" in report.summary()

    def test_deterministic_across_runs(self):
        first = run_audit(cases=15, seed=4, samples=1000)
        second = run_audit(cases=15, seed=4, samples=1000)
        assert first.to_dict() == second.to_dict()

    def test_fail_fast_stops_at_first_failure(self):
        with inject_fault("exact-offset"):
            report = run_audit(cases=20, seed=0, include_programs=False,
                               backends=["exact"], shrink=False,
                               fail_fast=True)
        assert len(report.failures) == 1

    def test_report_envelope(self):
        report = run_audit(cases=5, seed=0, include_programs=False)
        document = audit_report_to_json(report)
        assert document["kind"] == "audit_report"
        assert document["version"] == 1
        assert document["ok"] is True
        assert document["cases"] == 5
        # Stable: survives a JSON round trip.
        assert json.loads(json.dumps(document)) == document

    def test_envelope_rejects_non_reports(self):
        with pytest.raises(SerializationError):
            audit_report_to_json(object())
        with pytest.raises(SerializationError):

            class Impostor:
                def to_dict(self):
                    return {"kind": "something-else"}

            audit_report_to_json(Impostor())

    def test_settings_recorded(self):
        report = run_audit(cases=3, seed=9, samples=777, repeats=2,
                           z=4.5, include_programs=False)
        assert report.settings["seed"] == 9
        assert report.settings["samples"] == 777
        assert report.settings["repeats"] == 2
        assert report.settings["z"] == 4.5


class TestReplayFiles:
    def test_write_and_load_round_trip(self, tmp_path):
        replay_dir = str(tmp_path)
        with inject_fault("exact-offset"):
            run_audit(cases=3, seed=0, include_programs=False,
                      include_corpus=False, backends=["exact"],
                      shrink=True, replay_dir=replay_dir)
        paths = glob.glob(os.path.join(replay_dir, "audit-replay-*.json"))
        assert paths
        loaded = load_replay(paths[0])
        assert loaded["case"].origin == "random"
        assert loaded["settings"]["backends"] == ["exact"]

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = os.path.join(str(tmp_path), "bogus.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "kind": "session"}, handle)
        with pytest.raises(SerializationError):
            load_replay(path)


class TestAuditCli:
    def test_clean_sweep_exit_zero(self, capsys):
        code = main(["audit", "--cases", "15", "--seed", "0",
                     "--samples", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all agree" in out

    def test_json_envelope_on_stdout(self, capsys):
        code = main(["audit", "--cases", "8", "--seed", "0",
                     "--samples", "800", "--no-programs", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "audit_report"
        assert document["ok"] is True

    def test_failure_exit_one_and_replay_files(self, tmp_path, capsys):
        replay_dir = str(tmp_path / "replays")
        with inject_fault("exact-offset"):
            code = main(["audit", "--cases", "4", "--seed", "0",
                         "--no-programs", "--no-corpus", "--no-shrink",
                         "--backends", "exact",
                         "--replay-dir", replay_dir])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert glob.glob(os.path.join(replay_dir, "*.json"))

    def test_replay_subcommand_round_trip(self, tmp_path, capsys):
        replay_dir = str(tmp_path)
        with inject_fault("exact-offset"):
            main(["audit", "--cases", "1", "--seed", "0",
                  "--no-programs", "--no-corpus", "--backends", "exact",
                  "--replay-dir", replay_dir])
        capsys.readouterr()
        [path] = glob.glob(os.path.join(replay_dir, "*.json"))
        # Green without the fault...
        assert main(["audit", "--replay", path]) == 0
        # ...red with it, for both the shrunk and the original case.
        with inject_fault("exact-offset"):
            assert main(["audit", "--replay", path]) == 1
            assert main(["audit", "--replay", path,
                         "--replay-original"]) == 1

    def test_backend_restriction(self, capsys):
        code = main(["audit", "--cases", "6", "--seed", "2",
                     "--no-programs", "--backends", "exact", "bdd"])
        assert code == 0
        assert "x 2 backends" in capsys.readouterr().out


def test_report_repr_mentions_state():
    report = AuditReport({}, 3, {"random": 3}, [], ["exact"])
    assert "all agree" in repr(report)
