"""HTTP/JSON envelopes for the provenance service.

Every response body the service emits is one of the versioned envelopes
below — including errors, which reuse the CLI's structured error
envelope (:func:`repro.io.serialize.error_to_json`) so a scripted client
of ``p3 serve`` parses the same shapes as a scripted caller of the CLI.
Query responses embed :meth:`repro.exec.executor.BatchResult.to_dict`
*unchanged*: the per-outcome documents are exactly the library's
``QueryResult`` envelopes, with the tenant name and post-batch epoch
added around them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..io.serialize import (
    FORMAT_VERSION,
    error_to_json,
    evaluation_result_to_json,
)

__all__ = [
    "batch_envelope",
    "error_envelope",
    "health_envelope",
    "tenant_envelope",
    "tenants_envelope",
    "update_envelope",
]


def batch_envelope(tenant: str, epoch: int, batch: Any) -> dict:
    """One answered batch: the existing ``BatchResult`` document plus
    the tenant identity and the epoch the answers are valid for."""
    return {
        "version": FORMAT_VERSION,
        "kind": "batch_result",
        "tenant": tenant,
        "epoch": epoch,
        "result": batch.to_dict(),
    }


def update_envelope(tenant: str, epoch: int, delta: Optional[Any]) -> dict:
    """One applied live update (``P3.add_facts`` through HTTP).

    ``delta`` is the incremental :class:`EvaluationResult` (None when the
    system had not been evaluated yet and the facts simply joined the
    program).
    """
    document: Dict[str, Any] = {
        "version": FORMAT_VERSION,
        "kind": "update",
        "tenant": tenant,
        "epoch": epoch,
    }
    if delta is not None:
        document["delta"] = evaluation_result_to_json(delta)
    return document


def error_envelope(error: BaseException) -> dict:
    """The CLI's structured error envelope, shared verbatim."""
    return error_to_json(error)


def tenant_envelope(tenant: Any) -> dict:
    """One tenant's identity, epoch, and executor statistics."""
    return {
        "version": FORMAT_VERSION,
        "kind": "tenant_stats",
        "tenant": tenant.name,
        "epoch": tenant.system.epoch,
        "queries": tenant.queries,
        "updates": tenant.updates,
        "stats": tenant.executor.stats(),
        "breakers": (tenant.executor.breaker_board.to_dict()
                     if tenant.executor.breaker_board is not None else None),
    }


def tenants_envelope(registry: Any) -> dict:
    """The tenant listing (names and epochs only — stats are per-tenant)."""
    tenants = []
    for name in registry.names():
        try:
            tenant = registry.get(name)
        except KeyError:  # removed between listing and lookup
            continue
        tenants.append({
            "name": tenant.name,
            "epoch": tenant.system.epoch,
            "queries": tenant.queries,
            "updates": tenant.updates,
        })
    return {
        "version": FORMAT_VERSION,
        "kind": "tenant_list",
        "tenants": tenants,
    }


def health_envelope(registry: Any, uptime_seconds: float,
                    admission: Any,
                    abandoned_threshold: Optional[int] = None) -> dict:
    """The ``/healthz`` document: readiness plus admission pressure.

    ``status`` is ``"ok"``, ``"degraded"`` (wedged deadline-runner
    threads across all tenants reached ``abandoned_threshold`` — the
    process is leaking unkillable threads and should be rotated), or
    ``"draining"`` (shutdown in progress; new work is shed with 503).
    Isolation worker-pool counters are aggregated across tenants when
    any tenant has spawned one.
    """
    abandoned_live = 0
    workers: Dict[str, int] = {}
    for name in registry.names():
        try:
            tenant = registry.get(name)
        except KeyError:  # removed between listing and lookup
            continue
        runner_stats = getattr(
            tenant.executor, "deadline_runner_stats", None)
        if runner_stats is not None:
            abandoned_live += runner_stats().get("abandoned_live", 0)
        pool = getattr(tenant.executor, "process_pool", None)
        if pool is not None:
            for field, value in pool.stats().items():
                workers[field] = workers.get(field, 0) + value
    degraded = (abandoned_threshold is not None
                and abandoned_live >= abandoned_threshold)
    if getattr(admission, "draining", False):
        status = "draining"
    elif degraded:
        status = "degraded"
    else:
        status = "ok"
    document = {
        "version": FORMAT_VERSION,
        "kind": "health",
        "status": status,
        "uptime_seconds": round(uptime_seconds, 3),
        "tenants": len(registry.names()),
        "admission": admission.snapshot(),
        "deadline_threads": {
            "abandoned_live": abandoned_live,
            "degraded_threshold": abandoned_threshold,
        },
    }
    if workers:
        document["isolation_workers"] = workers
    return document
