"""Unit tests for the provenance semiring framework."""

import pytest

from repro.provenance.polynomial import Polynomial, tuple_literal
from repro.provenance.semiring import (
    BOOLEAN,
    COUNTING,
    MAX_TIMES,
    TROPICAL,
    WHY,
    best_derivation_probability,
    derivation_count,
    evaluate_polynomial,
    min_cost_derivation,
    why_valuation,
)

A = tuple_literal("a")
B = tuple_literal("b")
C = tuple_literal("c")

POLY = Polynomial.from_monomials([[A, B], [C]])


class TestBoolean:
    def test_derivable(self):
        value = evaluate_polynomial(POLY, BOOLEAN,
                                    {A: True, B: False, C: True})
        assert value is True

    def test_underivable(self):
        value = evaluate_polynomial(POLY, BOOLEAN,
                                    {A: True, B: False, C: False})
        assert value is False

    def test_zero_polynomial(self):
        assert evaluate_polynomial(Polynomial.zero(), BOOLEAN, {}) is False

    def test_one_polynomial(self):
        assert evaluate_polynomial(Polynomial.one(), BOOLEAN, {}) is True


class TestCounting:
    def test_counts_derivations(self):
        assert derivation_count(POLY) == 2

    def test_bag_semantics(self):
        # With multiplicity 2 for a, the a·b derivation counts twice.
        value = evaluate_polynomial(POLY, COUNTING, {A: 2, B: 1, C: 3})
        assert value == 2 * 1 + 3


class TestTropical:
    def test_cheapest_derivation(self):
        costs = {A: 1.0, B: 2.0, C: 5.0}
        assert min_cost_derivation(POLY, costs) == 3.0

    def test_zero_polynomial_is_infinite(self):
        assert min_cost_derivation(Polynomial.zero(), {}) == float("inf")


class TestMaxTimes:
    def test_viterbi_best_derivation(self):
        probs = {A: 0.9, B: 0.9, C: 0.5}
        assert best_derivation_probability(POLY, probs) == pytest.approx(0.81)

    def test_matches_argmax_monomial(self):
        probs = {A: 0.2, B: 0.2, C: 0.5}
        ranked = POLY.monomials_by_probability(probs)
        assert best_derivation_probability(POLY, probs) == pytest.approx(
            ranked[0][1])


class TestWhy:
    def test_why_provenance_witnesses(self):
        witnesses = evaluate_polynomial(POLY, WHY, why_valuation(POLY))
        assert frozenset({A, B}) in witnesses
        assert frozenset({C}) in witnesses
        assert len(witnesses) == 2


class TestTotality:
    def test_missing_literal_raises(self):
        with pytest.raises(KeyError):
            evaluate_polynomial(POLY, BOOLEAN, {A: True})
