"""Resilience bench — ladder overhead on clean runs, chaos survival.

Two questions the resilience layer must answer before it is allowed in
the default path:

1. What does the fallback ladder cost when *nothing* fails?  The happy
   path adds a breaker check, a deadline computation, and a record
   object per query; it should be noise next to inference itself.
2. Does a faulted batch survive?  One full chaos run (the same harness
   as ``p3 chaos`` and the CI smoke job) with transient faults, budget
   blowups, delays, and a wedged worker — asserting 100% well-formed
   outcomes and reference-accurate answers.
"""

import time

from repro import P3, P3Config
from repro.exec.executor import QueryExecutor
from repro.exec.specs import QuerySpec
from repro.resilience import ResilienceConfig
from repro.resilience.chaos import (
    CHAOS_FAULT_CLASSES,
    build_chaos_program,
    run_chaos,
)

from reporting import record_table


def _build(resilience):
    program = build_chaos_program(people=10, seed=7)
    p3 = P3.from_source(program, config=P3Config(
        probability_method="exact", hop_limit=4, seed=7,
        resilience=resilience))
    p3.evaluate()
    keys = sorted(k for k in p3.graph.tuple_keys()
                  if k.startswith("know(") and not p3.graph.is_base(k))
    return p3, [QuerySpec.probability(key) for key in keys[:25]]


def _run_batch(p3, specs):
    with QueryExecutor(p3, max_workers=4) as executor:
        batch = executor.run(specs)
        # Fresh caches each round so we time real work, not lookups.
        executor.clear_caches()
    assert batch.ok
    return batch


def test_ladder_overhead_clean(benchmark):
    """Fault-free batches through the ladder vs. the direct backend."""
    plain, specs = _build(None)
    start = time.perf_counter()
    for _ in range(3):
        _run_batch(plain, specs)
    baseline = (time.perf_counter() - start) / 3

    guarded, specs = _build(ResilienceConfig())
    benchmark.pedantic(
        _run_batch, args=(guarded, specs), rounds=3, iterations=1)

    record_table(
        "resilience_overhead",
        "Resilience: clean-run ladder overhead (%d probability specs)"
        % len(specs),
        ["configuration", "seconds/batch"],
        [["direct backend", baseline],
         ["fallback ladder", benchmark.stats.stats.mean]],
    )


def test_chaos_survival(benchmark):
    """One seeded chaos run: every spec survives, answers stay accurate."""
    report = benchmark.pedantic(
        run_chaos,
        kwargs={"seed": 0, "spec_count": 30, "people": 11,
                "samples": 10000, "pool_hang_seconds": 0.4},
        rounds=1, iterations=1)

    assert report.ok, report.to_dict()
    assert report.well_formed == report.specs
    assert not report.accuracy_failures
    record_table(
        "resilience_chaos",
        "Resilience: chaos survival (seed 0, %d specs, %.2fs)"
        % (report.specs, report.seconds),
        ["fault class", "injections"],
        [[name, report.faults_observed.get(name, 0)]
         for name in CHAOS_FAULT_CLASSES]
        + [["— retries", report.retries],
           ["— fallbacks", report.fallbacks],
           ["— breaker trips", report.breaker_trips]],
    )
