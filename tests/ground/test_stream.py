"""Streaming extraction tests, plus the partial-progress property sweep.

The property under test (satellite of the grounding issue): whenever a
:class:`BudgetExceededError` escapes extraction, its ``partial``
polynomial is a *well-formed under-approximation* — every monomial is a
complete derivation of the root (so it is subsumed by some monomial of
the full polynomial), and its probability never exceeds the full
probability.  The sweep drives this through the ``repro.audit`` case
generator, so the shapes covered track the audit corpus.
"""

import pytest

from repro.audit.generator import generate_cases
from repro.core.errors import BudgetExceededError
from repro.core.system import P3
from repro.data import paper_fragment
from repro.datalog.parser import parse_program
from repro.datalog.terms import atom as make_atom
from repro.ground import ground_and_stream, iter_deepening, stream_extract
from repro.inference import exact_probability
from repro.provenance import extract_polynomial
from repro.provenance.polynomial import Polynomial
from repro.resilience.budgets import ResourceBudget, activate_budget

TC = """
edge(1,2). edge(2,3). edge(3,4). edge(4,5).
r1 1.0: path(X,Y) :- edge(X,Y).
r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).
"""


def fragment_system():
    p3 = P3(paper_fragment().to_program())
    p3.evaluate()
    return p3


def assert_well_formed_partial(partial, full, probabilities):
    """The streamed partial must under-approximate the full polynomial."""
    for monomial in partial:
        assert any(complete.subsumes(monomial) for complete in full), \
            "partial monomial %r is not a derivation of the root" % (
                monomial,)
    assert exact_probability(partial, probabilities) <= \
        exact_probability(full, probabilities) + 1e-12


class TestStreamExtract:
    def test_complete_when_unbudgeted(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        outcome = stream_extract(p3.graph, key)
        assert outcome.complete
        assert outcome.resource is None
        assert outcome.polynomial == p3.polynomial_of(key)

    def test_partial_on_monomial_budget(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        full = p3.polynomial_of(key)
        assert len(full) > 1, "fixture too small to trip the budget"
        outcome = stream_extract(
            p3.graph, key, budget=ResourceBudget(max_monomials=1))
        assert not outcome.complete
        assert outcome.resource == "monomials"
        assert_well_formed_partial(outcome.polynomial, full,
                                   p3.probabilities)

    def test_partial_on_node_visit_budget(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        outcome = stream_extract(
            p3.graph, key, budget=ResourceBudget(max_node_visits=3))
        assert not outcome.complete
        assert outcome.resource == "node_visits"
        assert_well_formed_partial(outcome.polynomial,
                                   p3.polynomial_of(key), p3.probabilities)

    def test_explicit_budget_shadows_ambient(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        with activate_budget(ResourceBudget(max_monomials=1)):
            outcome = stream_extract(
                p3.graph, key, budget=ResourceBudget(max_monomials=100_000))
        assert outcome.complete

    def test_ambient_budget_applies_without_explicit_one(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        with activate_budget(ResourceBudget(max_monomials=1)):
            outcome = stream_extract(p3.graph, key)
        assert not outcome.complete

    def test_to_dict(self):
        p3 = fragment_system()
        outcome = stream_extract(p3.graph, "mutualTrustPath(1,6)",
                                 hop_limit=4)
        document = outcome.to_dict()
        assert document["key"] == "mutualTrustPath(1,6)"
        assert document["complete"] is True
        assert document["hop_limit"] == 4
        assert document["monomials"] == len(outcome.polynomial)


class TestIterDeepening:
    def test_monotone_lower_bounds(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        probabilities = p3.probabilities
        last = 0.0
        outcomes = list(iter_deepening(p3.graph, key, hop_limit=6))
        assert outcomes, "no outcomes streamed"
        for outcome in outcomes:
            assert outcome.complete
            current = exact_probability(outcome.polynomial, probabilities)
            assert current >= last - 1e-12
            last = current
        assert outcomes[-1].polynomial == p3.polynomial_of(key, hop_limit=6)

    def test_stops_after_budget_trip(self):
        p3 = fragment_system()
        key = "mutualTrustPath(1,6)"
        outcomes = list(iter_deepening(
            p3.graph, key, hop_limit=6,
            budget=ResourceBudget(max_node_visits=3)))
        assert not outcomes[-1].complete
        assert all(outcome.complete for outcome in outcomes[:-1])

    def test_rejects_nonpositive_hop_limit(self):
        p3 = fragment_system()
        with pytest.raises(ValueError):
            list(iter_deepening(p3.graph, "mutualTrustPath(1,6)", 0))


class TestGroundAndStream:
    def test_grounds_and_extracts_each_answer(self):
        goal, outcomes = ground_and_stream(
            parse_program(TC), make_atom("path", 1, 4))
        assert goal.answers == ["path(1,4)"]
        assert len(outcomes) == 1
        assert outcomes[0].complete
        assert outcomes[0].polynomial == extract_polynomial(
            goal.graph, "path(1,4)")

    def test_budgeted_answers_degrade_to_partials(self):
        p3 = fragment_system()
        goal, outcomes = ground_and_stream(
            paper_fragment().to_program(),
            make_atom("mutualTrustPath", 1, 6),
            budget=ResourceBudget(max_node_visits=3))
        assert len(outcomes) == 1
        assert not outcomes[0].complete
        assert_well_formed_partial(
            outcomes[0].polynomial,
            p3.polynomial_of("mutualTrustPath(1,6)"), p3.probabilities)


class TestPartialProperty:
    """Audit-generator sweep: budget partials are sound under-approximations."""

    #: Node-visit caps chosen to trip at different extraction depths.
    CAPS = (1, 2, 5, 11)

    def _check_case(self, case):
        p3 = P3.from_source(case.program_source)
        p3.evaluate()
        full = p3.polynomial_of(case.query_key, hop_limit=case.hop_limit)
        probabilities = p3.probabilities
        for cap in self.CAPS:
            for budget in (ResourceBudget(max_node_visits=cap),
                           ResourceBudget(max_monomials=cap)):
                try:
                    with activate_budget(budget):
                        partial = extract_polynomial(
                            p3.graph, case.query_key,
                            hop_limit=case.hop_limit)
                except BudgetExceededError as exc:
                    partial = exc.partial
                    assert isinstance(partial, Polynomial), \
                        "budget error lost its partial"
                assert_well_formed_partial(partial, full, probabilities)

    def test_program_cases_yield_sound_partials(self):
        cases = generate_cases(30, seed=2020, include_corpus=True,
                               include_programs=True)
        program_cases = [case for case in cases if case.is_program_case]
        assert program_cases, "sweep generated no program cases"
        for case in program_cases:
            self._check_case(case)

    def test_random_program_cases_second_seed(self):
        cases = generate_cases(20, seed=77, include_corpus=False,
                               include_programs=True)
        program_cases = [case for case in cases if case.is_program_case]
        assert program_cases, "sweep generated no program cases"
        for case in program_cases:
            self._check_case(case)
