"""Tests for the differential audit harness."""
